"""Table 4 — analyzing the DDGT solution.

Shape targets: store replication multiplies communication operations on
the chain-heavy benchmarks (Δ com. ops > 1), and DDGT speeds up the
selected loops (those with a >=10% MDC slowdown) where the paper reports
positive speedups.
"""

from conftest import RUNNER, run_once

from repro.experiments import run_table4


def test_table4(benchmark):
    result = run_once(benchmark, run_table4, runner=RUNNER)
    print()
    print(result.render())
    for name in ("epicdec", "pgpdec", "pgpenc", "rasta"):
        assert result.comm_ratio[name] > 1.0, (
            f"{name}: replicated stores must add communication ops"
        )
    # Chain-free benchmarks add none.
    assert result.comm_ratio["g721dec"] == 1.0
    assert result.comm_ratio["g721enc"] == 1.0
