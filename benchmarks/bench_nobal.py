"""Section 4.2 'other architectural configurations' — the NOBAL+MEM and
NOBAL+REG bus sweeps.

Shape target: making remote memory accesses more expensive (NOBAL+REG's
two 4-cycle memory buses) helps DDGT(PrefClus) — which keeps accesses
local — relative to MDC, compared against the memory-rich NOBAL+MEM
configuration.
"""

from conftest import RUNNER, run_once

from repro.experiments import run_nobal


def test_nobal(benchmark):
    result = run_once(benchmark, run_nobal, runner=RUNNER)
    print()
    print(result.render())
    helped = 0
    for name in ("epicdec", "pgpdec", "pgpenc", "rasta"):
        reg = result.ddgt_speedup_over_best_mdc("nobal+reg", name)
        mem = result.ddgt_speedup_over_best_mdc("nobal+mem", name)
        if reg > mem:
            helped += 1
    assert helped >= 2, (
        "expensive memory buses should favor DDGT on most chain-heavy "
        "benchmarks (paper reports 8-20% speedups under NOBAL+REG)"
    )
