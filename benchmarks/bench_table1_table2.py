"""Tables 1 and 2 — the benchmark catalog and the machine configuration.

These are the paper's setup tables: Table 1 (benchmarks, inputs, dominant
data sizes, interleave factors) comes from the workload catalog; Table 2
(machine parameters) from the architecture description.
"""

from conftest import run_once

from repro.analysis import format_table
from repro.arch import BASELINE_CONFIG
from repro.workloads import BENCHMARKS, get_benchmark


def build_table1() -> str:
    rows = []
    for name in BENCHMARKS:
        bench = get_benchmark(name)
        rows.append([
            name,
            bench.profile_input,
            bench.execute_input,
            f"{bench.main_width} bytes ({bench.main_width_share:.0%})",
            f"{bench.interleave_bytes}B",
        ])
    return format_table(
        ["benchmark", "profile data set", "execution data set",
         "main data size", "interleave"],
        rows,
        title="Table 1: benchmarks and inputs",
    )


def test_table1(benchmark):
    table = run_once(benchmark, build_table1)
    print()
    print(table)
    assert "epicdec" in table and "rasta" in table


def test_table2(benchmark):
    table = run_once(benchmark, BASELINE_CONFIG.describe)
    print()
    print("Table 2: configuration parameters")
    print(table)
    assert "clusters" in table
