"""Table 3 — CMR and CAR chain ratios per benchmark.

The catalog is calibrated against these published values, so the check is
tight (±0.02): this bench is the regression gate for the calibration.
"""

from conftest import run_once

from repro.analysis import cmr_car, format_table
from repro.experiments import EVALUATED
from repro.experiments.paperdata import TABLE3
from repro.workloads import get_benchmark


def build_table3():
    rows = []
    for name in EVALUATED:
        bench = get_benchmark(name)
        cmr, car = cmr_car(bench.chain_table())
        paper_cmr, paper_car = TABLE3[name]
        rows.append((name, cmr, car, paper_cmr, paper_car))
    return rows


def test_table3(benchmark):
    rows = run_once(benchmark, build_table3)
    print()
    print(format_table(
        ["benchmark", "CMR", "CAR", "paper CMR", "paper CAR"],
        [[n, c, a, pc, pa] for n, c, a, pc, pa in rows],
        title="Table 3: analyzing the MDC solution",
    ))
    for name, cmr, car, paper_cmr, paper_car in rows:
        assert abs(cmr - paper_cmr) < 0.02, name
        assert abs(car - paper_car) < 0.02, name
