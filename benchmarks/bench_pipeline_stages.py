"""Staged-pipeline front-end sharing — cold vs shared 6-variant sweep.

The paper's differential sweep runs every workload under the full
coherence × heuristic cross (free/MDC/DDGT × PrefClus/MinComs).  The
variant-independent front end — locality unrolling, MF/MA/MO
disambiguation, preferred-cluster profiling — is identical across the
six variants, so per-variant recompilation does 6× redundant front-end
work.  This bench runs the cross both ways and asserts the
content-addressed :class:`~repro.api.artifacts.ArtifactStore` removes at
least half of it (stage executions are counted exactly; wall time is
reported alongside).  Wired into the CI smoke step.
"""

from __future__ import annotations

from conftest import run_once

from repro.api import (
    ALL_VARIANTS,
    MemoryArtifactStore,
    MemoryStore,
    Plan,
    Runner,
)
from repro.sched.stages import (
    FRONTEND_STAGES,
    reset_stage_counters,
    stage_counters,
)

SUBSET = ("gsmdec", "g721dec", "rasta")
SCALE = 0.1


def variant_cross_plan() -> Plan:
    return Plan.grid(
        benchmarks=list(SUBSET), variants=ALL_VARIANTS, scale=SCALE
    )


class _NullArtifacts:
    """Pre-refactor behaviour: every variant recompiles the front end."""

    def get(self, key):
        return None

    def put(self, key, payload):
        pass


def _sweep(artifacts) -> dict:
    reset_stage_counters()
    Runner(store=MemoryStore(), artifacts=artifacts).run(
        variant_cross_plan()
    )
    counters = stage_counters()
    return {
        "frontend_execs": counters.frontend_executions(),
        "frontend_seconds": counters.frontend_seconds(),
        "per_stage": dict(counters.executed),
    }


def test_shared_frontend_beats_per_variant_recompilation(benchmark):
    cold = _sweep(_NullArtifacts())
    shared = run_once(benchmark, _sweep, MemoryArtifactStore())

    plan = variant_cross_plan()
    reduction = cold["frontend_execs"] / max(shared["frontend_execs"], 1)
    print(f"\nvariant cross: {len(plan)} specs "
          f"({len(SUBSET)} benchmarks x {len(ALL_VARIANTS)} variants, "
          f"scale {SCALE})")
    print(f"front-end stage executions: cold {cold['frontend_execs']} | "
          f"shared {shared['frontend_execs']} | {reduction:.1f}x reduction")
    print(f"front-end seconds: cold {cold['frontend_seconds']:.3f}s | "
          f"shared {shared['frontend_seconds']:.3f}s")

    # Every spec recompiles the front end cold: one execution of each
    # front-end stage per (benchmark, loop, variant).
    assert cold["frontend_execs"] > shared["frontend_execs"]
    # The acceptance bar: >=2x less front-end work on a 6-variant sweep.
    # (The exact factor is 6x: each loop's front end runs once instead of
    # once per variant.)
    assert reduction >= 2, (
        f"expected >=2x front-end work reduction, got {reduction:.2f}x"
    )
    # Sharing must cover all three front-end stages, not just one.
    per_variant = len(ALL_VARIANTS)
    for stage in FRONTEND_STAGES:
        assert cold["per_stage"][stage] == \
            shared["per_stage"][stage] * per_variant, stage
