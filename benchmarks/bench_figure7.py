"""Figure 7 — execution cycles (compute/stall split), normalized to the
optimistic free-scheduling MinComs baseline.

Shape targets (paper section 4.2):
* DDGT(PrefClus) reduces stall time vs MDC(PrefClus) (paper: -32%);
* DDGT increases compute time (paper: +10-11%);
* MDC often outperforms DDGT, but DDGT(PrefClus) wins epicdec;
* no solution is always better.
"""

from conftest import RUNNER, run_once

from repro.experiments import run_figure7


def test_figure7(benchmark):
    result = run_once(benchmark, run_figure7, runner=RUNNER)
    print()
    print(result.render())
    winners = {
        name: result.winner(name)
        for name in result.bars
        if name != "AMEAN"
    }
    print("\nper-benchmark winners:", winners)
    assert winners["epicdec"].startswith("ddgt"), (
        "DDGT must win epicdec (paper headline)"
    )
    winner_kinds = {w.split("/")[0] for w in winners.values()}
    assert winner_kinds == {"mdc", "ddgt"}, "no solution is always better"
    mdc_wins = sum(1 for w in winners.values() if w.startswith("mdc"))
    print(f"MDC wins {mdc_wins}/{len(winners)} benchmarks "
          f"(paper: MDC 'often outperforms' DDGT)")
