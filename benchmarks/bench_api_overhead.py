"""API/cache overhead — cold vs warm wall time for a Figure-7 plan.

The perf trajectory's cache-effectiveness signal: executing a Figure-7
style plan (baseline + four bars over a benchmark subset) cold, then
re-executing it from a fresh :class:`DiskStore` instance (as a second
process would), must be dramatically faster and byte-identical.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.api import DiskStore, FIGURE7_BARS, FREE_MIN, Plan, Runner

SUBSET = ("epicdec", "gsmdec", "pgpdec")
SCALE = 0.15


def figure7_plan() -> Plan:
    return Plan.grid(
        benchmarks=list(SUBSET),
        variants=(FREE_MIN,) + tuple(FIGURE7_BARS),
        scale=SCALE,
    )


def test_api_overhead_cold_vs_warm(benchmark, tmp_path):
    cache = tmp_path / "repro_cache"
    plan = figure7_plan()

    start = time.perf_counter()
    cold_records = Runner(store=DiskStore(cache)).run(plan)
    cold = time.perf_counter() - start

    # A fresh DiskStore instance models a second process: nothing is
    # memoized in RAM, every record comes off disk.
    warm_records = run_once(
        benchmark, lambda: Runner(store=DiskStore(cache)).run(plan)
    )
    start = time.perf_counter()
    Runner(store=DiskStore(cache)).run(plan)
    warm = time.perf_counter() - start

    speedup = cold / max(warm, 1e-9)
    print(f"\nplan: {len(plan)} specs at scale {SCALE}")
    print(f"cold {cold:.3f}s | warm (disk) {warm:.4f}s | {speedup:.0f}x")

    assert [r.to_dict() for r in warm_records] == [
        r.to_dict() for r in cold_records
    ], "warm results must be byte-identical to the cold run"
    assert warm < cold, "disk-cache hits must beat recomputation"
    assert speedup >= 5, f"expected >=5x from the disk cache, got {speedup:.1f}x"
