"""Benchmark: batched lockstep simulation vs per-run event simulation.

Co-simulates a 64-scenario mixed-family batch (alternating baseline and
slow-memory machines, so batches mix fast and stall-heavy runs) through
``repro.sim.batch`` and compares aggregate scenarios/sec against running
the same 64 simulations one at a time with ``engine="events"``.

Three asserts, in order:

1. **equivalence** — every batched run's ``SimStats.to_dict()`` is
   byte-identical to its per-run events twin (the speedup is worthless
   otherwise);
2. **mechanism** — the batch diagnostics prove runs actually shared a
   process-wide lockstep loop (``batch_size`` recorded, ``batch_steps``
   positive and bounded by the run's own cycle count) and stay out of
   the serialized stats;
3. **speedup** — best-of-``REPS`` aggregate throughput is at least
   ``MIN_SPEEDUP``x (3x locally, relaxed to 2x under CI where shared
   runners are noisy).

Run:  PYTHONPATH=src python benchmarks/bench_sim_batch.py
"""

import json
import os
import sys
import time

from repro.arch import BASELINE_CONFIG
from repro.arch.config import parse_config_name
from repro.scenarios import build_scenario_ddg, sample_scenarios
from repro.sched import CoherenceMode, Heuristic, compile_loop
from repro.sim import simulate
from repro.sim.batch import simulate_batch
from repro.workloads import trace_factory

N_SCENARIOS = 64
ITERATIONS = 400
BATCH_SIZE = 64
#: Timing reps (best-of); 1 under CI to keep the smoke step fast.
REPS = 1 if os.environ.get("CI") else 2
MIN_SPEEDUP = 2.0 if os.environ.get("CI") else 3.0

SLOWMEM = parse_config_name("gen-c4-mb1x8-rb4x2-cm512b32a2-nl60p2")


def build_workloads():
    """64 compiled (compilation, trace) pairs over mixed families."""
    workloads = []
    for pos, params in enumerate(sample_scenarios(9, N_SCENARIOS)):
        machine = BASELINE_CONFIG if pos % 2 == 0 else SLOWMEM
        ddg = build_scenario_ddg(params)
        compiled = compile_loop(
            ddg, machine,
            coherence=CoherenceMode.NONE if pos % 3 else CoherenceMode.MDC,
            heuristic=Heuristic.MINCOMS if pos % 2 else Heuristic.PREFCLUS,
            trace_factory=trace_factory(64, seed=5),
            profile_iterations=64,
        )
        trc = trace_factory(ITERATIONS, seed=7)(compiled.ddg)
        workloads.append((compiled, trc))
    return workloads


def run_events(workloads):
    return [
        simulate(compiled, trc, iterations=ITERATIONS,
                 check_coherence=False)
        for compiled, trc in workloads
    ]


def run_batch(workloads):
    return simulate_batch(
        workloads, iterations=ITERATIONS, check_coherence=False,
        batch_size=BATCH_SIZE,
    )


def test_batched_engine_beats_per_run_events():
    workloads = build_workloads()

    # -- 1. equivalence (untimed warm-up pass doubles as the check) ----
    events = run_events(workloads)
    batched = run_batch(workloads)
    for pos, (ev, ba) in enumerate(zip(events, batched)):
        left = json.dumps(ev.stats.to_dict(), sort_keys=True)
        right = json.dumps(ba.stats.to_dict(), sort_keys=True)
        assert left == right, (
            f"run {pos}: batched stats diverge from engine='events'\n"
            f"  events: {left}\n  batch:  {right}"
        )

    # -- 2. mechanism ---------------------------------------------------
    for pos, ba in enumerate(batched):
        assert ba.stats.batch_size == BATCH_SIZE, (
            f"run {pos}: batch_size diagnostic is {ba.stats.batch_size}, "
            f"expected {BATCH_SIZE}"
        )
        assert 0 < ba.stats.batch_steps <= ba.stats.total_cycles, (
            f"run {pos}: batch_steps={ba.stats.batch_steps} outside "
            f"(0, total_cycles={ba.stats.total_cycles}]"
        )
        assert "batch_size" not in ba.stats.to_dict(), (
            "batch diagnostics must not leak into serialized stats"
        )

    # -- 3. speedup (best-of-REPS on both sides) ------------------------
    events_wall = min(_timed(run_events, workloads) for _ in range(REPS))
    batch_wall = min(_timed(run_batch, workloads) for _ in range(REPS))
    speedup = events_wall / batch_wall
    print(f"bench_sim_batch: {N_SCENARIOS} scenarios x {ITERATIONS} iters")
    print(f"  events: {events_wall:.3f}s  "
          f"({N_SCENARIOS / events_wall:.1f} scenarios/s)")
    print(f"  batch:  {batch_wall:.3f}s  "
          f"({N_SCENARIOS / batch_wall:.1f} scenarios/s)")
    print(f"  speedup: {speedup:.2f}x (floor {MIN_SPEEDUP:.1f}x)")
    assert speedup >= MIN_SPEEDUP, (
        f"batched engine speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x floor"
    )
    print("bench_sim_batch: OK")


def _timed(fn, workloads) -> float:
    start = time.perf_counter()
    fn(workloads)
    return time.perf_counter() - start


if __name__ == "__main__":
    test_batched_engine_beats_per_run_events()
    sys.exit(0)
