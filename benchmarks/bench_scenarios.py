"""Scenario-engine throughput: generation rate and sweep rate.

Two signals for the perf trajectory:

* **scenarios/sec generated** — the seeded generator must stay cheap
  enough that sampling hundreds of fuzz cases is free relative to
  compiling them;
* **end-to-end sweep throughput, serial vs multiprocessing** — the
  differential harness fans out over worker processes through the
  ordinary Runner path; the parallel run must agree with the serial one
  bit for bit (generation is a pure function of the scenario name).
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.api import MemoryStore, Runner
from repro.scenarios import build_scenario_ddg, run_sweep, sample_scenarios

GEN_COUNT = 300
SWEEP_COUNT = 6
SCALE = 0.1


def test_generation_throughput(benchmark):
    params = sample_scenarios(seed=42, count=GEN_COUNT)

    def generate():
        return [build_scenario_ddg(p) for p in params]

    start = time.perf_counter()
    ddgs = run_once(benchmark, generate)
    elapsed = time.perf_counter() - start

    rate = GEN_COUNT / elapsed
    ops = sum(len(d) for d in ddgs)
    print(f"\ngenerated {GEN_COUNT} scenarios ({ops} instructions) "
          f"in {elapsed:.2f}s = {rate:.0f} scenarios/s")
    assert len(ddgs) == GEN_COUNT
    assert rate > 20, f"generator too slow: {rate:.1f} scenarios/s"


def test_sweep_throughput_serial_vs_parallel(benchmark):
    names = [p.name for p in sample_scenarios(seed=7, count=SWEEP_COUNT)]

    def sweep(parallel):
        return run_sweep(
            names, scale=SCALE,
            runner=Runner(store=MemoryStore(), parallel=parallel),
        )

    start = time.perf_counter()
    serial = run_once(benchmark, sweep, None)
    t_serial = time.perf_counter() - start

    start = time.perf_counter()
    parallel = sweep(2)
    t_parallel = time.perf_counter() - start

    runs = len(serial.plan)
    print(f"\nsweep of {runs} runs: serial {t_serial:.1f}s "
          f"({runs / t_serial:.1f} runs/s) | 2 workers {t_parallel:.1f}s "
          f"({runs / t_parallel:.1f} runs/s)")
    assert serial.ok and parallel.ok
    # Multiprocessing must not change a single digit of the summary.
    assert serial.to_csv() == parallel.to_csv()
