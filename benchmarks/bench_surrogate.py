"""Benchmark: surrogate-guided sweep vs exhaustive sweep.

On a 204-cell generated space (34 scenarios x 6 variants), runs the
exhaustive differential sweep as ground truth, then the full guided
pipeline cold — train-sweep on a *disjoint* seeded space, surrogate
fit, then two budgeted rounds of frontier simulation with an
active-learning refit between them — and checks the guidance contract
from ISSUE 10:

1. **coverage** — the guided pipeline simulates at least
   ``MIN_COVERAGE`` of the exhaustive sweep's top-decile frontier (the
   most interesting cells by *measured* traffic/IPC/II extremes, scored
   with the same rank-sum the guide uses on predictions);
2. **budget** — the whole guided pipeline (training simulations
   included) costs at most ``MAX_SIM_FRACTION`` of the exhaustive
   sweep's simulations;
3. **differential honesty** — every guided anomaly is backed by a
   simulated record, and the guided anomaly set is a subset of the
   exhaustive sweep's;
4. **speedup** — end-to-end guided wall clock beats the exhaustive
   sweep (reported, and floored loosely since both sides simulate).

The two rounds share one result store, so round two's budget only buys
cells round one did not already measure — that, plus the refit on round
one's fresh ground truth, is what closes the gap between the model's
initial (transferred) ranking and the measured frontier.

Run:  PYTHONPATH=src python benchmarks/bench_surrogate.py
"""

import os
import sys
import time

from repro.api.artifacts import MemoryArtifactStore
from repro.api.runner import Runner
from repro.api.store import MemoryStore
from repro.scenarios.generator import sample_scenarios
from repro.scenarios.sweep import run_sweep
from repro.surrogate import cell_key, record_targets, top_fraction_keys
from repro.surrogate.train import train_from_records

#: The candidate space: 34 scenarios x 6 variants x 1 machine = 204 cells.
SPACE_SEED = 21
SPACE_COUNT = 34
#: Disjoint training space (different seed): 6 scenarios x 6 = 36 cells.
TRAIN_SEED = 4
TRAIN_COUNT = 6
SCALE = 0.05
#: Fresh-simulation budget per guided round, and the exploration slice
#: of each budget.  Round one spends most of the budget and explores
#: aggressively (the transferred model has never seen this space);
#: round two runs pure exploitation on the refit model.
ROUND_BUDGETS = (44, 20)
ROUND_EXPLORE = (0.25, 0.0)
#: Floors: guided must hit >=90% of the measured top decile using <=50%
#: of the exhaustive sweep's simulations (ISSUE 10 acceptance criteria;
#: both are deterministic, so no CI relaxation is needed).
MIN_COVERAGE = 0.9
MAX_SIM_FRACTION = 0.5
#: Wall-clock floor: guided end-to-end must be at least this much
#: faster than exhaustive.  Loose (the real claim is the sim-count
#: fraction, which is deterministic); relaxed further under CI noise.
MIN_SPEEDUP = 1.2 if os.environ.get("CI") else 1.5


def _fresh_runner() -> Runner:
    return Runner(store=MemoryStore(), artifacts=MemoryArtifactStore())


def _run_full(names):
    return run_sweep(names, scale=SCALE, runner=_fresh_runner())


def _run_guided(names, train_names):
    """The whole guided pipeline, cold: train sweep, fit, then budgeted
    frontier rounds with an active-learning refit in between.  Returns
    (last round's result, fresh-simulated cell keys, total sims)."""
    runner = _fresh_runner()  # one store shared by every round
    train_result = run_sweep(train_names, scale=SCALE, runner=runner)
    model = train_from_records(train_result.records)
    sims = len(train_result.records)
    simulated_keys = set()
    guided = None
    for rnd, (budget, explore) in enumerate(
        zip(ROUND_BUDGETS, ROUND_EXPLORE)
    ):
        guided = run_sweep(
            names, scale=SCALE, runner=runner,
            surrogate=model, budget=budget, explore_frac=explore,
            surrogate_seed=rnd,
        )
        fresh = {
            cell_key(r.benchmark, r.machine, r.variant, r.model)
            for r in guided.records if r.source == "simulated"
        }
        simulated_keys |= fresh
        sims += len(fresh)
        model = guided.surrogate  # the refit with round rnd's ground truth
    return guided, simulated_keys, sims


def test_guided_sweep_covers_frontier_within_budget():
    names = [p.name for p in sample_scenarios(SPACE_SEED, SPACE_COUNT)]
    train_names = [
        p.name for p in sample_scenarios(TRAIN_SEED, TRAIN_COUNT)
    ]
    assert not set(names) & set(train_names), "training space must be disjoint"

    start = time.perf_counter()
    full = _run_full(names)
    full_wall = time.perf_counter() - start
    full_sims = full.simulated_runs
    assert full_sims >= 200, f"candidate space too small: {full_sims} cells"

    # Ground-truth top decile by *measured* interest.
    keys = [
        cell_key(r.benchmark, r.machine, r.variant, r.model)
        for r in full.records
    ]
    measured = [record_targets(r) for r in full.records]
    top_decile = set(top_fraction_keys(keys, measured, 0.1))

    start = time.perf_counter()
    guided, simulated_keys, guided_sims = _run_guided(names, train_names)
    guided_wall = time.perf_counter() - start

    covered = top_decile & simulated_keys
    coverage = len(covered) / len(top_decile)
    sim_fraction = guided_sims / full_sims
    speedup = full_wall / guided_wall if guided_wall else float("inf")

    print(f"bench_surrogate: {full_sims}-cell space, "
          f"round budgets {ROUND_BUDGETS}")
    print(f"  exhaustive: {full_sims} sims, {full_wall:.2f}s")
    print(f"  guided:     {guided_sims} sims "
          f"({guided_sims - len(simulated_keys)} training + "
          f"{len(simulated_keys)} frontier), {guided_wall:.2f}s, "
          f"{guided.skipped_runs} skipped in the final round")
    print(f"  top-decile coverage: {len(covered)}/{len(top_decile)} "
          f"({coverage:.1%}, floor {MIN_COVERAGE:.0%})")
    print(f"  sim fraction: {sim_fraction:.1%} "
          f"(ceiling {MAX_SIM_FRACTION:.0%})")
    print(f"  end-to-end speedup: {speedup:.2f}x "
          f"(floor {MIN_SPEEDUP:.1f}x)")

    assert coverage >= MIN_COVERAGE, (
        f"guided sweep covered only {coverage:.1%} of the measured "
        f"top-decile frontier (floor {MIN_COVERAGE:.0%})"
    )
    assert sim_fraction <= MAX_SIM_FRACTION, (
        f"guided pipeline spent {sim_fraction:.1%} of the exhaustive "
        f"simulations (ceiling {MAX_SIM_FRACTION:.0%})"
    )

    # Differential honesty: anomalies only from simulated records, and
    # never an anomaly the exhaustive sweep would not also report.
    assert set(guided.anomalies) <= set(full.anomalies), (
        "guided sweep reported an anomaly the exhaustive sweep did not"
    )

    assert speedup >= MIN_SPEEDUP, (
        f"guided end-to-end speedup {speedup:.2f}x below the "
        f"{MIN_SPEEDUP:.1f}x floor"
    )
    print("bench_surrogate: OK")


if __name__ == "__main__":
    test_guided_sweep_covers_frontier_within_budget()
    sys.exit(0)
