"""Figures 3 and 5 — the DDG transformation walkthrough as a regression
bench: applies DDGT to the paper's example graph and checks every
documented property of the result (replication, fake consumer, SYNC
rewrites)."""

from conftest import run_once

from repro.alias import MemRef
from repro.arch import BASELINE_CONFIG
from repro.ir import DdgBuilder, DepKind
from repro.sched import apply_ddgt


def build_figure3():
    b = DdgBuilder("figure3")
    mem = dict(space="A", stride=4, width=4, ambiguous=True)
    n1 = b.load("r27", mem=MemRef(offset=0, **mem), name="n1")
    n2 = b.load("r2", mem=MemRef(offset=16, **mem), name="n2")
    n3 = b.store(mem=MemRef(offset=32, **mem), name="n3")
    n4 = b.store("r27", mem=MemRef(offset=48, **mem), name="n4")
    b.ialu("r5", "r2", name="n5")
    b.mem_dep(n1, n3, DepKind.MA, 0)
    b.mem_dep(n1, n4, DepKind.MA, 0)
    b.mem_dep(n2, n3, DepKind.MA, 0)
    b.mem_dep(n2, n4, DepKind.MA, 0)
    b.mem_dep(n3, n1, DepKind.MF, 1)
    b.mem_dep(n3, n2, DepKind.MF, 1)
    b.mem_dep(n4, n2, DepKind.MF, 1)
    b.mem_dep(n3, n4, DepKind.MO, 0)
    b.mem_dep(n4, n3, DepKind.MO, 1)
    b.mem_dep(n3, n3, DepKind.MO, 1)
    b.mem_dep(n4, n4, DepKind.MO, 1)
    return b.build()


def test_figure3_to_figure5(benchmark):
    ddg = build_figure3()
    result = run_once(benchmark, apply_ddgt, ddg, BASELINE_CONFIG)
    print()
    print("Figure 5: the transformed DDG")
    print(result.ddg.describe())
    assert result.instance_count == 8  # 2 stores x 4 clusters
    assert len(result.fake_consumers) == 1  # the paper's NEW_CONS
    assert result.synchronized > 0
    assert result.redundant_ma == 4  # MA n1->n4 covered by RF n1->n4
    assert all(e.kind is not DepKind.MA for e in result.ddg.edges())
