"""Benchmark harness helpers.

Each ``bench_*`` module regenerates one table or figure of the paper.
Experiments are heavy (hundreds of compile+simulate runs), so every
benchmark runs its driver exactly once via ``benchmark.pedantic`` and
prints the paper-vs-measured table to stdout (run with ``-s`` to see it,
or read EXPERIMENTS.md for a captured full-scale run).

Scale: set ``REPRO_SCALE`` (default 0.5) to trade run time for trace
length; results are cached in-process, so figure benches sharing variants
reuse each other's simulations.
"""

from __future__ import annotations


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
