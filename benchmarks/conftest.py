"""Benchmark harness helpers.

Each ``bench_*`` module regenerates one table or figure of the paper.
Experiments are heavy (hundreds of compile+simulate runs), so every
benchmark runs its driver exactly once via ``benchmark.pedantic`` and
prints the paper-vs-measured table to stdout (run with ``-s`` to see it,
or read EXPERIMENTS.md for a captured full-scale run).

All drivers go through the :mod:`repro.api` session layer: the shared
:data:`RUNNER` below executes every figure/table plan against the
process-wide ``ResultStore``, so benches sharing variants (e.g. Figures
6 and 7) reuse each other's simulations.  Set ``REPRO_SCALE`` (default
0.5) to trade run time for trace length; ``bench_api_overhead`` measures
the cold/warm cost of the on-disk store itself.
"""

from __future__ import annotations

from repro.api import Runner

#: One runner for the whole bench session, on the default (shared) store.
RUNNER = Runner()


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)
