"""Figure 9 — execution cycles with 16-entry 2-way Attraction Buffers.

Shape targets (paper section 5.4): with ABs the MDC solution catches up
(ABs already fix its locality), while epicdec — whose 76-instruction chain
overflows a single cluster's AB under MDC — still favors DDGT, with a much
higher chain-loop local hit ratio.
"""

from conftest import RUNNER, run_once

from repro.experiments import run_figure9


def test_figure9(benchmark):
    result = run_once(benchmark, run_figure9, runner=RUNNER)
    print()
    print(result.render())
    bars = result.figure.bars["epicdec"]
    assert bars["ddgt/prefclus"].total < bars["mdc/prefclus"].total, (
        "epicdec: the 76-op chain overflows one AB; DDGT spreads it"
    )
    mdc_lh = result.epicdec_loop["MDC"]["local_hit"]
    ddgt_lh = result.epicdec_loop["DDGT"]["local_hit"]
    print(f"\nepicdec chain loop local hits: MDC {mdc_lh:.0%} vs "
          f"DDGT {ddgt_lh:.0%} (paper: 65% vs 97%)")
    assert ddgt_lh > mdc_lh
