"""Event-skipping simulation — speedup over the per-cycle reference.

Every figure, sweep and scenario run bottoms out in ``simulate()``.  The
per-cycle reference engine burns one Python iteration per machine cycle
even while the core is stalled on a remote load or draining in-flight
traffic — exactly the long-latency windows the distributed-data-cache
model creates.  The event-skipping engine jumps those windows to the
next memory event in one step.

This bench runs a stall-heavy scenario — an indirect gather whose table
busts the tiny cache modules, on a machine with one slow memory bus and
a far next level, so ~90%+ of all cycles are stall cycles — under both
engines, requires their ``SimStats`` to be identical, and asserts the
event engine is at least 2x faster (typical: ~3x; the checked-run ratio
is reported alongside).  Wired into the CI smoke step like the
pipeline-stage bench.
"""

from __future__ import annotations

import json
import time

from conftest import run_once

from repro.arch.config import parse_config_name
from repro.scenarios import ScenarioParams, build_scenario_ddg
from repro.sched.pipeline import CoherenceMode, Heuristic, compile_loop
from repro.sim import simulate
from repro.workloads.traces import trace_factory

#: Indirect gather/scatter, few ops per iteration, long dependence chain.
SCENARIO = ScenarioParams(family="gather", size=12, mem_pct=15, seed=3)
#: One 8-cycle memory bus, 512B cache modules, 60-cycle next level: the
#: stall-heavy corner of the machine space (contended interconnect, tiny
#: distributed cache, far backing store).
MACHINE = "gen-c4-mb1x8-rb4x2-cm512b32a2-nl60p2"
ITERATIONS = 2000
#: The acceptance bar asserted in CI.
MIN_SPEEDUP = 2.0


def _compiled():
    ddg = build_scenario_ddg(SCENARIO)
    return compile_loop(
        ddg,
        parse_config_name(MACHINE),
        coherence=CoherenceMode.NONE,
        heuristic=Heuristic.MINCOMS,
        trace_factory=trace_factory(64, seed=5),
        profile_iterations=64,
    )


def _run(compiled, engine: str, check: bool):
    trace = trace_factory(ITERATIONS, seed=7)(compiled.ddg)
    start = time.perf_counter()
    result = simulate(
        compiled, trace, iterations=ITERATIONS, engine=engine,
        check_coherence=check,
    )
    return result, time.perf_counter() - start


def _canonical(stats) -> str:
    return json.dumps(stats.to_dict(), sort_keys=True)


def test_event_skipping_beats_per_cycle_reference(benchmark):
    compiled = _compiled()
    # Warm once (bytecode, allocator) so the timed pair is stable.
    _run(compiled, "events", check=False)

    reference, ref_seconds = _run(compiled, "cycles", check=False)
    events, evt_seconds = run_once(
        benchmark, _run, compiled, "events", False
    )
    speedup = ref_seconds / evt_seconds

    checked_ref, checked_ref_s = _run(compiled, "cycles", check=True)
    checked_evt, checked_evt_s = _run(compiled, "events", check=True)

    stats = reference.stats
    print(f"\nscenario {SCENARIO.name} on {MACHINE}, "
          f"{ITERATIONS} kernel iterations")
    print(f"cycles: {stats.total_cycles} total "
          f"({stats.stall_cycles} stalled = "
          f"{stats.stall_cycles / stats.total_cycles:.0%}); "
          f"event engine fast-forwarded "
          f"{events.stats.fast_forwarded_cycles} and bulk-retired "
          f"{events.stats.fast_retired_indexes} kernel indexes")
    print(f"per-cycle {ref_seconds:.3f}s | event-skipping "
          f"{evt_seconds:.3f}s | {speedup:.2f}x speedup")
    print(f"with coherence checking: {checked_ref_s:.3f}s | "
          f"{checked_evt_s:.3f}s | "
          f"{checked_ref_s / checked_evt_s:.2f}x")

    # Observation equivalence first: a fast wrong answer is no answer.
    assert _canonical(events.stats) == _canonical(reference.stats)
    assert _canonical(checked_evt.stats) == _canonical(checked_ref.stats)
    assert (checked_evt.violations.total
            == checked_ref.violations.total)
    # The workload must actually be stall-heavy for the claim to mean
    # anything.
    assert stats.stall_cycles / stats.total_cycles >= 0.75
    # Deterministic counterpart of the timing claim (immune to CI
    # runner noise): the engine must have skipped the vast majority of
    # machine cycles, the mechanism the wall-clock win comes from.
    skipped = (events.stats.fast_forwarded_cycles
               + events.stats.fast_retired_indexes)
    assert skipped / stats.total_cycles >= 0.75, (
        f"event engine only skipped {skipped / stats.total_cycles:.0%} "
        f"of cycles"
    )
    # The acceptance bar: >=2x on a stall-heavy scenario.
    assert speedup >= MIN_SPEEDUP, (
        f"expected >={MIN_SPEEDUP}x simulation speedup, got {speedup:.2f}x"
    )


#: Max relative wall-time cost of the observability layer on the
#: simulator path, in either state.  `repro.obs` instrumentation is
#: O(1) per simulate() call — never per cycle — so both the disabled
#: path (one attribute check per hook) and the enabled path (a few
#: dozen dict updates per run) must be noise next to the simulation.
MAX_OBS_OVERHEAD = 0.05


def test_observability_overhead_is_negligible():
    """Instrumented-vs-disabled wall time on the simulator hot path.

    Interleaves min-of-N timings of the same event-engine run with the
    metrics registry disabled (and no tracer — the default state) and
    with everything lit (recording registry + installed tracer), and
    bounds the relative difference.  min-of-N makes the comparison
    robust to scheduler noise; interleaving makes it fair to both.
    """
    from repro.obs import metrics, trace

    compiled = _compiled()
    _run(compiled, "events", check=False)  # warm-up

    rounds = 5
    dark_best = lit_best = float("inf")
    for _ in range(rounds):
        with metrics.capture(enabled=False):
            previous = trace.set_tracer(None)
            try:
                _, seconds = _run(compiled, "events", check=False)
            finally:
                trace.set_tracer(previous)
        dark_best = min(dark_best, seconds)

        with metrics.capture(enabled=True):
            previous = trace.set_tracer(trace.Tracer())
            try:
                _, seconds = _run(compiled, "events", check=False)
            finally:
                trace.set_tracer(previous)
        lit_best = min(lit_best, seconds)

    overhead = lit_best / dark_best - 1.0
    print(f"\nobservability overhead: disabled {dark_best:.4f}s | "
          f"enabled {lit_best:.4f}s | {overhead:+.1%}")
    assert lit_best <= dark_best * (1.0 + MAX_OBS_OVERHEAD), (
        f"enabled instrumentation costs {overhead:+.1%} "
        f"(budget: {MAX_OBS_OVERHEAD:.0%})"
    )
