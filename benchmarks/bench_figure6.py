"""Figure 6 — classification of memory accesses (PrefClus heuristic).

Shape targets (paper section 4.2):
* MDC lowers the average local-hit ratio versus free scheduling
  (62.5% -> 53.2% in the paper);
* DDGT raises it above both (all loads at their preferred cluster, all
  executed store instances local);
* epicdec shows the hardest collapse under MDC.
"""

from conftest import RUNNER, run_once

from repro.experiments import run_figure6


def test_figure6(benchmark):
    result = run_once(benchmark, run_figure6, runner=RUNNER)
    print()
    print(result.render())
    free = result.mean_local_hit("free")
    mdc = result.mean_local_hit("MDC")
    ddgt = result.mean_local_hit("DDGT")
    print(
        f"\nmean local hit: free {free:.1%} | MDC {mdc:.1%} | DDGT {ddgt:.1%}"
        f"   (paper: 62.5% | 53.2% | MDC +15%)"
    )
    assert mdc < free, "MDC must reduce local hits (paper Figure 6)"
    assert ddgt > mdc, "DDGT must raise local hits above MDC"
    assert ddgt >= free, "DDGT maximizes local accesses"
