"""Sharded store-wide operations vs the legacy flat-directory scan.

Before PR 5 the on-disk stores kept every entry in one flat directory,
and ``keys()`` / ``size_bytes()`` / ``prune()`` rescanned (glob + stat)
the whole thing on every call — O(N) per operation, which a weekly
200-scenario sweep (thousands of cached records and artifacts) pays over
and over from the CLI and the sweep drivers.  The sharded layout splits
entries over 256 two-hex-char directories and answers store-wide
questions from a lazily maintained index validated by shard-directory
mtimes, so the steady state costs ~256 ``stat`` calls instead of a full
tree walk.

This bench builds both layouts at ``ENTRIES`` entries, runs the three
store-wide operations repeatedly against each, checks they agree, and
asserts the sharded store is at least ``MIN_SPEEDUP``× faster.  Wired
into the CI smoke step.
"""

from __future__ import annotations

import time

from repro.api.store import JsonFileStore

ENTRIES = 5000
REPEAT = 3
MIN_SPEEDUP = 2.0


def _fill(store: JsonFileStore, entries: int) -> None:
    for i in range(entries):
        store.put_payload(f"bench-{i:06d}", {"i": i})


def _cycle(store: JsonFileStore):
    """One round of every store-wide operation (prune with a cutoff far
    in the past, so nothing is actually removed)."""
    count = sum(1 for _ in store.keys())
    size = store.size_bytes()
    pruned = store.prune(older_than_seconds=30 * 86400)
    return count, size, pruned


def _time_cycles(store: JsonFileStore):
    start = time.perf_counter()
    result = None
    for _ in range(REPEAT):
        result = _cycle(store)
    return time.perf_counter() - start, result


def test_sharded_store_wide_ops_beat_flat_scan(tmp_path):
    flat = JsonFileStore(tmp_path / "flat", sharded=False)
    sharded = JsonFileStore(tmp_path / "sharded")
    _fill(flat, ENTRIES)
    _fill(sharded, ENTRIES)

    # One untimed round each: the sharded store builds its index here
    # (the one-off full scan every long-lived process amortizes), and the
    # flat store warms the page cache so the comparison is scan-vs-index,
    # not cold-vs-warm I/O.
    warm_flat = _cycle(flat)
    warm_sharded = _cycle(sharded)
    assert warm_flat[0] == warm_sharded[0] == ENTRIES
    assert warm_flat[1] == warm_sharded[1] > 0
    assert warm_flat[2] == warm_sharded[2] == 0

    flat_seconds, flat_result = _time_cycles(flat)
    sharded_seconds, sharded_result = _time_cycles(sharded)
    assert flat_result == sharded_result, (
        "both layouts must report identical store-wide answers"
    )

    speedup = flat_seconds / sharded_seconds
    print(f"\nstore-wide ops at {ENTRIES} entries x {REPEAT} rounds "
          f"(keys + size_bytes + prune):")
    print(f"  flat layout    : {flat_seconds:.3f}s")
    print(f"  sharded layout : {sharded_seconds:.3f}s")
    print(f"  speedup        : {speedup:.1f}x")
    assert speedup >= MIN_SPEEDUP, (
        f"sharded store-wide operations must beat the flat-layout scan "
        f">={MIN_SPEEDUP}x at {ENTRIES} entries; got {speedup:.2f}x"
    )
