"""Table 5 — memory-dependence restrictions before/after code
specialization (section 6), for epicdec, pgpdec and rasta."""

from conftest import run_once

from repro.experiments import run_table5
from repro.experiments.paperdata import TABLE5


def test_table5(benchmark):
    result = run_once(benchmark, run_table5)
    print()
    print(result.render())
    for name, (old_cmr, old_car, new_cmr, new_car) in result.rows.items():
        p_old_cmr, p_old_car, p_new_cmr, p_new_car = TABLE5[name]
        assert abs(old_cmr - p_old_cmr) < 0.02, name
        assert abs(new_cmr - p_new_cmr) < 0.05, name
        assert abs(new_car - p_new_car) < 0.05, name
