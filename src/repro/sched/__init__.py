"""The clustered modulo scheduler and the paper's two coherence solutions.

Public entry point: :func:`repro.sched.pipeline.compile_loop`, which runs
the full phase sequence (unrolling, disambiguation, MDC or DDGT, cluster
assignment, copy insertion, latency assignment, iterative modulo
scheduling, MinComs post-pass) and returns a
:class:`~repro.sched.pipeline.CompilationResult`.
"""

from repro.sched.schedule import Schedule, ScheduledOp, edge_latency
from repro.sched.mii import minimum_ii, rec_mii, res_mii
from repro.sched.mdc import MdcResult, apply_mdc, memory_dependent_chains
from repro.sched.ddgt import DdgtResult, apply_ddgt
from repro.sched.cluster import ClusterAssignment, assign_clusters
from repro.sched.pipeline import (
    CompilationResult,
    CoherenceMode,
    Heuristic,
    compile_loop,
)

__all__ = [
    "Schedule",
    "ScheduledOp",
    "edge_latency",
    "minimum_ii",
    "rec_mii",
    "res_mii",
    "MdcResult",
    "apply_mdc",
    "memory_dependent_chains",
    "DdgtResult",
    "apply_ddgt",
    "ClusterAssignment",
    "assign_clusters",
    "CompilationResult",
    "CoherenceMode",
    "Heuristic",
    "compile_loop",
]
