"""The clustered modulo scheduler and the paper's two coherence solutions.

Public entry point: :func:`repro.sched.pipeline.compile_loop`, which runs
the staged pipeline of :mod:`repro.sched.stages` (unrolling,
disambiguation, profiling, MDC or DDGT, cluster assignment, copy
insertion, latency assignment, iterative modulo scheduling, MinComs
post-pass) and returns a
:class:`~repro.sched.pipeline.CompilationResult`.  The
variant-independent front end is content-addressed and shareable
through an artifact store (see ``docs/architecture.md``).
"""

from repro.sched.schedule import Schedule, ScheduledOp, edge_latency
from repro.sched.stages import (
    FRONTEND_STAGES,
    PIPELINE_STAGES,
    StageDef,
    reset_stage_counters,
    stage_counters,
)
from repro.sched.mii import minimum_ii, rec_mii, res_mii
from repro.sched.mdc import MdcResult, apply_mdc, memory_dependent_chains
from repro.sched.ddgt import DdgtResult, apply_ddgt
from repro.sched.cluster import ClusterAssignment, assign_clusters
from repro.sched.pipeline import (
    CompilationResult,
    CoherenceMode,
    Heuristic,
    compile_loop,
)

__all__ = [
    "Schedule",
    "ScheduledOp",
    "edge_latency",
    "minimum_ii",
    "rec_mii",
    "res_mii",
    "MdcResult",
    "apply_mdc",
    "memory_dependent_chains",
    "DdgtResult",
    "apply_ddgt",
    "ClusterAssignment",
    "assign_clusters",
    "CompilationResult",
    "CoherenceMode",
    "FRONTEND_STAGES",
    "Heuristic",
    "PIPELINE_STAGES",
    "StageDef",
    "compile_loop",
    "reset_stage_counters",
    "stage_counters",
]
