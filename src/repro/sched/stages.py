"""The staged compilation pipeline.

The monolithic ``compile_loop`` of earlier versions ran eight phases
inline; this module makes each one an explicit, named *stage* with
declared inputs and outputs:

    unroll -> disambiguate -> profile -> coherence -> assign -> copies
           -> schedule -> postpass

The first three — the **front end** — depend only on the source graph,
the machine, and the profile trace; they are *identical* across the
paper's 6-way coherence × heuristic variant cross.  Each front-end stage
derives a content-hash key (chained, Nix-style: a stage key digests its
parent's key plus the parameters that actually reach the stage) and
stores its output in a pluggable artifact store, so sibling variants —
and later processes, via the on-disk store — reuse the front end instead
of recomputing it.

The **back end** (coherence, assign, copies, schedule, postpass) is
variant-specific and mutates its working graph, so it always executes;
its stages are still named and keyed for instrumentation, but not
persisted.

Artifact stores are duck-typed (``get(key) -> dict | None`` /
``put(key, dict)``): the real implementations live one layer up in
:mod:`repro.api.artifacts`, and this module stays independent of the API
layer.  Every ``get`` must hand back a payload the pipeline may own
outright — the back end mutates the graphs it receives.
"""

from __future__ import annotations

import enum
import json
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.alias.disambiguation import add_memory_dependences
from repro.alias.profiles import (
    ClusterProfile,
    TraceLike,
    profile_preferred_clusters,
)
from repro.arch.config import MachineConfig
from repro.errors import SchedulingError
from repro.hashing import digest
from repro.ir.ddg import Ddg
from repro.obs import metrics, trace
from repro.ir.unroll import locality_unroll_factor, unroll
from repro.ir.verify import verify_ddg
from repro.sched.cluster import (
    ClusterAssignment,
    HeuristicKind,
    assign_clusters,
)
from repro.sched.copies import insert_copies
from repro.sched.ddgt import DdgtResult, apply_ddgt
from repro.sched.latency import schedule_with_latency_policy
from repro.sched.mdc import MdcResult, apply_mdc
from repro.sched.postpass import best_cluster_permutation
from repro.sched.schedule import Schedule, ScheduledOp


class CoherenceMode(enum.Enum):
    """How memory coherence is guaranteed (or, for NONE, assumed away)."""

    #: optimistic baseline: memory edges constrain timing but not placement
    NONE = "none"
    MDC = "mdc"
    DDGT = "ddgt"


#: Public alias: the paper's two cluster-assignment heuristics.
Heuristic = HeuristicKind


# ----------------------------------------------------------------------
# Stage declarations
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class StageDef:
    """One named pipeline stage with its declared dataflow."""

    name: str
    inputs: Tuple[str, ...]
    outputs: Tuple[str, ...]
    #: Front-end stages are variant-independent and artifact-cacheable.
    cacheable: bool = False


#: The pipeline, in execution order.  ``inputs``/``outputs`` name the
#: values flowing between stages (``ddg`` is the working graph).
PIPELINE_STAGES: Tuple[StageDef, ...] = (
    StageDef("unroll", ("source", "machine", "unroll_factor"),
             ("ddg", "unroll_factor"), cacheable=True),
    StageDef("disambiguate", ("ddg", "add_mem_deps"), ("ddg",),
             cacheable=True),
    StageDef("profile", ("ddg", "machine", "trace"), ("profiles",),
             cacheable=True),
    StageDef("coherence", ("ddg", "machine", "coherence", "profiles"),
             ("ddg", "mdc", "ddgt")),
    StageDef("assign", ("ddg", "machine", "heuristic", "profiles", "mdc"),
             ("assignment",)),
    StageDef("copies", ("ddg", "machine", "assignment"), ("copies",)),
    StageDef("schedule", ("ddg", "machine", "assignment"), ("schedule",)),
    StageDef("postpass",
             ("ddg", "machine", "assignment", "schedule", "profiles"),
             ("assignment", "schedule")),
    # Opt-in (``verify=True``): the independent static verifier of
    # ``repro.check.schedule_lint`` re-derives every legality rule from
    # the machine description and fails the compilation on any finding.
    StageDef("verify",
             ("ddg", "machine", "assignment", "schedule", "coherence"),
             ()),
)

#: The variant-independent prefix shared by the whole variant cross.
FRONTEND_STAGES: Tuple[str, ...] = tuple(
    s.name for s in PIPELINE_STAGES if s.cacheable
)

STAGE_BY_NAME: Dict[str, StageDef] = {s.name: s for s in PIPELINE_STAGES}


# ----------------------------------------------------------------------
# Instrumentation
# ----------------------------------------------------------------------
@dataclass
class StageCounters:
    """Snapshot of stage execution counts and wall-clock time.

    ``executed`` counts actual computations; an artifact hit does not
    execute the stage, which is exactly the signal the pipeline
    benchmarks assert on (a grouped 6-variant sweep must execute each
    front-end stage once, not six times).

    Since the `repro.obs` migration this is a *view* built by
    :func:`stage_counters` from the process metrics registry
    (``stages.executed`` / ``stages.seconds``, labeled by stage) —
    fetch it after the work you want to measure.
    """

    executed: Dict[str, int] = field(default_factory=dict)
    seconds: Dict[str, float] = field(default_factory=dict)

    def note(self, stage: str, elapsed: float) -> None:
        self.executed[stage] = self.executed.get(stage, 0) + 1
        self.seconds[stage] = self.seconds.get(stage, 0.0) + elapsed

    def executions(self, stages: Tuple[str, ...]) -> int:
        return sum(self.executed.get(name, 0) for name in stages)

    def elapsed(self, stages: Tuple[str, ...]) -> float:
        return sum(self.seconds.get(name, 0.0) for name in stages)

    def frontend_executions(self) -> int:
        return self.executions(FRONTEND_STAGES)

    def frontend_seconds(self) -> float:
        return self.elapsed(FRONTEND_STAGES)


def stage_counters() -> StageCounters:
    """Current stage counters, read out of the metrics registry."""
    counters = StageCounters()
    reg = metrics.registry()
    for labels, value in reg.counter_items("stages.executed"):
        stage = labels.get("stage", "")
        counters.executed[stage] = counters.executed.get(stage, 0) + int(value)
    for labels, value in reg.counter_items("stages.seconds"):
        stage = labels.get("stage", "")
        counters.seconds[stage] = counters.seconds.get(stage, 0.0) + value
    return counters


def reset_stage_counters() -> None:
    """Zero the stage metrics (tests and benchmarks)."""
    metrics.registry().reset("stages.")


class _timed:
    """Context manager crediting a stage execution to the registry and
    recording the execution as a trace span (cat ``stage``)."""

    def __init__(self, stage: str) -> None:
        self.stage = stage
        self._span = trace.span(stage, cat="stage")

    def __enter__(self):
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        elapsed = time.perf_counter() - self._start
        metrics.inc("stages.executed", stage=self.stage)
        metrics.inc("stages.seconds", elapsed, stage=self.stage)
        self._span.__exit__(*exc)
        return False


# ----------------------------------------------------------------------
# Stage keys (chained content hashes)
# ----------------------------------------------------------------------
def unroll_key(source: Ddg, machine: MachineConfig,
               unroll_factor: Optional[int]) -> str:
    """Key of the unroll stage: exact source snapshot, machine (the
    locality heuristic reads cluster count and interleave), requested
    factor.

    The digest covers :meth:`Ddg.to_dict` — not the canonicalizing
    :meth:`Ddg.fingerprint` — because downstream passes are sensitive to
    node/edge *iteration order*, which the fingerprint deliberately
    ignores: two graphs with equal fingerprints but different insertion
    orders may compile to different (equally valid) schedules, and must
    therefore never share an artifact key.
    """
    return "unroll-" + digest([
        source.to_dict(),
        machine.fingerprint(),
        "auto" if unroll_factor is None else int(unroll_factor),
    ])


def disambiguate_key(parent_key: str, add_mem_deps: bool) -> str:
    return "disambiguate-" + digest([parent_key, bool(add_mem_deps)])


def profile_key(parent_key: str, machine: MachineConfig, trace_key: str,
                max_iterations: Optional[int]) -> str:
    """Key of the profiling stage.  ``trace_key`` identifies the profile
    trace's content (iterations, seed, padding) — see
    :class:`repro.workloads.traces.TraceSpec`."""
    return "profile-" + digest([
        parent_key, machine.fingerprint(), trace_key, max_iterations,
    ])


# ----------------------------------------------------------------------
# Artifact payload codecs
# ----------------------------------------------------------------------
def _replayed(ddg_payload) -> Ddg:
    """Decode a graph payload exactly as a warm store hit would.

    Run on freshly-computed graphs *before* they reach the back end, so
    cold (computed, then stored) and warm (replayed) compilations hand
    the variant-specific stages byte-identical inputs by construction.
    """
    return Ddg.from_dict(json.loads(json.dumps(ddg_payload)))


def _profiles_to_payload(
    profiles: Dict[int, ClusterProfile]
) -> List[List[object]]:
    return [[iid, list(p.counts)] for iid, p in profiles.items()]


def _profiles_from_payload(payload) -> Dict[int, ClusterProfile]:
    return {
        int(iid): ClusterProfile(tuple(counts)) for iid, counts in payload
    }


# ----------------------------------------------------------------------
# Stage implementations (pure compute, no caching)
# ----------------------------------------------------------------------
def run_unroll(ddg: Ddg, machine: MachineConfig,
               unroll_factor: Optional[int]) -> Tuple[Ddg, int]:
    """Clone the source and unroll it for locality (``None`` = the
    paper's heuristic picks the factor, 1 disables)."""
    work = ddg.clone()
    factor = (
        locality_unroll_factor(work, machine)
        if unroll_factor is None
        else unroll_factor
    )
    if factor > 1:
        work = unroll(work, factor)
    return work, factor


def run_disambiguate(work: Ddg, add_mem_deps: bool) -> Ddg:
    """Conservative MF/MA/MO disambiguation, in place on ``work``."""
    if add_mem_deps:
        add_memory_dependences(work)
    return work


def run_profile(
    work: Ddg,
    machine: MachineConfig,
    trace_factory: Callable[[Ddg], TraceLike],
    profile_iterations: Optional[int],
) -> Dict[int, ClusterProfile]:
    """Preferred-cluster profiling over the profile trace."""
    trace = trace_factory(work)
    return profile_preferred_clusters(
        work, trace, machine, max_iterations=profile_iterations
    )


def run_coherence(
    work: Ddg,
    machine: MachineConfig,
    coherence: CoherenceMode,
    profiles: Dict[int, ClusterProfile],
) -> Tuple[Ddg, Optional[MdcResult], Optional[DdgtResult]]:
    """Apply the coherence solution: nothing, MDC chains, or the DDGT
    graph transformations (which replace the working graph)."""
    mdc_result: Optional[MdcResult] = None
    ddgt_result: Optional[DdgtResult] = None
    if coherence is CoherenceMode.MDC:
        mdc_result = apply_mdc(work, profiles)
    elif coherence is CoherenceMode.DDGT:
        ddgt_result = apply_ddgt(work, machine)
        work = ddgt_result.ddg
    return work, mdc_result, ddgt_result


def run_assign(
    work: Ddg,
    machine: MachineConfig,
    heuristic: HeuristicKind,
    profiles: Dict[int, ClusterProfile],
    mdc_result: Optional[MdcResult],
) -> ClusterAssignment:
    return assign_clusters(work, machine, heuristic, profiles, mdc_result)


def run_copies(work: Ddg, machine: MachineConfig,
               assignment: ClusterAssignment) -> List[int]:
    return insert_copies(work, machine, assignment)


def run_schedule(work: Ddg, machine: MachineConfig,
                 assignment: ClusterAssignment) -> Schedule:
    return schedule_with_latency_policy(work, machine, assignment)


def run_postpass(
    work: Ddg,
    machine: MachineConfig,
    assignment: ClusterAssignment,
    schedule: Schedule,
    profiles: Dict[int, ClusterProfile],
) -> Tuple[ClusterAssignment, Schedule]:
    """The MinComs virtual->physical mapping on the finished schedule
    (clusters are homogeneous, so permuting them preserves validity)."""
    mapping = best_cluster_permutation(work, machine, assignment, profiles)
    if all(mapping[c] == c for c in mapping):
        return assignment, schedule
    new_assignment = assignment.permuted(mapping)
    new_ops = {
        iid: ScheduledOp(op.iid, mapping[op.cluster], op.time)
        for iid, op in schedule.ops.items()
    }
    for instr in list(work):
        if instr.required_cluster is not None:
            work.pin_cluster(instr.iid, mapping[instr.required_cluster])
    new_schedule = Schedule(
        ii=schedule.ii,
        ops=new_ops,
        ddg=work,
        machine=machine,
        assumed_latency=schedule.assumed_latency,
    )
    return new_assignment, new_schedule


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
@dataclass
class CompilationResult:
    """Everything produced by one run of the pipeline."""

    schedule: Schedule
    ddg: Ddg  # the final, scheduled graph (replicas/copies/fakes included)
    source: Ddg  # post-unroll, pre-transformation graph (for CMR/CAR etc.)
    assignment: ClusterAssignment
    coherence: CoherenceMode
    heuristic: HeuristicKind
    machine: MachineConfig
    profiles: Dict[int, ClusterProfile] = field(default_factory=dict)
    mdc: Optional[MdcResult] = None
    ddgt: Optional[DdgtResult] = None
    copies: List[int] = field(default_factory=list)
    unroll_factor: int = 1

    @property
    def num_copies(self) -> int:
        """Explicit communication operations in the kernel (Table 4)."""
        return len(self.copies)

    @property
    def ii(self) -> int:
        return self.schedule.ii


def _frontend(
    ddg: Ddg,
    machine: MachineConfig,
    *,
    trace_factory: Optional[Callable[[Ddg], TraceLike]],
    profiles: Optional[Dict[int, ClusterProfile]],
    unroll_factor: Optional[int],
    add_mem_deps: bool,
    profile_iterations: Optional[int],
    check: bool,
    artifacts,
) -> Tuple[Ddg, int, Optional[Dict[int, ClusterProfile]]]:
    """Run (or replay) the variant-independent front end.

    Verification runs only when a stage actually computes — a warm
    artifact was verified by whoever produced it.
    """
    # -- unroll --------------------------------------------------------
    with trace.span("artifact.key", cat="artifact", stage="unroll"):
        k_unroll = unroll_key(ddg, machine, unroll_factor)
    cached = artifacts.get(k_unroll) if artifacts is not None else None
    if cached is not None:
        with trace.span("artifact.replay", cat="artifact", stage="unroll"):
            work = Ddg.from_dict(cached["ddg"])
        factor = cached["factor"]
    else:
        with _timed("unroll"):
            work, factor = run_unroll(ddg, machine, unroll_factor)
        if artifacts is not None:
            with trace.span("artifact.record", cat="artifact",
                            stage="unroll"):
                payload = work.to_dict()
                text = artifacts.put(k_unroll,
                                     {"ddg": payload, "factor": factor})
                work = (Ddg.from_dict(json.loads(text)["ddg"])
                        if isinstance(text, str) else _replayed(payload))

    # -- disambiguate --------------------------------------------------
    with trace.span("artifact.key", cat="artifact",
                    stage="disambiguate"):
        k_disamb = disambiguate_key(k_unroll, add_mem_deps)
    cached = artifacts.get(k_disamb) if artifacts is not None else None
    if cached is not None:
        with trace.span("artifact.replay", cat="artifact",
                        stage="disambiguate"):
            work = Ddg.from_dict(cached["ddg"])
    else:
        with _timed("disambiguate"):
            work = run_disambiguate(work, add_mem_deps)
        if check:
            with _timed("check"):
                verify_ddg(work, machine)
        if artifacts is not None:
            with trace.span("artifact.record", cat="artifact",
                            stage="disambiguate"):
                payload = work.to_dict()
                text = artifacts.put(k_disamb, {"ddg": payload})
                work = (Ddg.from_dict(json.loads(text)["ddg"])
                        if isinstance(text, str) else _replayed(payload))

    # -- profile -------------------------------------------------------
    if profiles is None and trace_factory is not None:
        trace_key = getattr(trace_factory, "key", None)
        k_profile = (
            profile_key(k_disamb, machine, trace_key, profile_iterations)
            if trace_key is not None else None
        )
        cached = (
            artifacts.get(k_profile)
            if artifacts is not None and k_profile is not None else None
        )
        if cached is not None:
            with trace.span("artifact.replay", cat="artifact",
                            stage="profile"):
                profiles = _profiles_from_payload(cached["profiles"])
        else:
            with _timed("profile"):
                profiles = run_profile(
                    work, machine, trace_factory, profile_iterations
                )
            if artifacts is not None and k_profile is not None:
                artifacts.put(
                    k_profile,
                    {"profiles": _profiles_to_payload(profiles)},
                )
    return work, factor, profiles


def execute_pipeline(
    ddg: Ddg,
    machine: MachineConfig,
    *,
    coherence: CoherenceMode = CoherenceMode.NONE,
    heuristic: HeuristicKind = HeuristicKind.MINCOMS,
    trace_factory: Optional[Callable[[Ddg], TraceLike]] = None,
    profiles: Optional[Dict[int, ClusterProfile]] = None,
    unroll_factor: Optional[int] = None,
    add_mem_deps: bool = True,
    profile_iterations: Optional[int] = 256,
    check: bool = True,
    verify: bool = False,
    artifacts=None,
) -> CompilationResult:
    """Run the staged pipeline end to end for one variant.

    With ``artifacts`` (an object with ``get(key) -> dict | None`` and
    ``put(key, dict)``) the front-end stages are replayed from — and
    recorded into — the store; without it the pipeline is pure compute.

    ``verify=True`` runs the ninth, opt-in stage: the independent static
    schedule verifier (:mod:`repro.check.schedule_lint`), which raises
    :class:`~repro.errors.CheckError` on any finding.
    """
    work, factor, profiles = _frontend(
        ddg, machine,
        trace_factory=trace_factory,
        profiles=profiles,
        unroll_factor=unroll_factor,
        add_mem_deps=add_mem_deps,
        profile_iterations=profile_iterations,
        check=check,
        artifacts=artifacts,
    )
    if profiles is None:
        if heuristic is HeuristicKind.PREFCLUS:
            raise SchedulingError(
                "PrefClus needs profiles: pass trace_factory= or profiles="
            )
        profiles = {}

    with trace.span("clone", cat="glue"):
        source = work.clone()

    with _timed("coherence"):
        work, mdc_result, ddgt_result = run_coherence(
            work, machine, coherence, profiles
        )
    if check:
        with _timed("check"):
            verify_ddg(work, machine)

    with _timed("assign"):
        assignment = run_assign(work, machine, heuristic, profiles,
                                mdc_result)
    with _timed("copies"):
        copies = run_copies(work, machine, assignment)
    with _timed("schedule"):
        schedule = run_schedule(work, machine, assignment)

    if heuristic is HeuristicKind.MINCOMS:
        with _timed("postpass"):
            assignment, schedule = run_postpass(
                work, machine, assignment, schedule, profiles
            )

    if check:
        with _timed("check"):
            schedule.validate()

    result = CompilationResult(
        schedule=schedule,
        ddg=work,
        source=source,
        assignment=assignment,
        coherence=coherence,
        heuristic=heuristic,
        machine=machine,
        profiles=profiles,
        mdc=mdc_result,
        ddgt=ddgt_result,
        copies=copies,
        unroll_factor=factor,
    )

    if verify:
        # Imported lazily: repro.check.schedule_lint imports this module
        # for CompilationResult/CoherenceMode.
        from repro.check.schedule_lint import lint_compilation
        from repro.errors import CheckError

        with _timed("verify"):
            findings = lint_compilation(result)
        if findings:
            raise CheckError(
                f"schedule verification failed with {len(findings)} "
                "finding(s):\n"
                + "\n".join(f"  {finding}" for finding in findings)
            )

    return result
