"""Minimum initiation interval bounds.

``ResMII`` counts operations against the machine's functional units and the
register buses; ``RecMII`` is the recurrence bound: the smallest II such
that no dependence cycle has positive total ``latency - II * distance``.
"""

from __future__ import annotations

import math
from typing import Dict, Optional

from repro.arch.config import FuKind, MachineConfig
from repro.errors import SchedulingError
from repro.ir.ddg import Ddg
from repro.sched.schedule import edge_latency


def res_mii(ddg: Ddg, machine: MachineConfig) -> int:
    """Resource-constrained lower bound on the II.

    Clusters are homogeneous, so the classic bound uses pooled units; for
    pinned instructions (replicated store instances) a per-cluster bound is
    also applied, since pinning removes the scheduler's freedom to spread
    them.
    """
    per_kind: Dict[FuKind, int] = {kind: 0 for kind in FuKind}
    per_cluster_kind: Dict[tuple, int] = {}
    copies = 0
    for instr in ddg:
        if instr.is_copy:
            copies += 1
            continue
        kind = instr.fu_kind
        per_kind[kind] = per_kind.get(kind, 0) + 1
        if instr.required_cluster is not None:
            key = (instr.required_cluster, kind)
            per_cluster_kind[key] = per_cluster_kind.get(key, 0) + 1

    bound = 1
    for kind, count in per_kind.items():
        units = machine.fu_per_cluster.get(kind, 0) * machine.num_clusters
        if count and not units:
            raise SchedulingError(f"graph uses {kind} but machine has none")
        if count:
            bound = max(bound, math.ceil(count / units))
    for (cluster, kind), count in per_cluster_kind.items():
        units = machine.fu_per_cluster.get(kind, 0)
        if count and not units:
            raise SchedulingError(f"graph pins {kind} ops, machine has none")
        if count:
            bound = max(bound, math.ceil(count / units))
    if copies:
        buses = machine.register_buses
        bound = max(bound, math.ceil(copies * buses.latency / buses.count))
    return bound


def assignment_res_mii(ddg: Ddg, machine: MachineConfig, assignment) -> int:
    """Resource lower bound once clusters are fixed.

    After cluster assignment the pooled bound of :func:`res_mii` can be far
    too optimistic — e.g. an MDC chain concentrates every memory op of the
    chain in one cluster, so that cluster's single memory unit bounds the
    II.  ``assignment`` is any mapping supporting ``assignment[iid]``.
    """
    per_cluster_kind: Dict[tuple, int] = {}
    copies = 0
    for instr in ddg:
        if instr.is_copy:
            copies += 1
            continue
        key = (assignment[instr.iid], instr.fu_kind)
        per_cluster_kind[key] = per_cluster_kind.get(key, 0) + 1
    bound = 1
    for (cluster, kind), count in per_cluster_kind.items():
        units = machine.fu_per_cluster.get(kind, 0)
        if count and not units:
            raise SchedulingError(f"{kind} ops assigned, machine has no {kind}")
        if count:
            bound = max(bound, math.ceil(count / units))
    if copies:
        buses = machine.register_buses
        bound = max(bound, math.ceil(copies * buses.latency / buses.count))
    return bound


def rec_mii(
    ddg: Ddg,
    machine: MachineConfig,
    assumed_latency: Optional[Dict[int, int]] = None,
    max_ii: int = 512,
) -> int:
    """Recurrence-constrained lower bound on the II.

    Found by binary search over II with a positive-cycle test on edge
    weights ``latency - II * distance`` (Bellman-Ford style relaxation).
    """
    edges = [
        (e.src, e.dst, edge_latency(e, ddg, machine, assumed_latency), e.distance)
        for e in ddg.edges()
    ]
    if not any(d for *_rest, d in edges):
        return 1  # acyclic graph: no recurrence bound

    def feasible(ii: int) -> bool:
        return not _has_positive_cycle(ddg, edges, ii)

    lo, hi = 1, max_ii
    if not feasible(hi):
        raise SchedulingError(
            f"recurrence unschedulable even at II={max_ii}; "
            "graph has a cycle with zero total distance?"
        )
    while lo < hi:
        mid = (lo + hi) // 2
        if feasible(mid):
            hi = mid
        else:
            lo = mid + 1
    return lo


def _has_positive_cycle(ddg: Ddg, edges, ii: int) -> bool:
    """Longest-path relaxation: converges iff no positive-weight cycle."""
    dist = {instr.iid: 0 for instr in ddg}
    n = len(dist)
    for round_ in range(n):
        changed = False
        for src, dst, lat, d in edges:
            w = lat - ii * d
            if dist[src] + w > dist[dst]:
                dist[dst] = dist[src] + w
                changed = True
        if not changed:
            return False
    return True


def minimum_ii(
    ddg: Ddg,
    machine: MachineConfig,
    assumed_latency: Optional[Dict[int, int]] = None,
) -> int:
    """``max(ResMII, RecMII)`` — the scheduler's starting II."""
    return max(res_mii(ddg, machine), rec_mii(ddg, machine, assumed_latency))
