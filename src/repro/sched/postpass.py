"""MinComs post-pass: virtual -> physical cluster mapping (section 2.2).

MinComs places instructions ignoring memory locality; because the clusters
are homogeneous, the resulting clusters are *virtual* and any one-to-one
mapping onto physical clusters yields an equivalent schedule.  The
post-pass picks the permutation that maximizes expected local accesses,
scoring each candidate by the profiled access counts each memory
instruction would satisfy in its mapped cluster.

Replicated store instances are pinned one-per-cluster; permutations
preserve that property, and their accesses are local by construction, so
they contribute no score.
"""

from __future__ import annotations

from itertools import permutations
from typing import Dict, Optional

from repro.alias.profiles import ClusterProfile
from repro.arch.config import MachineConfig
from repro.ir.ddg import Ddg
from repro.sched.cluster import ClusterAssignment

#: Exhaustive search bound; beyond this cluster count a greedy matching is
#: used instead (not exercised by the paper's 4-cluster machine).
_EXHAUSTIVE_LIMIT = 6


def best_cluster_permutation(
    ddg: Ddg,
    machine: MachineConfig,
    assignment: ClusterAssignment,
    profiles: Optional[Dict[int, ClusterProfile]],
) -> Dict[int, int]:
    """virtual cluster -> physical cluster map maximizing local accesses."""
    n = machine.num_clusters
    identity = {c: c for c in range(n)}
    if not profiles:
        return identity

    # gain[v][p]: profiled accesses that become local if virtual cluster v
    # is mapped to physical cluster p.
    gain = [[0] * n for _ in range(n)]
    for instr in ddg.memory_instructions():
        if instr.required_cluster is not None:
            continue  # pinned: not remappable on its own
        profile = profiles.get(instr.iid)
        if profile is None or instr.iid not in assignment:
            continue
        v = assignment[instr.iid]
        for p in range(n):
            gain[v][p] += profile.counts[p]

    if all(all(g == 0 for g in row) for row in gain):
        return identity

    if n <= _EXHAUSTIVE_LIMIT:
        best, best_score = identity, -1
        for perm in permutations(range(n)):
            score = sum(gain[v][perm[v]] for v in range(n))
            if score > best_score:
                best_score = score
                best = {v: perm[v] for v in range(n)}
        return best

    # Greedy fallback for very wide machines.
    remaining = set(range(n))
    mapping: Dict[int, int] = {}
    for v in sorted(range(n), key=lambda v: -max(gain[v])):
        p = max(remaining, key=lambda p: gain[v][p])
        mapping[v] = p
        remaining.remove(p)
    return mapping


def apply_postpass(
    ddg: Ddg,
    machine: MachineConfig,
    assignment: ClusterAssignment,
    profiles: Optional[Dict[int, ClusterProfile]],
) -> ClusterAssignment:
    """Return the assignment with the best virtual->physical permutation
    applied.  Pinned instructions (replicated store instances) keep their
    required clusters by remapping their pins alongside — the instances
    remain one-per-cluster, which is all the pin means."""
    mapping = best_cluster_permutation(ddg, machine, assignment, profiles)
    if all(mapping[c] == c for c in mapping):
        return assignment
    remapped = assignment.permuted(mapping)
    for instr in list(ddg):
        if instr.required_cluster is not None:
            ddg.pin_cluster(instr.iid, mapping[instr.required_cluster])
    return remapped
