"""The full compilation pipeline — public front door.

:func:`compile_loop` runs the staged pipeline of
:mod:`repro.sched.stages` the way the paper's compiler does:

1. loop unrolling for locality (section 2.2);
2. memory disambiguation — conservative MF/MA/MO edges (section 3.1);
3. preferred-cluster profiling on the *profile* trace;
4. the coherence solution: nothing (optimistic baseline), MDC chains, or
   the DDGT graph transformations;
5. cluster assignment (PrefClus or MinComs) honoring chain grouping and
   replica pins;
6. explicit copy insertion for cross-cluster register flow;
7. latency assignment + iterative modulo scheduling;
8. for MinComs: the virtual->physical post-pass re-mapping.

Stages 1–3 (the *front end*) are variant-independent; pass an artifact
store (see :mod:`repro.api.artifacts`) to share them across the
coherence × heuristic cross instead of recomputing them per variant.

Every stage execution is observable: counts and wall time land in the
process metrics registry (``stages.executed`` / ``stages.seconds``,
including the ``check`` verification passes) and, when a tracer is
installed, each stage and artifact interaction becomes a span nested
under ``compile:<loop>`` — see :mod:`repro.obs` and
``docs/observability.md``.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.alias.profiles import ClusterProfile, TraceLike
from repro.arch.config import MachineConfig
from repro.ir.ddg import Ddg
from repro.sched.cluster import HeuristicKind
from repro.sched.stages import (
    CoherenceMode,
    CompilationResult,
    Heuristic,
    execute_pipeline,
)

__all__ = [
    "CoherenceMode",
    "CompilationResult",
    "Heuristic",
    "compile_loop",
]


def compile_loop(
    ddg: Ddg,
    machine: MachineConfig,
    *,
    coherence: CoherenceMode = CoherenceMode.NONE,
    heuristic: HeuristicKind = HeuristicKind.MINCOMS,
    trace_factory: Optional[Callable[[Ddg], TraceLike]] = None,
    profiles: Optional[Dict[int, ClusterProfile]] = None,
    unroll_factor: Optional[int] = None,
    add_mem_deps: bool = True,
    profile_iterations: Optional[int] = 256,
    check: bool = True,
    verify: bool = False,
    artifacts=None,
) -> CompilationResult:
    """Compile one loop for the clustered machine.

    Parameters
    ----------
    trace_factory:
        Builds an address trace over a (possibly unrolled) graph; used for
        preferred-cluster profiling.  The workload catalog passes the
        *profile* data set here (Table 1 distinguishes profile and
        execution inputs).  Either this or ``profiles`` must be provided
        for PrefClus.  When the factory carries a ``key`` attribute (see
        :class:`repro.workloads.traces.TraceSpec`), profiling results are
        artifact-cacheable.
    unroll_factor:
        ``None`` = automatic (the locality heuristic); 1 disables.
    add_mem_deps:
        Run conservative disambiguation.  Disable when the input graph
        already carries hand-written memory edges (e.g. the paper's
        Figure 3 example).
    verify:
        Run the opt-in ninth stage: the independent static schedule
        verifier (:mod:`repro.check.schedule_lint`).  Raises
        :class:`~repro.errors.CheckError` on any finding.  ``check``
        (the scheduler's own assertions) stays on by default; ``verify``
        re-derives the rules from scratch and adds the whole-compilation
        ones (copy completeness, memory-op placement under MDC/DDGT).
    artifacts:
        Optional artifact store (``get(key) -> dict | None`` /
        ``put(key, dict)``).  Front-end stage outputs are replayed from —
        and recorded into — the store, so the 6-way variant cross of one
        loop shares unrolling, disambiguation and profiling.  ``None``
        (the default) compiles from scratch.
    """
    return execute_pipeline(
        ddg,
        machine,
        coherence=coherence,
        heuristic=heuristic,
        trace_factory=trace_factory,
        profiles=profiles,
        unroll_factor=unroll_factor,
        add_mem_deps=add_mem_deps,
        profile_iterations=profile_iterations,
        check=check,
        verify=verify,
        artifacts=artifacts,
    )
