"""The full compilation pipeline.

:func:`compile_loop` strings the phases together the way the paper's
compiler does:

1. loop unrolling for locality (section 2.2);
2. memory disambiguation — conservative MF/MA/MO edges (section 3.1);
3. preferred-cluster profiling on the *profile* trace;
4. the coherence solution: nothing (optimistic baseline), MDC chains, or
   the DDGT graph transformations;
5. cluster assignment (PrefClus or MinComs) honoring chain grouping and
   replica pins;
6. explicit copy insertion for cross-cluster register flow;
7. latency assignment + iterative modulo scheduling;
8. for MinComs: the virtual->physical post-pass re-mapping.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.alias.disambiguation import add_memory_dependences
from repro.alias.profiles import (
    ClusterProfile,
    TraceLike,
    profile_preferred_clusters,
)
from repro.arch.config import MachineConfig
from repro.errors import SchedulingError
from repro.ir.ddg import Ddg
from repro.ir.unroll import locality_unroll_factor, unroll
from repro.ir.verify import verify_ddg
from repro.sched.cluster import (
    ClusterAssignment,
    HeuristicKind,
    assign_clusters,
)
from repro.sched.copies import insert_copies
from repro.sched.ddgt import DdgtResult, apply_ddgt
from repro.sched.latency import schedule_with_latency_policy
from repro.sched.mdc import MdcResult, apply_mdc
from repro.sched.postpass import best_cluster_permutation
from repro.sched.schedule import Schedule, ScheduledOp


class CoherenceMode(enum.Enum):
    """How memory coherence is guaranteed (or, for NONE, assumed away)."""

    #: optimistic baseline: memory edges constrain timing but not placement
    NONE = "none"
    MDC = "mdc"
    DDGT = "ddgt"


#: Public alias: the paper's two cluster-assignment heuristics.
Heuristic = HeuristicKind


@dataclass
class CompilationResult:
    """Everything produced by one run of the pipeline."""

    schedule: Schedule
    ddg: Ddg  # the final, scheduled graph (replicas/copies/fakes included)
    source: Ddg  # post-unroll, pre-transformation graph (for CMR/CAR etc.)
    assignment: ClusterAssignment
    coherence: CoherenceMode
    heuristic: HeuristicKind
    machine: MachineConfig
    profiles: Dict[int, ClusterProfile] = field(default_factory=dict)
    mdc: Optional[MdcResult] = None
    ddgt: Optional[DdgtResult] = None
    copies: List[int] = field(default_factory=list)
    unroll_factor: int = 1

    @property
    def num_copies(self) -> int:
        """Explicit communication operations in the kernel (Table 4)."""
        return len(self.copies)

    @property
    def ii(self) -> int:
        return self.schedule.ii


def compile_loop(
    ddg: Ddg,
    machine: MachineConfig,
    *,
    coherence: CoherenceMode = CoherenceMode.NONE,
    heuristic: HeuristicKind = HeuristicKind.MINCOMS,
    trace_factory: Optional[Callable[[Ddg], TraceLike]] = None,
    profiles: Optional[Dict[int, ClusterProfile]] = None,
    unroll_factor: Optional[int] = None,
    add_mem_deps: bool = True,
    profile_iterations: Optional[int] = 256,
    check: bool = True,
) -> CompilationResult:
    """Compile one loop for the clustered machine.

    Parameters
    ----------
    trace_factory:
        Builds an address trace over a (possibly unrolled) graph; used for
        preferred-cluster profiling.  The workload catalog passes the
        *profile* data set here (Table 1 distinguishes profile and
        execution inputs).  Either this or ``profiles`` must be provided
        for PrefClus.
    unroll_factor:
        ``None`` = automatic (the locality heuristic); 1 disables.
    add_mem_deps:
        Run conservative disambiguation.  Disable when the input graph
        already carries hand-written memory edges (e.g. the paper's
        Figure 3 example).
    """
    work = ddg.clone()
    factor = (
        locality_unroll_factor(work, machine)
        if unroll_factor is None
        else unroll_factor
    )
    if factor > 1:
        work = unroll(work, factor)
    if add_mem_deps:
        add_memory_dependences(work)
    if check:
        verify_ddg(work, machine)

    if profiles is None and trace_factory is not None:
        trace = trace_factory(work)
        profiles = profile_preferred_clusters(
            work, trace, machine, max_iterations=profile_iterations
        )
    if profiles is None:
        if heuristic is HeuristicKind.PREFCLUS:
            raise SchedulingError(
                "PrefClus needs profiles: pass trace_factory= or profiles="
            )
        profiles = {}

    source = work.clone()

    mdc_result: Optional[MdcResult] = None
    ddgt_result: Optional[DdgtResult] = None
    if coherence is CoherenceMode.MDC:
        mdc_result = apply_mdc(work, profiles)
    elif coherence is CoherenceMode.DDGT:
        ddgt_result = apply_ddgt(work, machine)
        work = ddgt_result.ddg
    if check:
        verify_ddg(work, machine)

    assignment = assign_clusters(work, machine, heuristic, profiles, mdc_result)
    copies = insert_copies(work, machine, assignment)
    schedule = schedule_with_latency_policy(work, machine, assignment)

    if heuristic is HeuristicKind.MINCOMS:
        assignment, schedule = _postpass(
            work, machine, assignment, schedule, profiles
        )

    if check:
        schedule.validate()

    return CompilationResult(
        schedule=schedule,
        ddg=work,
        source=source,
        assignment=assignment,
        coherence=coherence,
        heuristic=heuristic,
        machine=machine,
        profiles=profiles,
        mdc=mdc_result,
        ddgt=ddgt_result,
        copies=copies,
        unroll_factor=factor,
    )


def _postpass(
    ddg: Ddg,
    machine: MachineConfig,
    assignment: ClusterAssignment,
    schedule: Schedule,
    profiles: Dict[int, ClusterProfile],
):
    """Apply the MinComs virtual->physical mapping to the finished schedule
    (clusters are homogeneous, so permuting them preserves validity)."""
    mapping = best_cluster_permutation(ddg, machine, assignment, profiles)
    if all(mapping[c] == c for c in mapping):
        return assignment, schedule
    new_assignment = assignment.permuted(mapping)
    new_ops = {
        iid: ScheduledOp(op.iid, mapping[op.cluster], op.time)
        for iid, op in schedule.ops.items()
    }
    for instr in list(ddg):
        if instr.required_cluster is not None:
            ddg.pin_cluster(instr.iid, mapping[instr.required_cluster])
    new_schedule = Schedule(
        ii=schedule.ii,
        ops=new_ops,
        ddg=ddg,
        machine=machine,
        assumed_latency=schedule.assumed_latency,
    )
    return new_assignment, new_schedule
