"""Latency assignment for memory instructions (section 2.2).

"Memory instructions will be scheduled with the largest possible latency
that does not have an impact on compute time."  Scheduling a load with a
larger assumed latency separates it further from its consumers, trading
compute time (more in-flight stages) for stall time (fewer stall-on-use
cycles).  The policy implemented here tries the memory-latency ladder from
most to least pessimistic and accepts the first level that keeps the II of
the optimistic (local-hit) schedule, with bounded growth of the flat
schedule length:

* same II  ->  compute time per iteration is unchanged;
* bounded length growth ->  the deeper software pipeline costs only a few
  extra fill/drain stages, negligible against the loop trip count.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.arch.config import MachineConfig
from repro.errors import SchedulingError
from repro.ir.ddg import Ddg
from repro.sched.cluster import ClusterAssignment
from repro.sched.mii import assignment_res_mii
from repro.sched.modulo import modulo_schedule
from repro.sched.schedule import Schedule

#: Extra flat-schedule length tolerated when raising assumed latencies,
#: in multiples of the II.  One stage: deepening the software pipeline by
#: a single stage is the compromise the paper's policy accepts ("the
#: largest possible latency that does not have an impact on compute
#: time"); more would hide every remote access behind compute and also
#: blow up register pressure, which this model does not charge for.
LENGTH_SLACK_STAGES = 1


def schedule_with_latency_policy(
    ddg: Ddg,
    machine: MachineConfig,
    assignment: ClusterAssignment,
) -> Schedule:
    """Schedule with the paper's compute/stall latency compromise."""
    ladder = machine.memory_latencies().ladder()
    loads = [instr.iid for instr in ddg.loads()]
    floor = assignment_res_mii(ddg, machine, assignment)

    def uniform(level: int) -> Dict[int, int]:
        return {iid: level for iid in loads}

    base = modulo_schedule(ddg, machine, assignment, uniform(ladder[0]), min_ii=floor)
    if not loads:
        return base

    limit = base.length + LENGTH_SLACK_STAGES * base.ii
    for level in sorted(set(ladder[1:]), reverse=True):
        try:
            candidate = modulo_schedule(
                ddg, machine, assignment, uniform(level), min_ii=base.ii
            )
        except SchedulingError:
            continue
        if candidate.ii == base.ii and candidate.length <= limit:
            return candidate
    return base


def consumer_separation(schedule: Schedule, load_iid: int) -> Optional[int]:
    """Scheduled distance (cycles) between a load and its nearest register
    consumer — the latency the schedule tolerates before stalling.

    Returns ``None`` for loads without register consumers (their value is
    never used, so they can never cause a stall).
    """
    from repro.ir.edges import DepKind

    ddg = schedule.ddg
    best: Optional[int] = None
    for edge in ddg.succs(load_iid):
        if edge.kind is not DepKind.RF:
            continue
        sep = (
            schedule.time_of(edge.dst)
            + schedule.ii * edge.distance
            - schedule.time_of(load_iid)
        )
        best = sep if best is None else min(best, sep)
    return best
