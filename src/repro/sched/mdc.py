"""Memory Dependent Chains — the MDC solution (paper section 3.2).

Two memory instructions that may alias must reach the memory system in
program order.  MDC guarantees this by *scheduling every set of (transitively)
memory-dependent instructions in the same cluster*: within a cluster,
memory operations issue in program order (the dependence edges are
scheduling constraints and there is a single memory unit per cluster), and
same-source requests reach their home cluster in issue order.

A *chain* is a connected component of the undirected graph induced by the
MF/MA/MO edges over the memory instructions.  Self-dependences (a store
output-dependent on itself across iterations) do not bind an instruction to
anything else, so singleton components impose no constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.alias.profiles import ClusterProfile
from repro.ir.ddg import Ddg
from repro.ir.edges import MEMORY_DEP_KINDS


@dataclass
class MdcResult:
    """Outcome of chain construction.

    Attributes
    ----------
    chains:
        Every memory-dependent chain with two or more members, as sets of
        iids (singletons are unconstrained and omitted).
    group_of:
        iid -> chain index, for members of multi-instruction chains.
    preferred_cluster:
        chain index -> the chain's *average preferred cluster* (argmax of
        the combined profile), when profiles were supplied.  Used by the
        PrefClus heuristic; MinComs decides placement when it schedules the
        first instruction of the chain instead.
    """

    chains: List[Set[int]] = field(default_factory=list)
    group_of: Dict[int, int] = field(default_factory=dict)
    preferred_cluster: Dict[int, int] = field(default_factory=dict)

    @property
    def chained_instructions(self) -> Set[int]:
        return set(self.group_of)

    def biggest_chain(self) -> Set[int]:
        if not self.chains:
            return set()
        return max(self.chains, key=len)


def memory_dependent_chains(ddg: Ddg) -> List[Set[int]]:
    """Connected components (size >= 2) of the memory-dependence subgraph.

    Components are returned in a deterministic order (by smallest member
    iid) so downstream heuristics are reproducible.
    """
    parent: Dict[int, int] = {v.iid: v.iid for v in ddg.memory_instructions()}

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for edge in ddg.edges():
        if edge.kind in MEMORY_DEP_KINDS and edge.src != edge.dst:
            union(edge.src, edge.dst)

    groups: Dict[int, Set[int]] = {}
    for iid in parent:
        groups.setdefault(find(iid), set()).add(iid)
    chains = [members for members in groups.values() if len(members) >= 2]
    chains.sort(key=min)
    return chains


def apply_mdc(
    ddg: Ddg,
    profiles: Optional[Dict[int, ClusterProfile]] = None,
) -> MdcResult:
    """Build chains and (with profiles) their average preferred clusters.

    The graph itself is not modified: MDC is purely a cluster-assignment
    constraint, enforced by :func:`repro.sched.cluster.assign_clusters`
    through the returned grouping.
    """
    result = MdcResult()
    result.chains = memory_dependent_chains(ddg)
    for index, members in enumerate(result.chains):
        for iid in members:
            result.group_of[iid] = index
        if profiles:
            member_profiles = [
                profiles[iid] for iid in sorted(members) if iid in profiles
            ]
            if member_profiles:
                combined = ClusterProfile.combine(member_profiles)
                result.preferred_cluster[index] = combined.preferred
    return result
