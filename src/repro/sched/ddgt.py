"""Data Dependence Graph Transformations — the DDGT solution (section 3.3).

Two transformations together let the scheduler place every *load* freely
while still serializing aliased accesses:

* **Store replication** (handles MF and MO dependences).  Every store that
  is memory dependent on *any other* instruction is replicated ``N - 1``
  times (``N`` = clusters), each instance pinned to a different cluster,
  and every input/output dependence of the store is replicated with it.
  At run time only the instance in the home cluster of the computed address
  executes; the rest are nullified.  The update therefore always happens
  locally — immediately — so any posterior aliased load observes it.

* **Load-store synchronization** (handles MA dependences).  An MA edge
  ``L -> S`` is replaced by a SYNC edge ``cons(L) -> S``: because the
  machine is stall-on-use, when a consumer of ``L`` has issued, ``L`` has
  completed, so ``S`` can no longer overwrite the value before the read.
  When the chosen consumer is itself a memory instruction sequentially
  posterior to and dependent on ``S`` — the ``n1/n3/n4`` situation of
  Figure 3 — a *fake consumer* (an integer op that just reads the loaded
  register) is created to avoid the impossible cycle.

The transformation follows the paper's ``transform_DDG()`` pseudo-code,
including the two replication subtleties it calls out: a store's MO
self-dependences are *not* replicated (redundant), while memory
dependences between two replicated stores are mapped instance-wise (the
instances living in the same cluster get the edge, which is what
serializes two aliased stores within each cluster).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set

from repro.arch.config import MachineConfig
from repro.errors import TransformError
from repro.ir.ddg import Ddg
from repro.ir.edges import DepKind, Edge, MEMORY_DEP_KINDS
from repro.ir.instructions import Instruction, Opcode


@dataclass
class DdgtResult:
    """Outcome of the DDGT transformation.

    ``ddg`` is a transformed *clone* of the input graph.
    """

    ddg: Ddg
    #: original store iid -> all instance iids (original first).
    replicas: Dict[int, List[int]] = field(default_factory=dict)
    #: iids of fake consumers created by load-store synchronization.
    fake_consumers: List[int] = field(default_factory=list)
    #: number of MA edges rewritten into SYNC edges.
    synchronized: int = 0
    #: number of MA edges dropped as redundant (covered by an RF edge).
    redundant_ma: int = 0

    @property
    def replicated_stores(self) -> int:
        return len(self.replicas)

    @property
    def instance_count(self) -> int:
        return sum(len(v) for v in self.replicas.values())


def apply_ddgt(ddg: Ddg, machine: MachineConfig) -> DdgtResult:
    """Run store replication + load-store synchronization on a clone."""
    out = ddg.clone(f"{ddg.name}+ddgt")
    result = DdgtResult(ddg=out)
    _replicate_stores(out, machine, result)
    _synchronize_loads_and_stores(out, result)
    return result


# ----------------------------------------------------------------------
# Store replication
# ----------------------------------------------------------------------
def _dependent_stores(ddg: Ddg) -> List[Instruction]:
    """Stores with at least one memory dependence on *another* instruction."""
    dependent = []
    for store in ddg.stores():
        edges = ddg.succs(store.iid) + ddg.preds(store.iid)
        if any(
            e.kind in MEMORY_DEP_KINDS and not (e.src == e.dst == store.iid)
            for e in edges
        ):
            dependent.append(store)
    dependent.sort(key=lambda s: (s.seq, s.iid))
    return dependent


def _replicate_stores(
    ddg: Ddg, machine: MachineConfig, result: DdgtResult
) -> None:
    n = machine.num_clusters
    stores = _dependent_stores(ddg)
    replicated: Set[int] = {s.iid for s in stores}

    # First materialize every instance so instance-wise edges can be added
    # between two replicated stores in a second phase.
    for store in stores:
        # The original becomes instance 0, pinned to cluster 0.
        ddg.replace_instruction(
            replace(store, required_cluster=0, replica_group=store.iid)
        )
        instances = [store.iid]
        for k in range(1, n):
            inst = ddg.add_instruction(
                Opcode.STORE,
                srcs=store.srcs,
                mem=store.mem,
                origin=store.iid,
                required_cluster=k,
                replica_group=store.iid,
                name=f"{store.label}.r{k}",
                seq=store.seq,
            )
            instances.append(inst.iid)
        result.replicas[store.iid] = instances

    # Now replicate the dependences.
    for store in stores:
        instances = result.replicas[store.iid]
        for edge in list(ddg.preds(store.iid)) + list(ddg.succs(store.iid)):
            _replicate_edge(ddg, edge, store.iid, instances, result, replicated)


def _replicate_edge(
    ddg: Ddg,
    edge: Edge,
    original: int,
    instances: List[int],
    result: DdgtResult,
    replicated: Set[int],
) -> None:
    """Copy one dependence of a replicated store onto its instances.

    * self MO edges are skipped (the paper's "redundant dependences");
    * memory edges between two replicated stores are added instance-wise
      (same-cluster instances get the edge) — the paper's "newly created
      dependences" between instances of n3 and n4;
    * every other edge is fanned out to all instances.
    """
    if edge.src == edge.dst == original:
        return  # self dependence: redundant after replication

    incoming = edge.dst == original
    other = edge.src if incoming else edge.dst

    if edge.kind in MEMORY_DEP_KINDS and other in replicated and other != original:
        other_instances = result.replicas[other]
        for mine, theirs in zip(instances, other_instances):
            if incoming:
                ddg.add_edge(theirs, mine, edge.kind, edge.distance)
            else:
                ddg.add_edge(mine, theirs, edge.kind, edge.distance)
        return

    # Fan the edge out to the new instances (instance 0 keeps the original
    # edge, which is already in the graph).
    for inst in instances[1:]:
        if incoming:
            ddg.add_edge(other, inst, edge.kind, edge.distance)
        else:
            ddg.add_edge(inst, other, edge.kind, edge.distance)


# ----------------------------------------------------------------------
# Load-store synchronization
# ----------------------------------------------------------------------
def _synchronize_loads_and_stores(ddg: Ddg, result: DdgtResult) -> None:
    """Rewrite every MA edge into a SYNC edge per the paper's pseudo-code."""
    #: load iid -> fake consumer iid, shared across that load's MA edges.
    fakes: Dict[int, int] = {}

    for edge in [e for e in ddg.edges() if e.kind is DepKind.MA]:
        load = ddg.node(edge.src)
        store = ddg.node(edge.dst)
        if not load.is_load or not store.is_store:
            raise TransformError(f"malformed MA edge {edge}")

        if ddg.has_edge(load.iid, store.iid, DepKind.RF) and any(
            e.kind is DepKind.RF and e.distance == edge.distance
            for e in ddg.succs(load.iid)
            if e.dst == store.iid
        ):
            # Redundant: the store already waits for the load's value
            # (the n1 -> n4 case of Figure 3).
            ddg.remove_edge(edge)
            result.redundant_ma += 1
            continue

        cons = _select_consumer(ddg, load, store)
        if cons is None or _needs_fake_consumer(ddg, cons, store):
            cons_iid = fakes.get(load.iid)
            if cons_iid is None:
                cons_iid = _create_fake_consumer(ddg, load, result)
                fakes[load.iid] = cons_iid
        else:
            cons_iid = cons.iid

        ddg.add_edge(cons_iid, store.iid, DepKind.SYNC, edge.distance)
        ddg.remove_edge(edge)
        result.synchronized += 1


def _select_consumer(
    ddg: Ddg, load: Instruction, store: Instruction
) -> Optional[Instruction]:
    """Pick one consumer of the load — "if possible, not a store"."""
    consumers = [
        c for c in ddg.consumers(load.iid) if c.iid != store.iid
    ]
    if not consumers:
        return None
    consumers.sort(key=lambda c: (c.is_store, c.is_memory, c.seq, c.iid))
    return consumers[0]


def _needs_fake_consumer(ddg: Ddg, cons: Instruction, store: Instruction) -> bool:
    """The impossible-loop condition: the consumer is a memory instruction,
    sequentially posterior to the store, and (transitively) dependent on
    it — synchronizing through it would create an unschedulable cycle."""
    if not cons.is_memory:
        return False
    if cons.seq <= store.seq:
        return False
    return _reachable(ddg, store.iid, cons.iid)


def _reachable(ddg: Ddg, src: int, dst: int) -> bool:
    """Is there any dependence path src ->* dst?"""
    seen = {src}
    frontier = [src]
    while frontier:
        node = frontier.pop()
        for edge in ddg.succs(node):
            if edge.dst == dst:
                return True
            if edge.dst not in seen:
                seen.add(edge.dst)
                frontier.append(edge.dst)
    return False


def _create_fake_consumer(
    ddg: Ddg, load: Instruction, result: DdgtResult
) -> int:
    """Materialize the fake consumer: an integer op reading the load's
    destination (the paper's ``add r0 = r0 + r27`` example)."""
    dest_reg = load.dest if load.dest is not None else f"ld{load.iid}"
    fake = ddg.add_instruction(
        Opcode.FAKE,
        dest="r0",
        srcs=(dest_reg,),
        origin=load.iid,
        name=f"{load.label}.sync",
        seq=load.seq,
    )
    ddg.add_edge(load.iid, fake.iid, DepKind.RF, 0)
    result.fake_consumers.append(fake.iid)
    return fake.iid
