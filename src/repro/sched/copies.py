"""Explicit inter-cluster copy insertion.

"The compiler is responsible to add and schedule explicit copy operations
when it schedules two register-flow dependent instructions in different
clusters" (section 2.1).  For every RF edge whose endpoints were assigned
to different clusters, a COPY node is materialized; one copy is shared by
all consumers of the same value in the same destination cluster.

Edge rewiring for ``u -> v`` (distance ``d``) with copy ``w``::

    u --RF,0--> w --RF,d--> v

so the producer-side edge carries the producer latency and the
consumer-side edge carries the bus latency (see
:func:`repro.sched.schedule.edge_latency`), and the loop-carried distance
is preserved end to end.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.arch.config import MachineConfig
from repro.ir.ddg import Ddg
from repro.ir.edges import DepKind
from repro.ir.instructions import Opcode
from repro.sched.cluster import ClusterAssignment


def insert_copies(
    ddg: Ddg,
    machine: MachineConfig,
    assignment: ClusterAssignment,
) -> List[int]:
    """Materialize COPY nodes for cross-cluster RF edges (in place).

    Returns the iids of the inserted copies.  ``assignment`` is extended
    with the copies' clusters (a copy is attributed to its destination
    cluster; the bus it occupies is a global resource).
    """
    inserted: List[int] = []
    #: (producer iid, destination cluster) -> copy iid
    existing: Dict[Tuple[int, int], int] = {}

    for edge in [e for e in ddg.edges() if e.kind is DepKind.RF]:
        src_cluster = assignment[edge.src]
        dst_cluster = assignment[edge.dst]
        if src_cluster == dst_cluster:
            continue
        key = (edge.src, dst_cluster)
        copy_iid = existing.get(key)
        if copy_iid is None:
            producer = ddg.node(edge.src)
            reg = producer.dest if producer.dest else f"v{producer.iid}"
            copy = ddg.add_instruction(
                Opcode.COPY,
                dest=f"{reg}@c{dst_cluster}",
                srcs=(reg,),
                origin=producer.iid,
                name=f"cp.{producer.label}.c{dst_cluster}",
                seq=producer.seq,
            )
            ddg.add_edge(edge.src, copy.iid, DepKind.RF, 0)
            assignment.cluster_of[copy.iid] = dst_cluster
            existing[key] = copy.iid
            inserted.append(copy.iid)
            copy_iid = copy.iid
        ddg.add_edge(copy_iid, edge.dst, DepKind.RF, edge.distance)
        ddg.remove_edge(edge)

    return inserted


def communication_count(ddg: Ddg) -> int:
    """Number of explicit copy operations in a compiled graph — the
    "communication operations" metric of Table 4."""
    return sum(1 for instr in ddg if instr.is_copy)
