"""Cluster assignment heuristics: PrefClus and MinComs (section 2.2).

* **PrefClus** schedules each memory instruction in its *preferred cluster*
  (the cluster it accesses most, from profiling); memory dependent chains
  go to the chain's average preferred cluster.  Non-memory instructions are
  placed to minimize register communications with workload balance.
* **MinComs** treats memory instructions like any other: every instruction
  goes to the cluster with the best trade-off between register-to-register
  communications and workload balance.  A later post-pass
  (:mod:`repro.sched.postpass`) re-maps the resulting *virtual* clusters
  onto physical clusters to maximize local accesses.

Hard constraints honored by both: ``required_cluster`` pins (replicated
store instances) and MDC chain grouping (all members of a chain share one
cluster).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.alias.profiles import ClusterProfile
from repro.arch.config import MachineConfig
from repro.errors import SchedulingError
from repro.ir.ddg import Ddg
from repro.ir.edges import DepKind
from repro.ir.instructions import Instruction
from repro.sched.mdc import MdcResult

#: Relative weight of one avoided inter-cluster communication versus one
#: unit of workload imbalance in the greedy placement cost.
_COMM_WEIGHT = 4.0
_BALANCE_WEIGHT = 1.0


class HeuristicKind(enum.Enum):
    PREFCLUS = "prefclus"
    MINCOMS = "mincoms"


@dataclass
class ClusterAssignment:
    """iid -> cluster map plus bookkeeping used by later phases."""

    cluster_of: Dict[int, int] = field(default_factory=dict)
    heuristic: HeuristicKind = HeuristicKind.MINCOMS

    def __getitem__(self, iid: int) -> int:
        return self.cluster_of[iid]

    def __contains__(self, iid: int) -> bool:
        return iid in self.cluster_of

    def permuted(self, mapping: Dict[int, int]) -> "ClusterAssignment":
        """Apply a virtual -> physical cluster permutation."""
        return ClusterAssignment(
            cluster_of={
                iid: mapping[c] for iid, c in self.cluster_of.items()
            },
            heuristic=self.heuristic,
        )


def assign_clusters(
    ddg: Ddg,
    machine: MachineConfig,
    heuristic: HeuristicKind,
    profiles: Optional[Dict[int, ClusterProfile]] = None,
    mdc: Optional[MdcResult] = None,
) -> ClusterAssignment:
    """Assign every instruction to a cluster.

    ``profiles`` are required for PrefClus (it has nothing to prefer
    without them); MinComs ignores them here and uses them in the
    post-pass.
    """
    if heuristic is HeuristicKind.PREFCLUS and profiles is None:
        raise SchedulingError("PrefClus requires memory profiles")

    assignment = ClusterAssignment(heuristic=heuristic)
    placed = assignment.cluster_of
    #: chain index -> cluster, fixed when the chain's first member lands.
    chain_cluster: Dict[int, int] = {}
    load = [
        {kind: 0 for kind in machine.fu_per_cluster}
        for _ in machine.clusters
    ]

    def commit(instr: Instruction, cluster: int) -> None:
        placed[instr.iid] = cluster
        if instr.fu_kind is not None:
            load[cluster][instr.fu_kind] = load[cluster].get(instr.fu_kind, 0) + 1
        if mdc is not None and instr.iid in mdc.group_of:
            chain_cluster.setdefault(mdc.group_of[instr.iid], cluster)

    def greedy_cluster(instr: Instruction) -> int:
        """MinComs-style placement: fewest cross-cluster RF edges to the
        already-placed neighborhood, workload balance as tie-breaker."""
        neighbors: List[int] = []
        for edge in ddg.preds(instr.iid):
            if edge.kind is DepKind.RF and edge.src in placed:
                neighbors.append(placed[edge.src])
        for edge in ddg.succs(instr.iid):
            if edge.kind is DepKind.RF and edge.dst in placed:
                neighbors.append(placed[edge.dst])
        best_cluster, best_cost = 0, float("inf")
        for c in machine.clusters:
            comms = sum(1 for n in neighbors if n != c)
            balance = (
                load[c].get(instr.fu_kind, 0) if instr.fu_kind is not None else 0
            )
            cost = _COMM_WEIGHT * comms + _BALANCE_WEIGHT * balance
            if cost < best_cost:
                best_cluster, best_cost = c, cost
        return best_cluster

    def forced_cluster(instr: Instruction) -> Optional[int]:
        if instr.required_cluster is not None:
            return instr.required_cluster
        if mdc is not None:
            group = mdc.group_of.get(instr.iid)
            if group is not None:
                if group in chain_cluster:
                    return chain_cluster[group]
                if heuristic is HeuristicKind.PREFCLUS:
                    return mdc.preferred_cluster.get(group)
        return None

    for instr in ddg.in_program_order():
        forced = forced_cluster(instr)
        if forced is not None:
            commit(instr, forced)
            continue
        if (
            heuristic is HeuristicKind.PREFCLUS
            and instr.is_memory
            and profiles is not None
            and instr.iid in profiles
        ):
            commit(instr, profiles[instr.iid].preferred)
            continue
        commit(instr, greedy_cluster(instr))

    return assignment
