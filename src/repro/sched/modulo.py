"""Iterative modulo scheduling (Rau-style, with ejection).

The scheduler consumes a DDG whose instructions already carry a cluster
assignment.  For a candidate II it places operations highest-priority
first (priority = dependence height), each within a window of II slots
starting at its earliest legal time; when no slot has a free resource the
operation is force-placed and the conflicting/violated operations are
ejected and re-queued.  A placement budget bounds the search; on failure
the II is increased, up to ``MAX_II_SLACK`` above the lower bound.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.arch.config import MachineConfig
from repro.errors import SchedulingError
from repro.ir.ddg import Ddg
from repro.sched.cluster import ClusterAssignment
from repro.sched.mii import minimum_ii
from repro.sched.schedule import (
    ReservationTable,
    Schedule,
    ScheduledOp,
    edge_latency,
)

#: How far above max(ResMII, RecMII) the scheduler will search.
MAX_II_SLACK = 64
#: Placement attempts allowed per candidate II, per operation.
BUDGET_FACTOR = 12


def modulo_schedule(
    ddg: Ddg,
    machine: MachineConfig,
    assignment: ClusterAssignment,
    assumed_latency: Optional[Dict[int, int]] = None,
    min_ii: Optional[int] = None,
) -> Schedule:
    """Produce a valid modulo schedule; raise SchedulingError if impossible
    within the II search window."""
    assumed = dict(assumed_latency or {})
    lower = minimum_ii(ddg, machine, assumed)
    if min_ii is not None:
        lower = max(lower, min_ii)
    for ii in range(lower, lower + MAX_II_SLACK + 1):
        ops = _try_ii(ddg, machine, assignment, assumed, ii)
        if ops is not None:
            return Schedule(
                ii=ii,
                ops=ops,
                ddg=ddg,
                machine=machine,
                assumed_latency=assumed,
            )
    raise SchedulingError(
        f"no schedule found for {ddg.name!r} within II in "
        f"[{lower}, {lower + MAX_II_SLACK}]"
    )


# ----------------------------------------------------------------------
def _edge_weights(
    ddg: Ddg, machine: MachineConfig, assumed: Dict[int, int]
) -> List[Tuple[int, int, int, int]]:
    return [
        (e.src, e.dst, edge_latency(e, ddg, machine, assumed), e.distance)
        for e in ddg.edges()
    ]


def _heights(
    ddg: Ddg, weights, ii: int
) -> Dict[int, int]:
    """Dependence height of each node at this II (longest outgoing path
    with weights ``lat - II * distance``); the scheduling priority."""
    height = {instr.iid: 0 for instr in ddg}
    n = len(height)
    for _ in range(n):
        changed = False
        for src, dst, lat, d in weights:
            w = lat - ii * d
            if height[dst] + w > height[src]:
                height[src] = height[dst] + w
                changed = True
        if not changed:
            break
    else:
        # Positive cycle: this II is below the recurrence bound.
        raise SchedulingError(f"positive dependence cycle at II={ii}")
    return height


def _try_ii(
    ddg: Ddg,
    machine: MachineConfig,
    assignment: ClusterAssignment,
    assumed: Dict[int, int],
    ii: int,
) -> Optional[Dict[int, ScheduledOp]]:
    weights = _edge_weights(ddg, machine, assumed)
    try:
        height = _heights(ddg, weights, ii)
    except SchedulingError:
        return None

    preds: Dict[int, List[Tuple[int, int, int]]] = {v.iid: [] for v in ddg}
    succs: Dict[int, List[Tuple[int, int, int]]] = {v.iid: [] for v in ddg}
    for src, dst, lat, d in weights:
        preds[dst].append((src, lat, d))
        succs[src].append((dst, lat, d))

    table = ReservationTable(machine, ii)
    placed: Dict[int, ScheduledOp] = {}
    last_time: Dict[int, int] = {}  # previous placement, for retry floor
    budget = BUDGET_FACTOR * max(1, len(ddg))

    pending: Set[int] = {v.iid for v in ddg}

    def pick_next() -> int:
        return max(pending, key=lambda iid: (height[iid], -iid))

    def earliest_start(iid: int) -> int:
        start = 0
        for src, lat, d in preds[iid]:
            if src in placed:
                start = max(start, placed[src].time + lat - ii * d)
        return start

    def eject(iid: int) -> None:
        op = placed.pop(iid)
        table.remove(ddg.node(iid), op.cluster, op.time)
        pending.add(iid)

    while pending:
        if budget <= 0:
            return None
        budget -= 1
        iid = pick_next()
        pending.discard(iid)
        instr = ddg.node(iid)
        cluster = assignment[iid]

        start = earliest_start(iid)
        floor = last_time.get(iid)
        if floor is not None and floor + 1 > start:
            start = floor + 1

        chosen = None
        for t in range(start, start + ii):
            if table.fits(instr, cluster, t):
                chosen = t
                break
        if chosen is None:
            chosen = start
            for victim in table.conflicting_ops(instr, cluster, chosen):
                eject(victim)

        table.place(instr, cluster, chosen)
        placed[iid] = ScheduledOp(iid=iid, cluster=cluster, time=chosen)
        last_time[iid] = chosen

        # Eject successors whose dependence the new placement violates.
        for dst, lat, d in succs[iid]:
            if dst in placed and dst != iid:
                if placed[dst].time < chosen + lat - ii * d:
                    eject(dst)
        # Predecessor constraints were honoured via earliest_start for the
        # scheduled ones; unscheduled predecessors will see this node when
        # their own earliest_start is computed... but a predecessor placed
        # *later* in time is fine only if its edge allows it — handled when
        # the predecessor is (re)placed, by ejecting ITS violated
        # successors, which includes this node.

    # Normalize: shift so the earliest op starts at time 0 (keeps slot
    # structure: shifting by a multiple of II only; otherwise keep as is).
    min_time = min(op.time for op in placed.values())
    if min_time:
        shift = (min_time // ii) * ii
        if shift:
            placed = {
                iid: ScheduledOp(op.iid, op.cluster, op.time - shift)
                for iid, op in placed.items()
            }
    return placed
