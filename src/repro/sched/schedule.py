"""Schedule data structures: modulo reservation table and the result type.

Resource model
--------------
Each cluster owns ``fu_per_cluster[kind]`` units of each functional-unit
class; an operation occupies one unit for one (issue) slot — the units are
fully pipelined.  Inter-cluster COPY operations occupy one of the global
register-to-register buses for ``register_buses.latency`` *consecutive*
modulo slots (the buses run at a fraction of the core frequency).  Memory
buses are not statically reserved: their occupancy depends on run-time hit/
miss behaviour, which is exactly why their latency is non-deterministic to
the compiler (paper section 2.3, footnote 2).

Timing model
------------
A modulo schedule assigns every operation ``v`` a start time ``t(v)``;
instance ``i`` of ``v`` issues at ``t(v) + i * II``.  A dependence edge
``u -> v`` with latency ``lat`` and distance ``d`` is satisfied iff
``t(v) >= t(u) + lat - II * d``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.config import FuKind, MachineConfig
from repro.errors import SchedulingError
from repro.ir.ddg import Ddg
from repro.ir.edges import DepKind, Edge
from repro.ir.instructions import Instruction, LATENCY_MNEMONIC, Opcode


def edge_latency(
    edge: Edge,
    ddg: Ddg,
    machine: MachineConfig,
    assumed_latency: Optional[Dict[int, int]] = None,
) -> int:
    """Scheduling latency of a dependence edge.

    * RF from a load: the load's *assumed* latency (the scheduler's pick
      from the memory-latency ladder; defaults to a local hit);
    * RF from a COPY: the register-bus latency;
    * RF otherwise: the producer's fixed latency;
    * MF / MO: the store's completion latency (the consumer memory op must
      issue strictly after the store);
    * MA / SYNC: 0 — the target may issue in the same cycle or later.
    """
    src = ddg.node(edge.src)
    if edge.kind is DepKind.RF:
        if src.opcode is Opcode.LOAD:
            if assumed_latency and edge.src in assumed_latency:
                return assumed_latency[edge.src]
            return machine.memory_latencies().local_hit
        if src.opcode is Opcode.COPY:
            return machine.register_buses.latency
        return machine.op_latency(LATENCY_MNEMONIC[src.opcode])
    if edge.kind in (DepKind.MF, DepKind.MO):
        return machine.op_latency("store")
    # MA and SYNC: issue-order constraints.
    return 0


@dataclass(frozen=True)
class ScheduledOp:
    """Placement of one instruction in the kernel."""

    iid: int
    cluster: int
    time: int  # absolute start time within the flat schedule

    def slot(self, ii: int) -> int:
        return self.time % ii

    def stage(self, ii: int) -> int:
        return self.time // ii


class ReservationTable:
    """Modulo reservation table for one candidate II.

    Tracks, per modulo slot, which operation occupies each functional unit
    and each register bus.  ``place``/``remove`` keep the table consistent
    under the iterative scheduler's eject-and-retry policy.
    """

    def __init__(self, machine: MachineConfig, ii: int) -> None:
        if ii < 1:
            raise SchedulingError(f"II must be >= 1, got {ii}")
        self.machine = machine
        self.ii = ii
        # (cluster, fu_kind, slot) -> list of iids (len <= units)
        self._fu: Dict[Tuple[int, FuKind, int], List[int]] = {}
        # (bus_index, slot) -> iid
        self._bus: Dict[Tuple[int, int], int] = {}
        # iid -> bus index (for removal)
        self._bus_of: Dict[int, int] = {}

    # ------------------------------------------------------------------
    def _fu_free(self, instr: Instruction, cluster: int, slot: int) -> bool:
        kind = instr.fu_kind
        assert kind is not None
        units = self.machine.fu_per_cluster.get(kind, 0)
        if units == 0:
            return False
        taken = self._fu.get((cluster, kind, slot), [])
        return len(taken) < units

    def _bus_slots(self, slot: int) -> List[int]:
        return [
            (slot + k) % self.ii for k in range(self.machine.register_buses.latency)
        ]

    def _find_free_bus(self, slot: int) -> Optional[int]:
        for bus in range(self.machine.register_buses.count):
            if all((bus, s) not in self._bus for s in self._bus_slots(slot)):
                return bus
        return None

    # ------------------------------------------------------------------
    def fits(self, instr: Instruction, cluster: int, time: int) -> bool:
        slot = time % self.ii
        if instr.is_copy:
            return self._find_free_bus(slot) is not None
        return self._fu_free(instr, cluster, slot)

    def place(self, instr: Instruction, cluster: int, time: int) -> None:
        slot = time % self.ii
        if instr.is_copy:
            bus = self._find_free_bus(slot)
            if bus is None:
                raise SchedulingError(
                    f"no register bus free at slot {slot} for {instr.label}"
                )
            for s in self._bus_slots(slot):
                self._bus[(bus, s)] = instr.iid
            self._bus_of[instr.iid] = bus
            return
        kind = instr.fu_kind
        if not self._fu_free(instr, cluster, slot):
            raise SchedulingError(
                f"{kind} unit busy in cluster {cluster} slot {slot} "
                f"for {instr.label}"
            )
        self._fu.setdefault((cluster, kind, slot), []).append(instr.iid)

    def remove(self, instr: Instruction, cluster: int, time: int) -> None:
        slot = time % self.ii
        if instr.is_copy:
            bus = self._bus_of.pop(instr.iid)
            for s in self._bus_slots(slot):
                if self._bus.get((bus, s)) == instr.iid:
                    del self._bus[(bus, s)]
            return
        self._fu[(cluster, instr.fu_kind, slot)].remove(instr.iid)

    def conflicting_ops(
        self, instr: Instruction, cluster: int, time: int
    ) -> List[int]:
        """Operations that must be ejected to place ``instr`` here."""
        slot = time % self.ii
        if instr.is_copy:
            # Eject every transfer overlapping the first bus's window.
            victims = []
            for s in self._bus_slots(slot):
                owner = self._bus.get((0, s))
                if owner is not None and owner not in victims:
                    victims.append(owner)
            return victims
        return list(self._fu.get((cluster, instr.fu_kind, slot), []))


@dataclass
class Schedule:
    """A finished modulo schedule.

    ``ddg`` is the final graph actually scheduled — including COPY nodes,
    replicated store instances and fake consumers.
    """

    ii: int
    ops: Dict[int, ScheduledOp]
    ddg: Ddg
    machine: MachineConfig
    assumed_latency: Dict[int, int] = field(default_factory=dict)

    @property
    def length(self) -> int:
        """Flat schedule length (cycles from first to last issue, +1)."""
        if not self.ops:
            return 0
        return max(op.time for op in self.ops.values()) + 1

    @property
    def stage_count(self) -> int:
        """Number of kernel stages (SC); a loop of N iterations executes in
        about ``(N + SC - 1) * II`` stall-free cycles."""
        if not self.ops:
            return 1
        return max(op.time for op in self.ops.values()) // self.ii + 1

    def time_of(self, iid: int) -> int:
        return self.ops[iid].time

    def cluster_of(self, iid: int) -> int:
        return self.ops[iid].cluster

    def ops_by_slot(self) -> List[List[ScheduledOp]]:
        """Scheduled ops bucketed by modulo slot (index = slot)."""
        buckets: List[List[ScheduledOp]] = [[] for _ in range(self.ii)]
        for op in self.ops.values():
            buckets[op.time % self.ii].append(op)
        for bucket in buckets:
            bucket.sort(key=lambda op: op.iid)
        return buckets

    def copy_count(self) -> int:
        return sum(1 for op in self.ops.values() if self.ddg.node(op.iid).is_copy)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check dependence and resource constraints; raise on violation.

        This re-checks everything from scratch and is used by tests and by
        the pipeline's ``check=True`` mode.
        """
        for instr in self.ddg:
            if instr.iid not in self.ops:
                raise SchedulingError(f"{instr.label} was never scheduled")
            placed = self.ops[instr.iid]
            rc = instr.required_cluster
            if rc is not None and placed.cluster != rc:
                raise SchedulingError(
                    f"{instr.label} pinned to cluster {rc} but scheduled in "
                    f"{placed.cluster}"
                )
        for edge in self.ddg.edges():
            lat = edge_latency(edge, self.ddg, self.machine, self.assumed_latency)
            lhs = self.ops[edge.dst].time - self.ops[edge.src].time
            rhs = lat - self.ii * edge.distance
            if lhs < rhs:
                raise SchedulingError(
                    f"dependence violated: {edge} (needs {rhs}, got {lhs})"
                )
        # Re-play functional-unit usage exactly (one slot per op, so the
        # check is order-independent).
        fu_usage: Dict[Tuple[int, FuKind, int], int] = {}
        bus_usage: Dict[int, int] = {}
        for op in self.ops.values():
            instr = self.ddg.node(op.iid)
            slot = op.time % self.ii
            if instr.is_copy:
                # Copies occupy a register bus for `latency` consecutive
                # modulo slots.  Bus *identity* is a first-fit packing whose
                # feasibility the scheduler's reservation table proved
                # constructively; replaying it in a different order can
                # false-negative, so validation checks the per-slot
                # aggregate capacity instead.
                for k in range(self.machine.register_buses.latency):
                    s = (slot + k) % self.ii
                    bus_usage[s] = bus_usage.get(s, 0) + 1
                continue
            key = (op.cluster, instr.fu_kind, slot)
            fu_usage[key] = fu_usage.get(key, 0) + 1
        for (cluster, kind, slot), used in fu_usage.items():
            units = self.machine.fu_per_cluster.get(kind, 0)
            if used > units:
                raise SchedulingError(
                    f"{used} {kind} ops in cluster {cluster} slot {slot} "
                    f"but only {units} unit(s)"
                )
        for slot, used in bus_usage.items():
            if used > self.machine.register_buses.count:
                raise SchedulingError(
                    f"{used} copies occupy slot {slot} but only "
                    f"{self.machine.register_buses.count} register buses"
                )

    def describe(self) -> str:
        """Kernel dump: one line per (slot, cluster) with the ops issued."""
        lines = [
            f"II={self.ii} length={self.length} stages={self.stage_count} "
            f"copies={self.copy_count()}"
        ]
        by_slot = self.ops_by_slot()
        for slot in range(self.ii):
            for cluster in self.machine.clusters:
                cell = [
                    f"{self.ddg.node(op.iid).label}@s{op.stage(self.ii)}"
                    for op in by_slot[slot]
                    if op.cluster == cluster
                ]
                if cell:
                    lines.append(
                        f"  slot {slot} cluster {cluster}: " + " ".join(cell)
                    )
        return "\n".join(lines)
