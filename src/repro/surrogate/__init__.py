"""repro.surrogate — learned cost model with differential validation.

A zero-dependency subsystem that predicts IPC, II, and bus traffic for
sweep cells straight from their self-describing names, so huge
scenario × machine × variant × model crosses can be pre-ranked and only
the interesting frontier simulated for real.

The contract, everywhere: **predictions never replace ground truth**.
The surrogate only decides *which* cells get simulated; every reported
number (summaries, anomalies, violations) comes from real simulation,
and skipped cells are reported as skipped.

Modules:

* :mod:`~repro.surrogate.features` — deterministic cell featurizer and
  the feature schema (named slots + content hash);
* :mod:`~repro.surrogate.model` — pure-python ridge regressor with
  byte-stable JSON artifacts and active-learning ``refit_with``;
* :mod:`~repro.surrogate.train` — training from ``RunRecord``s in any
  store, deterministic held-out MAE / rank-correlation report;
* :mod:`~repro.surrogate.guide` — rank-sum interest scoring and
  budgeted frontier selection with seeded exploration;
* :mod:`~repro.surrogate.store` — content-hashed model artifacts under
  ``<cache-root>/surrogate/``.
"""

from repro.surrogate.features import (
    FEATURE_NAMES,
    SCHEMA_VERSION,
    cell_key,
    describe_features,
    feature_schema_hash,
    featurize,
    featurize_spec,
)
from repro.surrogate.guide import (
    FrontierSelection,
    interest_scores,
    select_frontier,
    top_fraction_keys,
)
from repro.surrogate.model import (
    DEFAULT_RIDGE_LAMBDA,
    TARGETS,
    SurrogateModel,
    TrainRow,
    describe_model,
    mean_absolute_error,
    rank_correlation,
)
from repro.surrogate.store import (
    SURROGATE_DIR,
    clear_models,
    latest_model_id,
    list_model_ids,
    load_model,
    load_models,
    model_path,
    save_model,
    surrogate_root,
)
from repro.surrogate.train import (
    DEFAULT_HOLDOUT_FRAC,
    record_targets,
    record_to_row,
    rows_from_records,
    rows_from_store,
    train_from_records,
    train_from_rows,
    train_from_store,
)

__all__ = [
    "FEATURE_NAMES",
    "SCHEMA_VERSION",
    "cell_key",
    "describe_features",
    "feature_schema_hash",
    "featurize",
    "featurize_spec",
    "FrontierSelection",
    "interest_scores",
    "select_frontier",
    "top_fraction_keys",
    "DEFAULT_RIDGE_LAMBDA",
    "TARGETS",
    "SurrogateModel",
    "TrainRow",
    "describe_model",
    "mean_absolute_error",
    "rank_correlation",
    "SURROGATE_DIR",
    "clear_models",
    "latest_model_id",
    "list_model_ids",
    "load_model",
    "load_models",
    "model_path",
    "save_model",
    "surrogate_root",
    "DEFAULT_HOLDOUT_FRAC",
    "record_targets",
    "record_to_row",
    "rows_from_records",
    "rows_from_store",
    "train_from_records",
    "train_from_rows",
    "train_from_store",
]
