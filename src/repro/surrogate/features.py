"""Deterministic featurization of sweep cells.

A *cell* is one (scenario, machine, variant, model) point of a sweep
cross.  Every dimension of the cell is already encoded in strings — the
``scn-…`` scenario name carries all six generator knobs, the machine
name is either a catalog name or a self-describing ``gen-…`` string
(optionally with a ``-mm<model>`` suffix), and the variant key names the
coherence mode and cluster heuristic — so a cell can be reduced to a
fixed numeric vector with **no compilation or simulation**:

* scenario knobs straight from :meth:`ScenarioParams.parse` plus a
  one-hot over the generator families;
* cheap structural DDG features (node/edge counts, memory-op mix,
  ambiguous/indirect reference densities) from the seeded generator,
  which builds the DDG in microseconds;
* machine geometry from :func:`~repro.arch.config.named_config` —
  cluster count, bus counts/latencies, cache geometry, next level, and
  the derived remote-hit/remote-miss latency ladder;
* variant and memory-model one-hots.

The vector layout is the *feature schema*: :data:`FEATURE_NAMES` names
every slot and :func:`feature_schema_hash` digests the layout, so a
trained model artifact can refuse to score vectors produced by a
different schema instead of silently misreading them.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Dict, List, Optional, Tuple

from repro.alias.memref import AccessPattern
from repro.arch.config import named_config, split_model_suffix
from repro.errors import WorkloadError
from repro.hashing import digest
from repro.scenarios.generator import (
    FAMILIES,
    ScenarioParams,
    build_scenario_ddg,
    is_scenario_name,
)
from repro.sim.models import model_names

#: Coherence modes / heuristics in variant-key order (one-hot slots).
_COHERENCE_SLOTS: Tuple[str, ...] = ("none", "mdc", "ddgt")
_HEURISTIC_SLOTS: Tuple[str, ...] = ("prefclus", "mincoms")


def _model_slots() -> Tuple[str, ...]:
    """Registered memory models in stable (sorted) order.

    Registering a new model widens the vector, which changes the schema
    hash — exactly right: a model trained before the new dimension
    existed cannot honestly score cells that use it.
    """
    return tuple(sorted(model_names()))


def _build_feature_names() -> Tuple[str, ...]:
    names: List[str] = ["bias"]
    names += ["scn_size", "scn_mem_pct", "scn_recurrence", "scn_alias_pct"]
    # Products the boosted stumps cannot synthesize from depth-1 splits:
    # recurrence-bound II scales with chain length x loop size, and
    # coherence traffic with how many of the many accesses can alias.
    names += ["scn_rec_x_size", "scn_alias_x_mem", "scn_mem_x_size"]
    names += [f"fam_{family}" for family in FAMILIES]
    names += [
        "ddg_nodes", "ddg_edges", "ddg_mem_ops", "ddg_loads", "ddg_stores",
        "ddg_mem_fraction", "ddg_ambiguous_fraction", "ddg_indirect_fraction",
    ]
    names += [
        "mach_clusters", "mach_mem_buses", "mach_mem_bus_latency",
        "mach_reg_buses", "mach_reg_bus_latency", "mach_module_bytes",
        "mach_block_bytes", "mach_ways", "mach_nl_latency", "mach_nl_ports",
        "mach_remote_hit", "mach_remote_miss",
    ]
    names += [f"coh_{mode}" for mode in _COHERENCE_SLOTS]
    names += [f"heur_{heuristic}" for heuristic in _HEURISTIC_SLOTS]
    names += [f"model_{model}" for model in _model_slots()]
    return tuple(names)


#: The feature schema: one name per vector slot, in vector order.
FEATURE_NAMES: Tuple[str, ...] = _build_feature_names()

#: Schema format version — bump when the *meaning* of a slot changes
#: without its name changing.
SCHEMA_VERSION = 1


def feature_schema_hash() -> str:
    """Content hash of the feature schema (names, order, version)."""
    return digest({"version": SCHEMA_VERSION, "names": FEATURE_NAMES})


# ----------------------------------------------------------------------
# Per-dimension featurizers (each returns a fixed-length list)
# ----------------------------------------------------------------------
@lru_cache(maxsize=4096)
def _scenario_features(name: str) -> Tuple[float, ...]:
    params = ScenarioParams.parse(name)
    ddg = build_scenario_ddg(params)
    nodes = len(ddg)
    edges = len(ddg.edges())
    mem_ops = ddg.memory_instructions()
    loads = ddg.loads()
    stores = ddg.stores()
    ambiguous = sum(
        1 for instr in mem_ops
        if instr.mem is not None and instr.mem.ambiguous
    )
    indirect = sum(
        1 for instr in mem_ops
        if instr.mem is not None
        and instr.mem.pattern is AccessPattern.INDIRECT
    )
    out: List[float] = [
        float(params.size), float(params.mem_pct),
        float(params.recurrence), float(params.alias_pct),
        float(params.recurrence * params.size),
        float(params.alias_pct * params.mem_pct),
        float(params.mem_pct * params.size),
    ]
    out += [1.0 if params.family == family else 0.0 for family in FAMILIES]
    out += [
        float(nodes), float(edges), float(len(mem_ops)),
        float(len(loads)), float(len(stores)),
        len(mem_ops) / nodes if nodes else 0.0,
        ambiguous / len(mem_ops) if mem_ops else 0.0,
        indirect / len(mem_ops) if mem_ops else 0.0,
    ]
    return tuple(out)


@lru_cache(maxsize=1024)
def _machine_features(machine: str) -> Tuple[float, ...]:
    config = named_config(machine)
    lat = config.memory_latencies()
    return (
        float(config.num_clusters),
        float(config.memory_buses.count), float(config.memory_buses.latency),
        float(config.register_buses.count),
        float(config.register_buses.latency),
        float(config.cache.module_bytes), float(config.cache.block_bytes),
        float(config.cache.associativity),
        float(config.next_level.latency), float(config.next_level.ports),
        float(lat.remote_hit), float(lat.remote_miss),
    )


def _one_hot(value: str, slots: Tuple[str, ...], what: str) -> List[float]:
    if value not in slots:
        raise WorkloadError(
            f"cannot featurize {what} {value!r}; known: {slots}"
        )
    return [1.0 if value == slot else 0.0 for slot in slots]


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def featurize(
    benchmark: str,
    machine: str = "baseline",
    variant: str = "mdc/prefclus",
    model: Optional[str] = None,
) -> Tuple[float, ...]:
    """The feature vector of one sweep cell, in :data:`FEATURE_NAMES` order.

    ``benchmark`` must be a self-describing ``scn-…`` scenario name (the
    catalog benchmarks carry no decodable knobs, so only generated
    scenarios featurize).  ``machine`` accepts a ``-mm<model>`` suffix;
    an explicit ``model`` argument wins over the suffix.
    """
    if not is_scenario_name(benchmark):
        raise WorkloadError(
            f"only scn-… scenario names featurize, got {benchmark!r}"
        )
    base_machine, suffix_model = split_model_suffix(machine)
    effective_model = model or suffix_model or "snooping"
    coherence, _, heuristic = variant.partition("/")
    vector: List[float] = [1.0]
    vector += _scenario_features(benchmark)
    vector += _machine_features(base_machine)
    vector += _one_hot(coherence, _COHERENCE_SLOTS, "coherence mode")
    vector += _one_hot(heuristic, _HEURISTIC_SLOTS, "heuristic")
    vector += _one_hot(effective_model, _model_slots(), "memory model")
    assert len(vector) == len(FEATURE_NAMES)
    return tuple(vector)


def featurize_spec(spec) -> Tuple[float, ...]:
    """Featurize a :class:`~repro.api.spec.RunSpec` (or record-like object
    with ``benchmark``/``machine``/``variant``/``model`` attributes)."""
    return featurize(
        benchmark=spec.benchmark,
        machine=spec.machine,
        variant=spec.variant,
        model=getattr(spec, "model", "snooping"),
    )


def cell_key(benchmark: str, machine: str, variant: str,
             model: str = "snooping") -> str:
    """Stable identity of one sweep cell (dedup key for training rows)."""
    return f"{benchmark}|{machine}|{variant}|{model}"


def describe_features(vector: Tuple[float, ...]) -> Dict[str, float]:
    """Name → value view of a feature vector (debugging/reporting)."""
    return dict(zip(FEATURE_NAMES, vector))
