"""Frontier selection: which cells are worth real simulation.

Given a trained surrogate and the full candidate cross, score every
cell's predicted *interest* — anomaly-prone behaviour lives at the
extremes, so interest is a rank-sum over the predicted targets:

* high bus traffic per iteration (coherence pressure),
* low IPC (stall-bound schedules),
* high II (recurrence/alias-limited loops).

Ranks, not raw values, so no target dominates by unit choice.  The same
:func:`interest_scores` runs on *measured* targets too — that is how the
benchmark defines the ground-truth top decile the guided sweep must
cover.

The guided sweep simulates the top-``budget`` cells by predicted
interest, minus a seeded random exploration slice drawn from the
*skipped* remainder — exploration is what keeps the active-learning
loop from tunnel-visioning on the frontier the current model already
believes in.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.errors import WorkloadError
from repro.obs import inc, set_gauge
from repro.scenarios.rng import ScenarioRng, stable_hash64
from repro.surrogate.features import featurize_spec
from repro.surrogate.model import SurrogateModel, _ranks


def interest_scores(targets: Sequence[Dict[str, float]]) -> List[float]:
    """Interest of each cell given its (predicted or measured) targets.

    Rank-sum in [0, 3]: each component contributes its normalized rank,
    with IPC inverted (low IPC is interesting).
    """
    n = len(targets)
    if n == 0:
        return []
    if n == 1:
        return [1.5]
    traffic_ranks = _ranks([t.get("traffic", 0.0) for t in targets])
    ipc_ranks = _ranks([t.get("ipc", 0.0) for t in targets])
    ii_ranks = _ranks([t.get("ii", 0.0) for t in targets])
    span = float(n - 1)
    return [
        (traffic_ranks[i] - 1.0) / span
        + (n - ipc_ranks[i]) / span
        + (ii_ranks[i] - 1.0) / span
        for i in range(n)
    ]


def top_fraction_keys(
    keys: Sequence[str],
    targets: Sequence[Dict[str, float]],
    fraction: float,
) -> List[str]:
    """The most interesting ``fraction`` of cells (≥1), by rank-sum
    interest with a stable key tie-break.  On measured targets this is
    the ground-truth frontier a guided sweep is judged against."""
    if not keys:
        return []
    scores = interest_scores(targets)
    order = sorted(
        range(len(keys)), key=lambda i: (-scores[i], keys[i])
    )
    take = max(1, int(round(fraction * len(keys))))
    return [keys[i] for i in order[:take]]


@dataclass
class FrontierSelection:
    """The guided sweep's partition of candidate specs."""

    chosen: List  # specs to simulate (frontier + exploration)
    skipped: List  # specs the budget pruned
    scores: Dict[str, float] = field(default_factory=dict)  # spec key → score
    frontier_count: int = 0
    explore_count: int = 0

    @property
    def budget(self) -> int:
        return len(self.chosen)


def select_frontier(
    specs: Sequence,
    model: SurrogateModel,
    budget: int,
    *,
    explore_frac: float = 0.1,
    seed: int = 0,
) -> FrontierSelection:
    """Choose which of ``specs`` to actually simulate.

    The top ``budget·(1-explore_frac)`` cells by predicted interest form
    the frontier; the remaining budget is filled with a seeded uniform
    draw from the skipped remainder.  Deterministic for a given
    (specs, model, budget, explore_frac, seed).
    """
    if budget <= 0:
        raise WorkloadError(f"surrogate budget must be positive, got {budget}")
    if not 0.0 <= explore_frac <= 1.0:
        raise WorkloadError(
            f"explore fraction must be in [0, 1], got {explore_frac}"
        )
    specs = list(specs)
    if budget >= len(specs):
        return FrontierSelection(
            chosen=specs, skipped=[], frontier_count=len(specs)
        )
    model.check_schema()
    predictions = [model.predict(featurize_spec(spec)) for spec in specs]
    scores = interest_scores(predictions)
    order = sorted(
        range(len(specs)),
        key=lambda i: (-scores[i], specs[i].content_hash),
    )
    explore_count = min(int(round(budget * explore_frac)), budget)
    frontier_count = budget - explore_count
    frontier_idx = order[:frontier_count]
    remainder = order[frontier_count:]

    rng = ScenarioRng(
        stable_hash64(f"surrogate-explore:{seed}:{len(specs)}:{budget}")
    )
    explore_idx: List[int] = []
    pool = list(remainder)
    for _ in range(min(explore_count, len(pool))):
        pick = rng.randint(0, len(pool) - 1)
        explore_idx.append(pool.pop(pick))

    chosen_set = set(frontier_idx) | set(explore_idx)
    chosen = [specs[i] for i in range(len(specs)) if i in chosen_set]
    skipped = [specs[i] for i in range(len(specs)) if i not in chosen_set]

    inc("surrogate.guide.selections")
    inc("surrogate.guide.chosen", len(chosen))
    inc("surrogate.guide.skipped", len(skipped))
    set_gauge("surrogate.guide.budget", float(budget))
    set_gauge(
        "surrogate.guide.skip_ratio",
        len(skipped) / len(specs) if specs else 0.0,
    )
    return FrontierSelection(
        chosen=chosen,
        skipped=skipped,
        scores={spec.content_hash: scores[i]
                for i, spec in enumerate(specs)},
        frontier_count=len(frontier_idx),
        explore_count=len(explore_idx),
    )
