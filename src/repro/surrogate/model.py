"""The learned cost model: pure-python boosted stumps / ridge per target.

One :class:`SurrogateModel` predicts the three quantities the sweep
frontier cares about — ``ipc`` (issued ops per cycle), ``ii`` (mean
initiation interval) and ``traffic`` (bus transfers per kernel
iteration) — from the :mod:`repro.surrogate.features` vector of a cell.
Everything is standard-library python.  The default predictor family is
gradient-boosted depth-1 regression stumps fit on raw features; the
``ridge`` family standardizes features (zero-mean/unit-variance over
the training set) and solves the normal equations
``(XᵀX + λI)·w = Xᵀy`` by Gaussian elimination with partial pivoting —
a ~45×45 dense solve, microseconds of work.

The model carries its **training rows** (feature vector + targets +
cell key) in the artifact, which is what makes the active-learning loop
exact: :meth:`SurrogateModel.refit_with` appends freshly *measured*
rows (deduplicated by cell key, new measurements win) and re-solves,
so a guided sweep continuously sharpens the model with ground truth it
just paid for.

Serialization is canonical JSON (sorted keys, no whitespace drift):
``loads(dumps(model))`` round-trips byte-identically, which the store
layer relies on for content-hashed artifact names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError, WorkloadError
from repro.hashing import digest
from repro.surrogate.features import FEATURE_NAMES, feature_schema_hash

#: The quantities a surrogate predicts, in canonical order.
TARGETS: Tuple[str, ...] = ("ipc", "ii", "traffic")

#: Default L2 regularization strength (``model_type="ridge"``).
DEFAULT_RIDGE_LAMBDA = 1.0

#: Default boosting hyperparameters (``model_type="gbs"``).
DEFAULT_BOOST_ROUNDS = 200
DEFAULT_LEARN_RATE = 0.15

#: Supported predictor families.  ``gbs`` (gradient-boosted stumps) is
#: the default: the sweep targets respond nonlinearly to the generator
#: knobs (II saturates with recurrence, traffic explodes with alias
#: density under mincoms), which a linear model provably cannot rank —
#: ridge stays available as the cheap, fully-interpretable baseline.
MODEL_TYPES: Tuple[str, ...] = ("gbs", "ridge")

#: Model artifact format version.
MODEL_SCHEMA = 1


@dataclass(frozen=True)
class TrainRow:
    """One training example: a cell, its features, its measured targets."""

    key: str
    features: Tuple[float, ...]
    targets: Dict[str, float]

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "features": list(self.features),
            "targets": {t: self.targets[t] for t in sorted(self.targets)},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TrainRow":
        return cls(
            key=str(data["key"]),
            features=tuple(float(v) for v in data["features"]),
            targets={str(k): float(v)
                     for k, v in dict(data["targets"]).items()},
        )


# ----------------------------------------------------------------------
# Dense linear algebra (pure python, no deps)
# ----------------------------------------------------------------------
def _solve(matrix: List[List[float]], rhs: List[float]) -> List[float]:
    """Solve ``matrix · x = rhs`` by Gaussian elimination with partial
    pivoting.  ``matrix`` is mutated; ridge regularization guarantees the
    system is well-conditioned for any λ > 0."""
    n = len(matrix)
    aug = [row[:] + [rhs[i]] for i, row in enumerate(matrix)]
    for col in range(n):
        pivot = max(range(col, n), key=lambda r: abs(aug[r][col]))
        if abs(aug[pivot][col]) < 1e-12:
            raise WorkloadError(
                "singular system while fitting the surrogate (is the "
                "ridge lambda zero on degenerate data?)"
            )
        aug[col], aug[pivot] = aug[pivot], aug[col]
        inv = 1.0 / aug[col][col]
        for r in range(col + 1, n):
            factor = aug[r][col] * inv
            if factor == 0.0:
                continue
            for c in range(col, n + 1):
                aug[r][c] -= factor * aug[col][c]
    out = [0.0] * n
    for row in range(n - 1, -1, -1):
        acc = aug[row][n]
        for c in range(row + 1, n):
            acc -= aug[row][c] * out[c]
        out[row] = acc / aug[row][row]
    return out


def fit_ridge(
    x_rows: Sequence[Sequence[float]],
    y: Sequence[float],
    ridge_lambda: float,
) -> List[float]:
    """Ridge-regression weights for one target over standardized rows.

    The first column (the bias slot) is excluded from regularization so
    the intercept is never shrunk toward zero.
    """
    n_features = len(x_rows[0])
    xtx = [[0.0] * n_features for _ in range(n_features)]
    xty = [0.0] * n_features
    for row, target in zip(x_rows, y):
        for i in range(n_features):
            ri = row[i]
            if ri == 0.0:
                continue
            xty[i] += ri * target
            xtx_i = xtx[i]
            for j in range(n_features):
                xtx_i[j] += ri * row[j]
    for i in range(1, n_features):  # slot 0 is the unregularized bias
        xtx[i][i] += ridge_lambda
    xtx[0][0] += 1e-9  # keep the bias row non-singular on empty data
    return _solve(xtx, xty)


def fit_boosted_stumps(
    x_rows: Sequence[Sequence[float]],
    y: Sequence[float],
    rounds: int = DEFAULT_BOOST_ROUNDS,
    learn_rate: float = DEFAULT_LEARN_RATE,
) -> Dict[str, object]:
    """Gradient-boosted depth-1 regression trees on *raw* features.

    Each round greedily picks the (feature, threshold) split of the
    current residuals with the largest SSE reduction and adds the
    shrunken leaf means to the ensemble.  Fully deterministic: features
    are scanned in index order, thresholds are midpoints of consecutive
    distinct sorted values, and ties keep the first-found split.
    Returns ``{"base": float, "stumps": [[feature, threshold, left,
    right], ...]}`` with the learning rate pre-multiplied into the
    leaves.
    """
    n = len(y)
    n_features = len(x_rows[0])
    base = sum(y) / n
    preds = [base] * n
    # Per-feature sort orders are reused every round.
    orders = [
        sorted(range(n), key=lambda i: x_rows[i][f])
        for f in range(n_features)
    ]
    stumps: List[List[float]] = []
    for _ in range(rounds):
        resid = [y[i] - preds[i] for i in range(n)]
        total = sum(resid)
        best_gain = 1e-12
        best = None
        for f in range(n_features):
            order = orders[f]
            prefix = 0.0
            for pos in range(n - 1):
                i = order[pos]
                prefix += resid[i]
                left_v = x_rows[i][f]
                right_v = x_rows[order[pos + 1]][f]
                if left_v == right_v:
                    continue
                cnt = pos + 1
                # SSE reduction of (left mean, right mean) vs zero.
                gain = (prefix * prefix / cnt
                        + (total - prefix) ** 2 / (n - cnt))
                if gain > best_gain:
                    best_gain = gain
                    best = (f, (left_v + right_v) / 2.0,
                            prefix / cnt, (total - prefix) / (n - cnt))
        if best is None:
            break  # residuals are flat (or all features constant)
        f, threshold, left, right = best
        left *= learn_rate
        right *= learn_rate
        stumps.append([float(f), threshold, left, right])
        for i in range(n):
            preds[i] += left if x_rows[i][f] <= threshold else right
    return {"base": base, "stumps": stumps}


def predict_boosted(booster: Dict[str, object],
                    vector: Sequence[float]) -> float:
    value = float(booster["base"])
    for feature, threshold, left, right in booster["stumps"]:
        value += left if vector[int(feature)] <= threshold else right
    return value


# ----------------------------------------------------------------------
# Error metrics
# ----------------------------------------------------------------------
def mean_absolute_error(predicted: Sequence[float],
                        actual: Sequence[float]) -> float:
    if not actual:
        return 0.0
    return sum(abs(p - a) for p, a in zip(predicted, actual)) / len(actual)


def _ranks(values: Sequence[float]) -> List[float]:
    """Average ranks (1-based, ties share the mean rank)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    pos = 0
    while pos < len(order):
        end = pos
        while (end + 1 < len(order)
               and values[order[end + 1]] == values[order[pos]]):
            end += 1
        mean_rank = (pos + end) / 2.0 + 1.0
        for k in range(pos, end + 1):
            ranks[order[k]] = mean_rank
        pos = end + 1
    return ranks


def rank_correlation(predicted: Sequence[float],
                     actual: Sequence[float]) -> float:
    """Spearman rank correlation (ties averaged); 0.0 on degenerate input.

    This is the metric that matters for frontier guidance: the guided
    sweep only needs the surrogate to *order* cells correctly, not to
    predict absolute values.
    """
    if len(predicted) < 2:
        return 0.0
    pr = _ranks(predicted)
    ar = _ranks(actual)
    n = len(pr)
    mean = (n + 1) / 2.0
    cov = sum((p - mean) * (a - mean) for p, a in zip(pr, ar))
    var_p = sum((p - mean) ** 2 for p in pr)
    var_a = sum((a - mean) ** 2 for a in ar)
    if var_p <= 0.0 or var_a <= 0.0:
        return 0.0
    return cov / (var_p * var_a) ** 0.5


# ----------------------------------------------------------------------
# The model
# ----------------------------------------------------------------------
@dataclass
class SurrogateModel:
    """A trained (features → ipc/ii/traffic) predictor with provenance.

    ``metrics`` holds the held-out evaluation computed at train time
    (``{"ipc": {"mae": …, "rank_corr": …, "holdout": n}, …}``); the
    training rows ride along for exact active-learning refits.
    """

    version: str
    schema_hash: str
    feature_names: Tuple[str, ...]
    means: Tuple[float, ...]
    scales: Tuple[float, ...]
    weights: Dict[str, Tuple[float, ...]]
    ridge_lambda: float
    train_size: int
    metrics: Dict[str, Dict[str, float]]
    rows: List[TrainRow] = field(default_factory=list)
    #: ``"gbs"`` (boosted stumps, the default) or ``"ridge"``.
    model_type: str = "ridge"
    #: Per-target boosted-stump ensembles (``model_type="gbs"``).
    boosters: Dict[str, Dict[str, object]] = field(default_factory=dict)
    boost_rounds: int = DEFAULT_BOOST_ROUNDS
    learn_rate: float = DEFAULT_LEARN_RATE

    # ------------------------------------------------------------------
    @property
    def model_id(self) -> str:
        """Content hash of the full artifact payload — the artifact's
        file name, so identical trainings collide into one file."""
        return digest(self.to_dict())

    def standardize(self, vector: Sequence[float]) -> List[float]:
        return [
            (v - m) / s if s else (v - m)
            for v, m, s in zip(vector, self.means, self.scales)
        ]

    def predict(self, vector: Sequence[float]) -> Dict[str, float]:
        """Predicted ``{target: value}`` for one feature vector."""
        if len(vector) != len(self.feature_names):
            raise WorkloadError(
                f"feature vector has {len(vector)} slots, model expects "
                f"{len(self.feature_names)}"
            )
        if self.model_type == "gbs":
            # Stumps split on raw values; no standardization needed.
            return {
                target: predict_boosted(booster, vector)
                for target, booster in self.boosters.items()
            }
        std = self.standardize(vector)
        return {
            target: sum(w * x for w, x in zip(weights, std))
            for target, weights in self.weights.items()
        }

    def predict_many(
        self, vectors: Sequence[Sequence[float]]
    ) -> List[Dict[str, float]]:
        return [self.predict(vector) for vector in vectors]

    def check_schema(self) -> None:
        """Refuse to score vectors produced by a different feature schema."""
        current = feature_schema_hash()
        if self.schema_hash != current:
            raise ConfigError(
                f"surrogate model was trained with feature schema "
                f"{self.schema_hash}, this build produces {current}; "
                f"retrain with 'repro surrogate train'"
            )

    def refit_with(self, new_rows: Sequence[TrainRow],
                   **train_kwargs) -> "SurrogateModel":
        """The active-learning step: merge freshly measured rows into the
        training set (new measurements replace stale rows for the same
        cell) and retrain from scratch.  Returns the new model; ``self``
        is untouched."""
        from repro.surrogate.train import train_from_rows

        merged: Dict[str, TrainRow] = {row.key: row for row in self.rows}
        for row in new_rows:
            merged[row.key] = row
        train_kwargs.setdefault("model_type", self.model_type)
        train_kwargs.setdefault("ridge_lambda", self.ridge_lambda)
        train_kwargs.setdefault("boost_rounds", self.boost_rounds)
        train_kwargs.setdefault("learn_rate", self.learn_rate)
        return train_from_rows(
            sorted(merged.values(), key=lambda row: row.key), **train_kwargs
        )

    # ------------------------------------------------------------------
    # Serialization (canonical: load → dump is byte-identical)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "schema": MODEL_SCHEMA,
            "version": self.version,
            "schema_hash": self.schema_hash,
            "model_type": self.model_type,
            "feature_names": list(self.feature_names),
            "means": list(self.means),
            "scales": list(self.scales),
            "weights": {
                target: list(self.weights[target])
                for target in sorted(self.weights)
            },
            "boosters": {
                target: {
                    "base": self.boosters[target]["base"],
                    "stumps": [list(s)
                               for s in self.boosters[target]["stumps"]],
                }
                for target in sorted(self.boosters)
            },
            "ridge_lambda": self.ridge_lambda,
            "boost_rounds": self.boost_rounds,
            "learn_rate": self.learn_rate,
            "train_size": self.train_size,
            "metrics": {
                target: {k: self.metrics[target][k]
                         for k in sorted(self.metrics[target])}
                for target in sorted(self.metrics)
            },
            "rows": [row.to_dict() for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SurrogateModel":
        if int(data.get("schema", 0)) != MODEL_SCHEMA:
            raise ConfigError(
                f"unsupported surrogate model schema "
                f"{data.get('schema')!r}; this build reads {MODEL_SCHEMA}"
            )
        return cls(
            version=str(data["version"]),
            schema_hash=str(data["schema_hash"]),
            feature_names=tuple(str(n) for n in data["feature_names"]),
            means=tuple(float(v) for v in data["means"]),
            scales=tuple(float(v) for v in data["scales"]),
            weights={
                str(t): tuple(float(w) for w in ws)
                for t, ws in dict(data["weights"]).items()
            },
            ridge_lambda=float(data["ridge_lambda"]),
            train_size=int(data["train_size"]),
            metrics={
                str(t): {str(k): float(v) for k, v in dict(m).items()}
                for t, m in dict(data["metrics"]).items()
            },
            rows=[TrainRow.from_dict(d) for d in data.get("rows", [])],
            model_type=str(data.get("model_type", "ridge")),
            boosters={
                str(t): {
                    "base": float(b["base"]),
                    "stumps": [
                        [float(v) for v in stump] for stump in b["stumps"]
                    ],
                }
                for t, b in dict(data.get("boosters", {})).items()
            },
            boost_rounds=int(data.get("boost_rounds",
                                      DEFAULT_BOOST_ROUNDS)),
            learn_rate=float(data.get("learn_rate", DEFAULT_LEARN_RATE)),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "SurrogateModel":
        return cls.from_dict(json.loads(text))

    # ------------------------------------------------------------------
    def summary(self) -> str:
        hyper = (
            f"ridge lambda {self.ridge_lambda:g}"
            if self.model_type == "ridge"
            else f"{self.boost_rounds} rounds @ lr {self.learn_rate:g}"
        )
        lines = [
            f"surrogate model {self.model_id}",
            f"  package version : {self.version}",
            f"  model type      : {self.model_type}",
            f"  feature schema  : {self.schema_hash} "
            f"({len(self.feature_names)} features)",
            f"  training rows   : {self.train_size} ({hyper})",
        ]
        for target in sorted(self.metrics):
            m = self.metrics[target]
            lines.append(
                f"  {target:8s}: held-out MAE {m.get('mae', 0.0):.4f}, "
                f"rank corr {m.get('rank_corr', 0.0):+.3f} "
                f"({int(m.get('holdout', 0))} held-out rows)"
            )
        return "\n".join(lines)


#: Short per-model listing line used by ``repro list``.
def describe_model(model: SurrogateModel) -> str:
    worst_corr = min(
        (m.get("rank_corr", 0.0) for m in model.metrics.values()),
        default=0.0,
    )
    return (
        f"{model.model_id}  v{model.version}  {model.model_type}  "
        f"schema {model.schema_hash}  rows {model.train_size}  "
        f"worst rank-corr {worst_corr:+.3f}"
    )
