"""Training: turn stored :class:`RunRecord`s into a :class:`SurrogateModel`.

The training set is whatever ground truth already exists — records in a
:class:`~repro.api.store.ResultStore`, or an in-memory list from a sweep
that just ran.  Only self-describing ``scn-…`` scenario records featurize
(catalog benchmarks carry no decodable knobs), so everything else is
silently skipped and reported in the train stats.

The held-out split is deterministic: a cell is held out when
``stable_hash64(cell_key) % 1000 < holdout_frac * 1000``, so the same
data always yields the same split (and the same model artifact,
byte-for-byte).  Held-out MAE and Spearman rank correlation per target
are computed at train time, stored in the artifact, and published
through :mod:`repro.obs` as ``surrogate.*`` gauges.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro import __version__
from repro.errors import WorkloadError
from repro.obs import inc, set_gauge
from repro.scenarios.generator import is_scenario_name
from repro.scenarios.rng import stable_hash64
from repro.surrogate.features import (
    FEATURE_NAMES,
    cell_key,
    feature_schema_hash,
    featurize,
)
from repro.surrogate.model import (
    DEFAULT_BOOST_ROUNDS,
    DEFAULT_LEARN_RATE,
    DEFAULT_RIDGE_LAMBDA,
    MODEL_TYPES,
    TARGETS,
    SurrogateModel,
    TrainRow,
    fit_boosted_stumps,
    fit_ridge,
    mean_absolute_error,
    predict_boosted,
    rank_correlation,
)

#: Fraction of cells held out for error reporting by default.
DEFAULT_HOLDOUT_FRAC = 0.2


def record_targets(record) -> Dict[str, float]:
    """The measured target values of one :class:`RunRecord`.

    * ``ipc``     — issued operations per total cycle;
    * ``ii``      — mean initiation interval across the record's loops;
    * ``traffic`` — bus transfers per kernel iteration.
    """
    stats = record.merged_stats()
    cycles = stats.total_cycles
    iterations = sum(loop.kernel_iterations for loop in record.loops)
    loops = len(record.loops)
    return {
        "ipc": stats.issued_ops / cycles if cycles else 0.0,
        "ii": (sum(loop.ii for loop in record.loops) / loops
               if loops else 0.0),
        "traffic": stats.bus_transfers / iterations if iterations else 0.0,
    }


def record_to_row(record) -> Optional[TrainRow]:
    """A :class:`TrainRow` for one record, or ``None`` when the record
    cannot be featurized (non-scenario benchmark)."""
    if not is_scenario_name(record.benchmark):
        return None
    features = featurize(
        benchmark=record.benchmark,
        machine=record.machine,
        variant=record.variant,
        model=record.model,
    )
    key = cell_key(record.benchmark, record.machine, record.variant,
                   record.model)
    return TrainRow(key=key, features=features,
                    targets=record_targets(record))


def rows_from_records(records: Iterable) -> List[TrainRow]:
    """Featurizable training rows from records, deduplicated by cell key
    (last record wins) and sorted for determinism."""
    by_key: Dict[str, TrainRow] = {}
    skipped = 0
    for record in records:
        row = record_to_row(record)
        if row is None:
            skipped += 1
            continue
        by_key[row.key] = row
    if skipped:
        inc("surrogate.train.records_skipped", skipped)
    return sorted(by_key.values(), key=lambda row: row.key)


def rows_from_store(store) -> List[TrainRow]:
    """Training rows from every record in a :class:`ResultStore`."""
    return rows_from_records(
        store.get(key) for key in sorted(store.keys())
    )


def _is_holdout(key: str, holdout_frac: float) -> bool:
    return stable_hash64("surrogate-holdout:" + key) % 1000 < int(
        round(holdout_frac * 1000)
    )


def train_from_rows(
    rows: Sequence[TrainRow],
    *,
    model_type: str = "gbs",
    ridge_lambda: float = DEFAULT_RIDGE_LAMBDA,
    boost_rounds: int = DEFAULT_BOOST_ROUNDS,
    learn_rate: float = DEFAULT_LEARN_RATE,
    holdout_frac: float = DEFAULT_HOLDOUT_FRAC,
) -> SurrogateModel:
    """Fit a :class:`SurrogateModel` on training rows.

    ``model_type`` picks the predictor family: ``"gbs"`` (boosted
    stumps, the default) or ``"ridge"``.  The final fit uses **all**
    rows; the held-out metrics come from an intermediate fit on the
    non-held-out subset, so the reported error is honest while the
    shipped model wastes no data.
    """
    if model_type not in MODEL_TYPES:
        raise WorkloadError(
            f"unknown surrogate model type {model_type!r}; "
            f"expected one of {MODEL_TYPES}"
        )
    if len(rows) < 8:
        raise WorkloadError(
            f"surrogate training needs at least 8 featurizable cells, "
            f"got {len(rows)} (run a sweep first)"
        )
    n_features = len(FEATURE_NAMES)
    vectors = [row.features for row in rows]

    # Standardization statistics over the full training set.
    means = [0.0] * n_features
    for vector in vectors:
        for i, value in enumerate(vector):
            means[i] += value
    means = [m / len(vectors) for m in means]
    variances = [0.0] * n_features
    for vector in vectors:
        for i, value in enumerate(vector):
            variances[i] += (value - means[i]) ** 2
    scales = [(v / len(vectors)) ** 0.5 for v in variances]
    # The bias slot stays as-is (mean 0, scale 1) so weight 0 is the
    # plain intercept.
    means[0] = 0.0
    scales[0] = 1.0

    def standardize(vector: Tuple[float, ...]) -> List[float]:
        return [
            (v - m) / s if s else (v - m)
            for v, m, s in zip(vector, means, scales)
        ]

    std_rows = [standardize(vector) for vector in vectors]

    # Deterministic held-out split for the error report.
    holdout_idx = [i for i, row in enumerate(rows)
                   if _is_holdout(row.key, holdout_frac)]
    train_idx = [i for i in range(len(rows)) if i not in set(holdout_idx)]
    if not train_idx:  # degenerate holdout fraction: report on everything
        train_idx, holdout_idx = list(range(len(rows))), []

    metrics: Dict[str, Dict[str, float]] = {}
    weights: Dict[str, Tuple[float, ...]] = {}
    boosters: Dict[str, Dict[str, object]] = {}
    for target in TARGETS:
        y_all = [rows[i].targets.get(target, 0.0) for i in range(len(rows))]
        if holdout_idx:
            if model_type == "gbs":
                eval_booster = fit_boosted_stumps(
                    [vectors[i] for i in train_idx],
                    [y_all[i] for i in train_idx],
                    rounds=boost_rounds, learn_rate=learn_rate,
                )
                predicted = [
                    predict_boosted(eval_booster, vectors[i])
                    for i in holdout_idx
                ]
            else:
                eval_weights = fit_ridge(
                    [std_rows[i] for i in train_idx],
                    [y_all[i] for i in train_idx],
                    ridge_lambda,
                )
                predicted = [
                    sum(w * x for w, x in zip(eval_weights, std_rows[i]))
                    for i in holdout_idx
                ]
            actual = [y_all[i] for i in holdout_idx]
        else:
            predicted, actual = [], []
        metrics[target] = {
            "mae": mean_absolute_error(predicted, actual),
            "rank_corr": rank_correlation(predicted, actual),
            "holdout": float(len(holdout_idx)),
        }
        if model_type == "gbs":
            boosters[target] = fit_boosted_stumps(
                vectors, y_all,
                rounds=boost_rounds, learn_rate=learn_rate,
            )
        else:
            weights[target] = tuple(fit_ridge(std_rows, y_all,
                                              ridge_lambda))

    model = SurrogateModel(
        version=__version__,
        schema_hash=feature_schema_hash(),
        feature_names=FEATURE_NAMES,
        means=tuple(means),
        scales=tuple(scales),
        weights=weights,
        ridge_lambda=ridge_lambda,
        train_size=len(rows),
        metrics=metrics,
        rows=list(rows),
        model_type=model_type,
        boosters=boosters,
        boost_rounds=boost_rounds,
        learn_rate=learn_rate,
    )
    _publish(model)
    return model


def train_from_records(records: Iterable, **kwargs) -> SurrogateModel:
    return train_from_rows(rows_from_records(records), **kwargs)


def train_from_store(store, **kwargs) -> SurrogateModel:
    return train_from_rows(rows_from_store(store), **kwargs)


def _publish(model: SurrogateModel) -> None:
    """Publish train-time quality through the obs registry."""
    inc("surrogate.train.fits")
    set_gauge("surrogate.train.rows", float(model.train_size))
    for target, m in model.metrics.items():
        set_gauge("surrogate.holdout.mae", m["mae"], target=target)
        set_gauge("surrogate.holdout.rank_corr", m["rank_corr"],
                  target=target)
