"""On-disk surrogate model artifacts.

Models live as plain JSON files under ``<cache-root>/surrogate/`` —
``model-<content-hash>.json`` plus a one-line ``latest`` pointer file —
so the same ``repro cache info``/``clear`` tooling that manages run
records and pipeline artifacts can count and drop them, and a model can
be inspected with nothing but ``cat``.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Union

from repro.api.store import resolve_cache_root
from repro.errors import ConfigError
from repro.surrogate.model import SurrogateModel

#: Subdirectory of the cache root that holds model artifacts.
SURROGATE_DIR = "surrogate"

#: Pointer file naming the most recently saved model.
LATEST_POINTER = "latest"

_PREFIX = "model-"
_SUFFIX = ".json"


def surrogate_root(cache_root: Union[str, Path, None] = None) -> Path:
    """The surrogate artifact directory for a cache root (not created)."""
    return Path(resolve_cache_root(cache_root)) / SURROGATE_DIR


def model_path(model_id: str,
               cache_root: Union[str, Path, None] = None) -> Path:
    return surrogate_root(cache_root) / f"{_PREFIX}{model_id}{_SUFFIX}"


def save_model(model: SurrogateModel,
               cache_root: Union[str, Path, None] = None) -> Path:
    """Write a model artifact (content-hashed name) and repoint ``latest``.

    Saving the same model twice is idempotent — the content hash collides
    into the same file.
    """
    root = surrogate_root(cache_root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"{_PREFIX}{model.model_id}{_SUFFIX}"
    tmp = path.with_suffix(".tmp")
    tmp.write_text(model.to_json(indent=2) + "\n", encoding="utf-8")
    os.replace(tmp, path)
    pointer = root / LATEST_POINTER
    pointer_tmp = pointer.with_suffix(".tmp")
    pointer_tmp.write_text(model.model_id + "\n", encoding="utf-8")
    os.replace(pointer_tmp, pointer)
    return path


def list_model_ids(cache_root: Union[str, Path, None] = None) -> List[str]:
    """Model ids present on disk, sorted."""
    root = surrogate_root(cache_root)
    if not root.is_dir():
        return []
    return sorted(
        entry.name[len(_PREFIX):-len(_SUFFIX)]
        for entry in root.iterdir()
        if entry.name.startswith(_PREFIX) and entry.name.endswith(_SUFFIX)
    )


def latest_model_id(
    cache_root: Union[str, Path, None] = None,
) -> Optional[str]:
    pointer = surrogate_root(cache_root) / LATEST_POINTER
    if pointer.is_file():
        model_id = pointer.read_text(encoding="utf-8").strip()
        if model_id and model_path(model_id, cache_root).is_file():
            return model_id
    ids = list_model_ids(cache_root)
    return ids[-1] if ids else None


def load_model(name: str = "latest",
               cache_root: Union[str, Path, None] = None) -> SurrogateModel:
    """Load a model by id, artifact path, or the ``latest`` pointer."""
    if name == "latest":
        model_id = latest_model_id(cache_root)
        if model_id is None:
            raise ConfigError(
                "no surrogate model artifacts found; train one with "
                "'repro surrogate train'"
            )
        path = model_path(model_id, cache_root)
    elif os.sep in name or name.endswith(_SUFFIX):
        path = Path(name)
    else:
        path = model_path(name, cache_root)
    if not path.is_file():
        raise ConfigError(f"surrogate model not found: {path}")
    model = SurrogateModel.from_json(path.read_text(encoding="utf-8"))
    model.check_schema()
    return model


def load_models(
    cache_root: Union[str, Path, None] = None,
) -> List[SurrogateModel]:
    """Every loadable model on disk (schema-mismatched ones are skipped)."""
    out: List[SurrogateModel] = []
    for model_id in list_model_ids(cache_root):
        try:
            out.append(load_model(model_id, cache_root))
        except ConfigError:
            continue
    return out


def clear_models(cache_root: Union[str, Path, None] = None) -> int:
    """Delete every model artifact (and the pointer); returns the count."""
    root = surrogate_root(cache_root)
    if not root.is_dir():
        return 0
    removed = 0
    for entry in list(root.iterdir()):
        if entry.name.startswith(_PREFIX) and entry.name.endswith(_SUFFIX):
            entry.unlink()
            removed += 1
        elif entry.name == LATEST_POINTER:
            entry.unlink()
    try:
        root.rmdir()
    except OSError:
        pass
    return removed
