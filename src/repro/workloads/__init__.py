"""Mediabench-like synthetic workloads.

The paper evaluates on 14 Mediabench programs compiled with IMPACT; this
reproduction substitutes a calibrated catalog of synthetic loop kernels
(see DESIGN.md for the substitution rationale).  Each benchmark model
specifies its interleave factor and a weighted set of loops; each loop is a
DDG template plus deterministic profile/execution address traces.
"""

from repro.workloads.traces import (
    AddressTrace,
    TraceSpec,
    cached_trace_spec,
    trace_factory,
)
from repro.workloads.kernels import (
    chain_kernel,
    copy_kernel,
    inplace_stencil_kernel,
    reduction_kernel,
    streaming_kernel,
    table_update_kernel,
)
from repro.workloads.catalog import (
    BENCHMARKS,
    Benchmark,
    LoopSpec,
    benchmark_names,
    get_benchmark,
)
from repro.workloads.specialization import specialize_ambiguous

__all__ = [
    "AddressTrace",
    "TraceSpec",
    "cached_trace_spec",
    "trace_factory",
    "chain_kernel",
    "copy_kernel",
    "inplace_stencil_kernel",
    "reduction_kernel",
    "streaming_kernel",
    "table_update_kernel",
    "BENCHMARKS",
    "Benchmark",
    "LoopSpec",
    "benchmark_names",
    "get_benchmark",
    "specialize_ambiguous",
]
