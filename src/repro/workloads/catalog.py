"""The benchmark catalog: 14 Mediabench-like models (paper Table 1).

Each benchmark is a weighted set of loops built from the kernel templates,
with the paper's per-benchmark calibration targets baked in:

* the interleaving factor and dominant data size follow Table 1;
* for benchmarks with memory dependent chains, the chain loop's filler
  compute and the auxiliary loop's trip count are *solved* from the
  published CMR/CAR of Table 3, so the chain ratios match by construction;
* the chain structure (ladder partition) follows the section 5.4/6
  anecdotes: epicdec's 76-instruction chain, and the OLD -> NEW chain
  reductions of Table 5.

Calibration algebra: let the chain loop have ``c`` chain instructions,
``m`` memory and ``n`` total instructions per iteration, and the auxiliary
loop ``m2``/``n2``; with trip counts ``I1``/``I2``::

    CMR = c*I1 / (m*I1 + m2*I2)     =>  I2 = I1 * (c/CMR - m) / m2
    CAR = c*I1 / (n*I1 + n2*I2)     =>  n  = c/CAR - (n2/m2) * (c/CMR - m)

The second equation fixes the chain loop's filler compute count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.chains import ChainStats, chain_stats
from repro.arch.config import MachineConfig
from repro.errors import WorkloadError
from repro.ir.ddg import Ddg
from repro.workloads.kernels import (
    chain_kernel,
    inplace_stencil_kernel,
    reduction_kernel,
    streaming_kernel,
    table_lookup_kernel,
)


@dataclass(frozen=True)
class LoopSpec:
    """One loop of a benchmark: a DDG template plus its trip count."""

    name: str
    ddg: Ddg
    iterations: int
    unroll: Optional[int] = None  # None = the locality heuristic decides

    def scaled_iterations(self, scale: float) -> int:
        return max(32, int(round(self.iterations * scale)))


@dataclass(frozen=True)
class Benchmark:
    """A Mediabench-like benchmark model (one Table 1 row)."""

    name: str
    interleave_bytes: int
    main_width: int
    main_width_share: float
    profile_input: str
    execute_input: str
    loops: Tuple[LoopSpec, ...]
    profile_seed: int
    execute_seed: int
    target_cmr: Optional[float] = None
    target_car: Optional[float] = None
    evaluated: bool = True

    def machine(self, base: MachineConfig) -> MachineConfig:
        """The machine config this benchmark runs on (its interleave)."""
        return base.with_interleave(self.interleave_bytes)

    def chain_table(self) -> List[Tuple[ChainStats, int]]:
        """(per-loop chain stats, trip count) pairs for CMR/CAR."""
        return [
            (chain_stats(spec.ddg), spec.iterations) for spec in self.loops
        ]


# ----------------------------------------------------------------------
# Calibration helper
# ----------------------------------------------------------------------
def _calibrate_chain_loop(
    name: str,
    chain_builder: Callable[[int], Ddg],
    aux: Ddg,
    cmr: float,
    car: float,
    base_iterations: int,
) -> Tuple[Ddg, int, int]:
    """Solve filler count and auxiliary trip count for the Table 3 targets.

    Returns ``(chain ddg, chain iterations, aux iterations)``.
    """
    probe = chain_stats(chain_builder(0))
    c, m, n0 = probe.biggest_chain, probe.memory_ops, probe.total_ops
    if c == 0:
        raise WorkloadError(f"{name}: chain loop has no chain to calibrate")
    aux_stats = chain_stats(aux)
    if aux_stats.biggest_chain:
        raise WorkloadError(f"{name}: auxiliary loop must be chain-free")
    m2, n2 = aux_stats.memory_ops, aux_stats.total_ops

    spare_mem = c / cmr - m  # m2 * I2 / I1
    if spare_mem < 0:
        raise WorkloadError(f"{name}: CMR target above the chain loop's own ratio")
    aux_iters = max(1, round(base_iterations * spare_mem / m2))
    filler = round(c / car - (n2 / m2) * spare_mem - n0)
    if filler < 0:
        raise WorkloadError(
            f"{name}: CAR target unreachable (needs filler {filler}); "
            "lower the auxiliary loop's compute ratio"
        )
    return chain_builder(filler), base_iterations, aux_iters


# ----------------------------------------------------------------------
# Benchmark definitions
# ----------------------------------------------------------------------
def _chain_benchmark(
    name: str,
    *,
    idx: int,
    interleave: int,
    width: int,
    share: float,
    inputs: Tuple[str, str],
    cmr: float,
    car: float,
    ladders: Tuple[int, ...],
    aux: Ddg,
    base_iterations: int = 384,
    store_every: int = 4,
    rotating: Tuple[int, ...] = (),
    stencil_taps: Optional[int] = None,
) -> Benchmark:
    """A benchmark dominated by one chain loop plus one auxiliary loop."""
    lane = 4 * interleave  # clusters x interleave: the single-home stride

    if stencil_taps is not None:

        def build(filler: int) -> Ddg:
            return inplace_stencil_kernel(
                f"{name}.chain", taps=stencil_taps, width=width,
                filler_compute=filler,
            )

    else:

        def build(filler: int) -> Ddg:
            return chain_kernel(
                f"{name}.chain",
                ladders=ladders,
                width=width,
                lane_stride=lane,
                store_every=store_every,
                filler_compute=filler,
                rotating=rotating,
            )

    chain_ddg, chain_iters, aux_iters = _calibrate_chain_loop(
        name, build, aux, cmr, car, base_iterations
    )
    return Benchmark(
        name=name,
        interleave_bytes=interleave,
        main_width=width,
        main_width_share=share,
        profile_input=inputs[0],
        execute_input=inputs[1],
        loops=(
            LoopSpec(f"{name}.chain", chain_ddg, chain_iters),
            LoopSpec(f"{name}.aux", aux, aux_iters),
        ),
        profile_seed=11_000 + idx,
        execute_seed=23_000 + idx,
        target_cmr=cmr,
        target_car=car,
    )


def _build_catalog() -> Dict[str, Benchmark]:
    catalog: Dict[str, Benchmark] = {}

    def register(benchmark: Benchmark) -> None:
        catalog[benchmark.name] = benchmark

    # -- epic (image compression, 4-byte floats dominant) ----------------
    register(_chain_benchmark(
        "epicdec", idx=0, interleave=4, width=4, share=0.84,
        inputs=("test_image.pgm.E", "titanic3.pgm.E"),
        cmr=0.64, car=0.22,
        ladders=(24, 13, 13, 13, 13),  # the 76-instruction chain of §5.4
        rotating=(3, 4),
        aux=streaming_kernel("epicdec.aux", n_loads=2, n_stores=1, width=4,
                             taps=2, reuse_offset=32, compute_depth=2,
                             filler_compute=7, fp=True),
    ))
    register(Benchmark(
        name="epicenc", interleave_bytes=4, main_width=4,
        main_width_share=0.89,
        profile_input="test_image", execute_input="titanic3.pgm",
        loops=(
            LoopSpec("epicenc.chain",
                     chain_kernel("epicenc.chain", ladders=(8, 4), width=4,
                                  lane_stride=16, filler_compute=12), 384),
            LoopSpec("epicenc.aux",
                     streaming_kernel("epicenc.aux", n_loads=2, n_stores=1,
                                      width=4, taps=2, compute_depth=2,
                                      filler_compute=9, fp=True), 1200),
        ),
        profile_seed=11_001, execute_seed=23_001,
        evaluated=False,  # Table 1 only; the figures omit epicenc
    ))

    # -- g721 (ADPCM codec: table lookups + integer math; no chains) -----
    for idx, (name, inputs) in enumerate((
        ("g721dec", ("clinton.g721", "S_16_44.g721")),
        ("g721enc", ("clinton.pcm", "S_16_44.pcm")),
    ), start=2):
        register(Benchmark(
            name=name, interleave_bytes=2, main_width=2,
            main_width_share=0.89 if name.endswith("dec") else 0.917,
            profile_input=inputs[0], execute_input=inputs[1],
            loops=(
                LoopSpec(f"{name}.lut",
                         table_lookup_kernel(f"{name}.lut", n_lookups=3,
                                             width=2, table_bytes=1024,
                                             filler_compute=10), 1600),
                LoopSpec(f"{name}.stream",
                         streaming_kernel(f"{name}.stream", n_loads=2,
                                          n_stores=1, width=2, taps=2,
                                          reuse_offset=8, compute_depth=3,
                                          filler_compute=6), 1200),
            ),
            profile_seed=11_000 + idx, execute_seed=23_000 + idx,
            target_cmr=0.0, target_car=0.0,
        ))

    # -- gsm (speech codec: a small multi-home chain, heavy compute).
    # The 4-op chain spans several home clusters, reproducing the §4.2
    # anecdote: under MDC its loads turn remote and stall; DDGT frees them.
    register(_chain_benchmark(
        "gsmdec", idx=4, interleave=2, width=2, share=0.99,
        inputs=("clint.pcm.run.gsm", "S_16_44.pcm.gsm"),
        cmr=0.18, car=0.02, ladders=(2, 1, 1), rotating=(1, 2),
        aux=reduction_kernel("gsmdec.aux", n_loads=2, width=2,
                             filler_compute=12),
    ))
    register(_chain_benchmark(
        "gsmenc", idx=5, interleave=2, width=2, share=0.99,
        inputs=("clinton.pcm", "S_16_44.pcm"),
        cmr=0.08, car=0.01, ladders=(2, 1, 1), rotating=(1, 2),
        aux=reduction_kernel("gsmenc.aux", n_loads=2, width=2,
                             filler_compute=10),
    ))

    # -- jpeg ------------------------------------------------------------
    register(_chain_benchmark(
        "jpegdec", idx=6, interleave=4, width=1, share=0.53,
        inputs=("testimg.jpg", "monalisa.jpg"),
        cmr=0.46, car=0.09, ladders=(5, 3), rotating=(1,),
        aux=streaming_kernel("jpegdec.aux", n_loads=2, n_stores=2, width=4,
                             taps=2, reuse_offset=32, compute_depth=3,
                             filler_compute=6),
    ))
    register(_chain_benchmark(
        "jpegenc", idx=7, interleave=4, width=4, share=0.70,
        inputs=("testimg.ppm", "monalisa.ppm"),
        cmr=0.07, car=0.03, ladders=(4,),
        aux=streaming_kernel("jpegenc.aux", n_loads=2, n_stores=1, width=4,
                             taps=2, reuse_offset=32, compute_depth=2,
                             filler_compute=0),
    ))

    # -- mpeg2 (8-byte motion-compensation data over 4-byte interleave) --
    register(_chain_benchmark(
        "mpeg2dec", idx=8, interleave=4, width=8, share=0.49,
        inputs=("mei16v2.m2v", "tek6.m2v"),
        cmr=0.13, car=0.05, ladders=(4,),
        aux=streaming_kernel("mpeg2dec.aux", n_loads=2, n_stores=1, width=8,
                             taps=2, reuse_offset=32, compute_depth=3,
                             filler_compute=2),
    ))

    # -- pegwit (elliptic-curve crypto on 2-byte limbs) -------------------
    register(_chain_benchmark(
        "pegwitdec", idx=9, interleave=2, width=2, share=0.758,
        inputs=("pegwit.enc", "tech_rep.txt.enc"),
        cmr=0.27, car=0.07, ladders=(4, 2), rotating=(1,),
        aux=streaming_kernel("pegwitdec.aux", n_loads=2, n_stores=1, width=2,
                             taps=2, reuse_offset=16, compute_depth=3,
                             filler_compute=4),
    ))
    register(_chain_benchmark(
        "pegwitenc", idx=10, interleave=2, width=2, share=0.836,
        inputs=("pgptest.plain", "tech_rep.txt"),
        cmr=0.35, car=0.09, ladders=(5, 3), rotating=(1,),
        aux=streaming_kernel("pegwitenc.aux", n_loads=2, n_stores=1, width=2,
                             taps=2, reuse_offset=16, compute_depth=3,
                             filler_compute=4),
    ))

    # -- pgp (big-number crypto: long in-place chains) --------------------
    register(_chain_benchmark(
        "pgpdec", idx=11, interleave=4, width=4, share=0.921,
        inputs=("pgptext.pgp", "tech_rep.txt.enc"),
        cmr=0.73, car=0.24,
        ladders=(17, 7),  # Table 5: NEW CMR = 17/24 of OLD
        rotating=(1,),
        aux=streaming_kernel("pgpdec.aux", n_loads=2, n_stores=1, width=4,
                             taps=2, reuse_offset=32, compute_depth=2,
                             filler_compute=7),
    ))
    register(_chain_benchmark(
        "pgpenc", idx=12, interleave=4, width=4, share=0.732,
        inputs=("pgptest.plain", "tech_rep.txt"),
        cmr=0.63, car=0.21, ladders=(14, 6), rotating=(1,),
        aux=streaming_kernel("pgpenc.aux", n_loads=2, n_stores=1, width=4,
                             taps=2, reuse_offset=32, compute_depth=2,
                             filler_compute=7),
    ))

    # -- rasta (speech analysis: several small in-place filter chains) ----
    register(_chain_benchmark(
        "rasta", idx=13, interleave=4, width=4, share=0.95,
        inputs=("ex5_c1.wav", "ex5_c1.wav"),
        cmr=0.52, car=0.26,
        ladders=(4, 4, 4, 4),  # Table 5: NEW CMR = 4/16 of OLD
        rotating=(2, 3),
        aux=streaming_kernel("rasta.aux", n_loads=2, n_stores=1, width=4,
                             taps=2, reuse_offset=32, compute_depth=1,
                             filler_compute=0),
    ))

    return catalog


_CACHE: Optional[Dict[str, Benchmark]] = None


def _catalog() -> Dict[str, Benchmark]:
    global _CACHE
    if _CACHE is None:
        _CACHE = _build_catalog()
    return _CACHE


def benchmark_names(evaluated_only: bool = True) -> List[str]:
    """Benchmark names, by default the 13 that appear in the figures.

    With ``evaluated_only=False`` the list also carries one canonical
    synthetic scenario per generator family (``scn-...`` names), so
    existing drivers can run generated workloads by name.
    """
    names = [
        name
        for name, bench in _catalog().items()
        if bench.evaluated or not evaluated_only
    ]
    if not evaluated_only:
        from repro.scenarios.generator import DEFAULT_SCENARIOS

        names.extend(DEFAULT_SCENARIOS)
    return names


def get_benchmark(name: str) -> Benchmark:
    """Look up a catalog benchmark, or build a synthetic scenario.

    ``scn-...`` names are resolved through
    :func:`repro.scenarios.generator.scenario_benchmark`: generation is a
    pure function of the name, so any process (CLI, multiprocessing
    worker, warm-cache reader) reconstructs the identical benchmark.
    """
    try:
        return _catalog()[name]
    except KeyError:
        pass
    from repro.scenarios.generator import is_scenario_name, scenario_benchmark

    if is_scenario_name(name):
        return scenario_benchmark(name)
    raise WorkloadError(
        f"unknown benchmark {name!r}; known: {sorted(_catalog())} "
        f"(or a generated 'scn-...' scenario name)"
    )


#: Names of all benchmarks (Table 1 rows), including the unevaluated one.
BENCHMARKS: Tuple[str, ...] = (
    "epicdec", "epicenc", "g721dec", "g721enc", "gsmdec", "gsmenc",
    "jpegdec", "jpegenc", "mpeg2dec", "pegwitdec", "pegwitenc",
    "pgpdec", "pgpenc", "rasta",
)
