"""Loop-kernel DDG templates.

These templates generate the loop shapes that dominate the Mediabench
programs of Table 1 (media filters, codec table lookups, reductions,
in-place transforms, crypto big-number update loops).  The catalog
composes and calibrates them per benchmark so that the chain statistics
(Table 3), the access mix (Figure 6) and the cycle behaviour (Figure 7)
have the right shape.

All templates share conventions:

* a loop-carried address-generation op (``i = i + 1``) feeds every memory
  instruction — the register communications the DDGT transformation
  multiplies (Table 4) come from these and from store-value producers;
* every load gets at least one non-store register consumer, so load-store
  synchronization normally finds a real consumer and fake consumers appear
  only in the paper's pathological pattern;
* filler compute ops alternate between the integer and floating-point
  units so they model real media compute without making one unit the
  accidental bottleneck.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.alias.memref import AccessPattern, MemRef
from repro.errors import WorkloadError
from repro.ir.builder import DdgBuilder
from repro.ir.ddg import Ddg


def _add_agen(b: DdgBuilder) -> str:
    """The induction-variable update every memory op consumes."""
    b.ialu("i", b.carried("i", 1), name="agen")
    return "i"


def _add_filler(b: DdgBuilder, count: int, seed_reg: str) -> None:
    """Attach ``count`` compute ops, alternating INT/FP, in short dependent
    runs of four hanging off ``seed_reg``."""
    prev = seed_reg
    for j in range(count):
        dest = f"f{j}"
        if j % 2:
            b.falu(dest, prev, name=f"fill{j}")
        else:
            b.ialu(dest, prev, name=f"fill{j}")
        prev = dest if (j + 1) % 4 else seed_reg


# ----------------------------------------------------------------------
def streaming_kernel(
    name: str = "stream",
    n_loads: int = 2,
    n_stores: int = 1,
    width: int = 4,
    compute_depth: int = 1,
    filler_compute: int = 0,
    fp: bool = False,
    taps: int = 1,
    reuse_offset: int = 16,
) -> Ddg:
    """Independent input/output streams: ``out_k[i] = f(in_0[i], ...)``.

    No two references share a space with a store, so the kernel is
    chain-free — the bread-and-butter media loop where memory ops can go
    anywhere.  With ``taps > 1`` each input stream is read at ``taps``
    offsets spaced ``reuse_offset`` apart (a sliding window): the trailing
    taps hit the blocks the leading tap fetched in earlier iterations,
    which sets the kernel's cache hit ratio (windowed media loops reuse
    their inputs; pure memcpy does not).
    """
    if n_loads < 1:
        raise WorkloadError("streaming kernel needs at least one load")
    b = DdgBuilder(name)
    agen = _add_agen(b)
    load_regs: List[str] = []
    for k in range(n_loads):
        for t in range(max(1, taps)):
            reg = f"in{k}_{t}" if taps > 1 else f"in{k}"
            b.load(
                reg,
                agen,
                mem=MemRef(
                    f"src{k}",
                    offset=t * reuse_offset,
                    stride=width,
                    width=width,
                ),
                name=f"ld{k}_{t}" if taps > 1 else f"ld{k}",
            )
            load_regs.append(reg)
    value = load_regs[0]
    for d in range(compute_depth):
        dest = f"v{d}"
        other = load_regs[(d + 1) % n_loads]
        if fp:
            b.falu(dest, value, other, name=f"op{d}")
        else:
            b.ialu(dest, value, other, name=f"op{d}")
        value = dest
    for k in range(n_stores):
        b.store(value, agen, mem=MemRef(f"dst{k}", stride=width, width=width),
                name=f"st{k}")
    _add_filler(b, filler_compute, value)
    return b.build()


def copy_kernel(name: str = "copy", width: int = 4) -> Ddg:
    """``dst[i] = src[i]`` — the minimal chain-free memory loop."""
    return streaming_kernel(name, n_loads=1, n_stores=1, width=width,
                            compute_depth=1)


def reduction_kernel(
    name: str = "reduce",
    n_loads: int = 2,
    width: int = 4,
    filler_compute: int = 0,
) -> Ddg:
    """Dot-product style: loads, multiplies, a carried FP accumulation."""
    if n_loads < 1:
        raise WorkloadError("reduction kernel needs at least one load")
    b = DdgBuilder(name)
    agen = _add_agen(b)
    prods: List[str] = []
    for k in range(n_loads):
        reg = f"in{k}"
        b.load(reg, agen, mem=MemRef(f"vec{k}", stride=width, width=width),
               name=f"ld{k}")
        prods.append(reg)
    value = prods[0]
    if n_loads > 1:
        b.fmul("prod", prods[0], prods[1], name="mul")
        value = "prod"
    b.falu("acc", value, b.carried("acc", 1), name="acc")
    _add_filler(b, filler_compute, value)
    return b.build()


def table_lookup_kernel(
    name: str = "lookup",
    n_lookups: int = 2,
    width: int = 2,
    table_bytes: int = 1024,
    filler_compute: int = 0,
) -> Ddg:
    """Codec-style read-only table lookups: an affine index stream plus
    indirect loads into a table.  Loads only — chain-free (Table 3 shows
    g721's CMR of exactly 0)."""
    b = DdgBuilder(name)
    agen = _add_agen(b)
    b.load("idx", agen, mem=MemRef("indices", stride=width, width=width),
           name="ldidx")
    value = "idx"
    for k in range(n_lookups):
        reg = f"t{k}"
        b.load(
            reg,
            "idx",
            mem=MemRef(
                "table",
                width=width,
                pattern=AccessPattern.INDIRECT,
                spread=table_bytes,
                salt=k,
            ),
            name=f"lut{k}",
        )
        b.ialu(f"c{k}", reg, value, name=f"use{k}")
        value = f"c{k}"
    _add_filler(b, filler_compute, value)
    return b.build()


def inplace_stencil_kernel(
    name: str = "stencil",
    taps: int = 3,
    width: int = 4,
    filler_compute: int = 0,
) -> Ddg:
    """In-place neighborhood update: ``a[i+c] = f(a[i], ..., a[i+taps-1])``.

    The references are affine and *analyzable*: the disambiguator derives
    the true flow/anti dependences, producing a small genuine memory
    dependent chain of ``taps + 1`` instructions — the shape behind the
    small-but-nonzero CMR benchmarks (gsm, jpeg-enc, mpeg2).
    """
    if taps < 1:
        raise WorkloadError("stencil needs at least one tap")
    b = DdgBuilder(name)
    agen = _add_agen(b)
    regs = []
    for k in range(taps):
        reg = f"a{k}"
        b.load(reg, agen,
               mem=MemRef("line", offset=k * width, stride=width, width=width),
               name=f"tap{k}")
        regs.append(reg)
    value = regs[0]
    for k in range(1, taps):
        b.falu(f"s{k}", value, regs[k], name=f"mix{k}")
        value = f"s{k}"
    center = (taps // 2) * width
    b.store(value, agen,
            mem=MemRef("line", offset=center, stride=width, width=width),
            name="stc")
    _add_filler(b, filler_compute, value)
    return b.build()


def chain_kernel(
    name: str = "chain",
    ladders: Sequence[int] = (12,),
    width: int = 4,
    lane_stride: int = 16,
    store_every: int = 3,
    filler_compute: int = 0,
    ambiguous: bool = True,
    space: str = "buf",
    rotating: Sequence[int] = (),
) -> Ddg:
    """Read-modify-write *ladders* over one buffer, accessed through
    pointers the compiler cannot disambiguate — the big-chain loops of
    epicdec, pgp and rasta.

    Each ladder of length ``L`` touches offsets ``base + t * lane_stride``
    for ``t in 0..L-1`` with per-iteration stride ``lane_stride``: element
    ``t`` of iteration ``i`` is element ``t+1`` of iteration ``i-1``, so
    the ladder carries *true* flow/anti dependences at distances within
    the analysis horizon and forms a genuine memory dependent chain of
    ``L`` instructions.  ``lane_stride`` defaults to clusters x interleave
    (16 bytes), which keeps every ladder single-home; ladder ``j`` is
    based so its home cluster is ``j mod 4`` — the workload spreads over
    the machine under free scheduling but collapses into one cluster under
    MDC.

    With ``ambiguous=True`` the *first* reference of each ladder is an
    unanalyzable pointer: the disambiguator serializes it against every
    other reference of the buffer, which glues all ladders into one big
    chain (sum of ladder lengths) while the ladder interiors keep their
    precise dependences.  Code specialization (section 6) removes the
    ambiguity, leaving per-ladder chains — the biggest NEW chain of
    Table 5 is ``max(ladders)``.

    Ladders whose index appears in ``rotating`` use half the lane stride,
    so their accesses alternate between *two* home clusters.  Under free
    scheduling their preferred cluster is right only half the time; store
    replication (DDGT) turns their stores fully local — the mechanism by
    which DDGT's local hit ratio exceeds even unrestricted scheduling
    (section 4.2's Figure 6 discussion).
    """
    if not ladders or any(length < 1 for length in ladders):
        raise WorkloadError("ladders must be a non-empty list of positive lengths")
    if lane_stride % 4:
        raise WorkloadError("lane_stride must be a multiple of the word size")

    b = DdgBuilder(name)
    agen = _add_agen(b)
    home_step = lane_stride // 4  # one interleave unit on the paper machine
    #: ladder bases are far apart so ladder sweeps only collide dozens of
    #: iterations apart (benign), yet rotate over home clusters.
    ladder_gap = lane_stride * 64
    op_index = 0
    value = agen
    rotating_set = set(rotating)
    for j, length in enumerate(ladders):
        # Base parity scheme: normal ladders sit on even interleave units
        # (homes 0/2), rotating ladders on odd ones (homes 1/3).  Gaps
        # between normal and rotating bases are then never congruent to a
        # rotating stride multiple, so the GCD disambiguation test proves
        # the ladders independent once the ambiguity is specialized away.
        if j in rotating_set:
            base = j * ladder_gap + home_step + (j % 2) * 2 * home_step
            step = lane_stride // 2
        else:
            base = j * ladder_gap + (j % 2) * 2 * home_step
            step = lane_stride
        for t in range(length):
            mem = MemRef(
                space,
                offset=base + t * step,
                stride=step,
                width=width,
                ambiguous=ambiguous and t == 0,
            )
            # Single-op ladders stay loads: they model reads through an
            # unanalyzable pointer that the ambiguity glues to the chain
            # (the multi-home chains behind the gsmdec anecdote of §4.2).
            is_store = (t % store_every) == store_every - 1 or (
                t == length - 1 and 2 <= length < store_every
            )
            if is_store:
                b.store(value, agen, mem=mem, name=f"st{op_index}")
            else:
                reg = f"m{op_index}"
                b.load(reg, agen, mem=mem, name=f"ld{op_index}")
                b.ialu(f"u{op_index}", reg, name=f"use{op_index}")
                value = f"u{op_index}"
            op_index += 1
    _add_filler(b, filler_compute, value)
    return b.build()


def table_update_kernel(
    name: str = "histogram",
    width: int = 4,
    table_bytes: int = 512,
    filler_compute: int = 0,
) -> Ddg:
    """Histogram-style read-modify-write of a random table slot.

    The indirect load and store share the same pseudo-random address
    stream (same space/offset/salt), so they form a genuine two-element
    memory dependent chain with uniformly random home clusters.
    """
    b = DdgBuilder(name)
    agen = _add_agen(b)
    slot = MemRef(
        "table",
        width=width,
        pattern=AccessPattern.INDIRECT,
        spread=table_bytes,
    )
    b.load("old", agen, mem=slot, name="ldslot")
    b.ialu("new", "old", name="bump")
    b.store("new", agen, mem=slot, name="stslot")
    _add_filler(b, filler_compute, "new")
    return b.build()
