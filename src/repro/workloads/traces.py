"""Deterministic address traces.

An :class:`AddressTrace` evaluates the symbolic :class:`MemRef` of every
memory instruction in a graph against a per-space base-address map, making
it usable both by the profiler and the cycle-level simulator.  The same
graph with different ``seed``/``base`` parameters models the paper's
distinct *profile* and *execution* data sets (Table 1): affine references
keep their structure but shift origin, indirect references draw a
different pseudo-random stream.

Traces are deterministic functions of (seed, space, salt, iteration) —
repeated runs and replicated store instances (which share their MemRef)
see identical addresses.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, Optional

from repro.alias.memref import AccessPattern
from repro.errors import WorkloadError
from repro.ir.ddg import Ddg

_MASK64 = (1 << 64) - 1


def splitmix64(x: int) -> int:
    """SplitMix64 step — a fast, well-distributed integer hash.

    The single bit-mixing primitive behind every determinism contract in
    the package: trace address streams here, and the scenario generator's
    draw streams (:mod:`repro.scenarios.rng`).
    """
    x = (x + 0x9E3779B97F4A7C15) & _MASK64
    x ^= x >> 30
    x = (x * 0xBF58476D1CE4E5B9) & _MASK64
    x ^= x >> 27
    x = (x * 0x94D049BB133111EB) & _MASK64
    x ^= x >> 31
    return x


#: Backwards-compatible private alias (pre-1.2 internal name).
_splitmix64 = splitmix64


def _mix(seed: int, space_hash: int, salt: int, iteration: int) -> int:
    return _splitmix64(
        seed ^ _splitmix64(space_hash ^ _splitmix64(salt ^ iteration))
    )


#: Gap between consecutive space base addresses; large enough that spaces
#: never overlap for any workload footprint.
SPACE_GAP = 1 << 22
#: Base addresses are aligned to block_bytes * max clusters so that the
#: home cluster of offset 0 is cluster 0 — the paper's "padding" that keeps
#: preferred-cluster information consistent across data sets.
BASE_ALIGN = 256
#: Per-space stagger (whole cache blocks) so different spaces start in
#: different cache sets — SPACE_GAP is a multiple of every module's set
#: span, so without the stagger all streams would collide in set 0.
SET_STAGGER = 256


class AddressTrace:
    """Concrete per-(instruction, iteration) addresses for one graph."""

    def __init__(
        self,
        ddg: Ddg,
        num_iterations: int,
        seed: int = 0,
        base_of: Optional[Dict[str, int]] = None,
        padded: bool = True,
    ) -> None:
        """
        Parameters
        ----------
        padded:
            When true (the paper's default), space bases stay aligned
            across seeds, so an affine reference's home-cluster pattern is
            identical between profile and execution runs.  When false,
            each seed shifts bases by a different number of interleave
            units — modeling *unpadded* data where the profiled preferred
            cluster can be wrong at execution time.
        """
        if num_iterations < 0:
            raise WorkloadError("negative iteration count")
        self._ddg = ddg
        self.num_iterations = num_iterations
        self.seed = seed
        self._bases: Dict[str, int] = {}

        spaces = sorted(
            {v.mem.space for v in ddg.memory_instructions() if v.mem is not None}
        )
        for index, space in enumerate(spaces):
            if base_of and space in base_of:
                base = base_of[space]
            else:
                base = BASE_ALIGN + index * (SPACE_GAP + SET_STAGGER)
                if not padded:
                    shift = _mix(seed, hash(space) & _MASK64, 0, 0) % 64
                    base += shift * 4
            self._bases[space] = base
        self._space_hash = {
            space: _splitmix64(sum(ord(c) << (8 * (i % 8)) for i, c in enumerate(space)))
            for space in spaces
        }

    # ------------------------------------------------------------------
    def base(self, space: str) -> int:
        try:
            return self._bases[space]
        except KeyError:
            raise WorkloadError(f"unknown space {space!r}") from None

    def address(self, iid: int, iteration: int) -> int:
        mem = self._ddg.node(iid).mem
        if mem is None:
            raise WorkloadError(f"instruction {iid} is not a memory op")
        base = self.base(mem.space)
        if mem.pattern is AccessPattern.AFFINE:
            return base + mem.offset + mem.stride * iteration
        slots = max(1, mem.spread // mem.width)
        pick = _mix(
            self.seed, self._space_hash[mem.space], mem.salt, iteration
        ) % slots
        return base + mem.offset + pick * mem.width


def trace_factory(
    num_iterations: int,
    seed: int = 0,
    base_of: Optional[Dict[str, int]] = None,
    padded: bool = True,
) -> Callable[[Ddg], AddressTrace]:
    """A factory suitable for :func:`repro.sched.pipeline.compile_loop`'s
    ``trace_factory`` argument and for building execution traces.

    For the common keyable case (no explicit base map), prefer
    :func:`cached_trace_spec` — its :class:`TraceSpec` carries a content
    key, which is what lets the staged pipeline cache profiling results
    in the artifact store.
    """

    def build(ddg: Ddg) -> AddressTrace:
        return AddressTrace(
            ddg,
            num_iterations=num_iterations,
            seed=seed,
            base_of=base_of,
            padded=padded,
        )

    return build


@dataclass(frozen=True)
class TraceSpec:
    """A declarative, *keyed* trace factory.

    Callable like the closures :func:`trace_factory` returns, but frozen
    and content-addressable: :attr:`key` names the trace's content, so
    the staged pipeline (:mod:`repro.sched.stages`) can cache profiling
    results derived from it.  Explicit ``base_of`` maps are not
    representable here — they have no canonical key; use
    :func:`trace_factory` for those (profiling then simply isn't
    artifact-cached).
    """

    num_iterations: int
    seed: int = 0
    padded: bool = True

    @property
    def key(self) -> str:
        """Canonical content key of the address streams this spec yields."""
        return (
            f"iters{self.num_iterations}-seed{self.seed}"
            f"-padded{int(self.padded)}"
        )

    def __call__(self, ddg: Ddg) -> AddressTrace:
        return AddressTrace(
            ddg,
            num_iterations=self.num_iterations,
            seed=self.seed,
            padded=self.padded,
        )


@lru_cache(maxsize=None)
def cached_trace_spec(num_iterations: int, seed: int = 0,
                      padded: bool = True) -> TraceSpec:
    """Memoized :class:`TraceSpec` construction.

    The run loop historically rebuilt an identical profile-trace callable
    for every loop of every variant from the same
    ``(PROFILE_ITERATIONS, profile_seed)`` pair; this returns the one
    frozen spec per distinct ``(iterations, seed, padded)`` triple
    instead, so trace identity is stable across the whole variant cross
    (and the artifact layer above it caches the actual profiling work).
    """
    return TraceSpec(num_iterations, seed, padded)
