"""Code specialization (paper section 6).

The paper hand-applies dynamic memory disambiguation [3] to the chainiest
benchmarks: the loop is duplicated into a *restrictive* version (assumes
the ambiguous dependences hold) and an *aggressive* version (assumes they
don't), guarded by a run-time overlap check.  The aggressive version —
taken whenever the pointers don't actually collide — drops exactly the
edges the ambiguity forced, so the memory dependent chains shrink to the
true dependences (Table 5's OLD -> NEW movement).

At the graph level the aggressive version is obtained by clearing the
``ambiguous`` flag on every reference and re-running disambiguation; the
restrictive version is the original graph.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Tuple

from repro.alias.disambiguation import (
    add_memory_dependences,
    remove_memory_dependences,
)
from repro.ir.ddg import Ddg


def specialize_ambiguous(ddg: Ddg) -> Ddg:
    """The aggressive loop version: ambiguity dropped, true deps kept.

    Works whether or not the input graph already carries memory edges —
    any existing MF/MA/MO edges are stripped and re-derived from the
    now-unambiguous references.
    """
    aggressive = ddg.clone(f"{ddg.name}+spec")
    for instr in list(aggressive):
        if instr.mem is not None and instr.mem.ambiguous:
            aggressive.replace_instruction(
                replace(instr, mem=replace(instr.mem, ambiguous=False))
            )
    remove_memory_dependences(aggressive)
    add_memory_dependences(aggressive)
    return aggressive


def specialize_loop(ddg: Ddg) -> Tuple[Ddg, Ddg]:
    """Both versions: (restrictive, aggressive) — the pair the paper's
    check code selects between at run time."""
    restrictive = ddg.clone(f"{ddg.name}+restr")
    return restrictive, specialize_ambiguous(ddg)
