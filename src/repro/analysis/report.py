"""Plain-text table rendering for the experiment drivers and benches."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render rows as an aligned monospace table."""
    rendered: List[List[str]] = []
    for row in rows:
        cells = []
        for cell in row:
            if isinstance(cell, float):
                cells.append(float_format.format(cell))
            else:
                cells.append(str(cell))
        rendered.append(cells)
    widths = [len(h) for h in headers]
    for cells in rendered:
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for cells in rendered:
        lines.append(
            "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))
        )
    return "\n".join(lines)


def normalize(values: Dict[str, float], baseline_key: str) -> Dict[str, float]:
    """Divide every value by the baseline entry (Figure 7/9 style)."""
    base = values[baseline_key]
    if base == 0:
        raise ZeroDivisionError(f"baseline {baseline_key!r} is zero")
    return {key: value / base for key, value in values.items()}
