"""Chain statistics: the CMR and CAR ratios of Table 3.

* **CMR** — biggest Chain over Memory instructions Ratio: dynamic memory
  instructions in the biggest memory dependent chain of each loop, over
  all dynamic memory instructions;
* **CAR** — biggest Chain over All instructions Ratio: same numerator,
  over all dynamic instructions.

Dynamic counts are static per-iteration counts times the loop trip count.
Both ratios are invariant under unrolling (numerator and denominators
scale together), so they are computed on the un-unrolled kernels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

from repro.alias.disambiguation import add_memory_dependences
from repro.ir.ddg import Ddg
from repro.sched.mdc import memory_dependent_chains


@dataclass(frozen=True)
class ChainStats:
    """Per-loop static counts feeding the CMR/CAR computation."""

    biggest_chain: int  # memory instructions in the biggest chain
    memory_ops: int
    total_ops: int

    @property
    def loop_cmr(self) -> float:
        return self.biggest_chain / self.memory_ops if self.memory_ops else 0.0

    @property
    def loop_car(self) -> float:
        return self.biggest_chain / self.total_ops if self.total_ops else 0.0


def chain_stats(ddg: Ddg, with_mem_deps: bool = False) -> ChainStats:
    """Measure one loop's chain statistics.

    Unless ``with_mem_deps`` says the graph already carries memory edges,
    conservative disambiguation runs on a scratch clone first.
    """
    work = ddg if with_mem_deps else ddg.clone()
    if not with_mem_deps:
        add_memory_dependences(work)
    chains = memory_dependent_chains(work)
    biggest = max((len(c) for c in chains), default=0)
    return ChainStats(
        biggest_chain=biggest,
        memory_ops=len(work.memory_instructions()),
        total_ops=len(work),
    )


def cmr_car(
    loops: Sequence[Tuple[ChainStats, int]]
) -> Tuple[float, float]:
    """Aggregate (CMR, CAR) over weighted loops.

    ``loops`` pairs each loop's :class:`ChainStats` with its trip count.
    """
    chain_dyn = sum(stats.biggest_chain * trips for stats, trips in loops)
    mem_dyn = sum(stats.memory_ops * trips for stats, trips in loops)
    all_dyn = sum(stats.total_ops * trips for stats, trips in loops)
    cmr = chain_dyn / mem_dyn if mem_dyn else 0.0
    car = chain_dyn / all_dyn if all_dyn else 0.0
    return cmr, car
