"""Analyses and reporting over compiled loops and simulation results."""

from repro.analysis.chains import ChainStats, chain_stats, cmr_car
from repro.analysis.report import format_table, normalize

__all__ = [
    "ChainStats",
    "chain_stats",
    "cmr_car",
    "format_table",
    "normalize",
]
