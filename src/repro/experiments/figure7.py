"""Figure 7 — execution time, split compute/stall, normalized.

Four bars per benchmark — MDC(PrefClus), MDC(MinComs), DDGT(PrefClus),
DDGT(MinComs) — normalized to the optimistic baseline (free scheduling
with MinComs), which "usually performs better than PrefClus" (section
4.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import format_table
from repro.api.runner import Runner, default_runner
from repro.api.spec import EVALUATED, FIGURE7_BARS, FREE_MIN, Variant
from repro.arch.config import BASELINE_CONFIG, MachineConfig
from repro.experiments.common import fetch_records


@dataclass
class Bar:
    """One normalized execution-time bar."""

    compute: float
    stall: float

    @property
    def total(self) -> float:
        return self.compute + self.stall


@dataclass
class Figure7Result:
    #: benchmark -> variant key -> normalized bar
    bars: Dict[str, Dict[str, Bar]] = field(default_factory=dict)
    #: benchmark -> absolute baseline cycles (free/mincoms)
    baseline_cycles: Dict[str, int] = field(default_factory=dict)
    variant_keys: Tuple[str, ...] = tuple(v.key for v in FIGURE7_BARS)

    def mean_bar(self, variant_key: str) -> Bar:
        rows = [
            bench[variant_key]
            for name, bench in self.bars.items()
            if name != "AMEAN"
        ]
        n = len(rows)
        return Bar(
            compute=sum(bar.compute for bar in rows) / n,
            stall=sum(bar.stall for bar in rows) / n,
        )

    def winner(self, benchmark: str) -> str:
        bench = self.bars[benchmark]
        return min(bench, key=lambda key: bench[key].total)

    def render(self) -> str:
        headers = ["benchmark"] + [
            f"{key} {part}"
            for key in self.variant_keys
            for part in ("cmp", "stall", "tot")
        ]
        rows = []
        for name, bench in self.bars.items():
            row: List[object] = [name]
            for key in self.variant_keys:
                bar = bench[key]
                row.extend([bar.compute, bar.stall, bar.total])
            rows.append(row)
        return format_table(
            headers, rows,
            title=(
                "Figure 7: execution cycles normalized to free(MinComs), "
                "split compute/stall"
            ),
        )


def run_figure7(
    benchmarks: Optional[List[str]] = None,
    config: MachineConfig = BASELINE_CONFIG,
    scale: Optional[float] = None,
    attraction: bool = False,
    bars: Tuple[Variant, ...] = FIGURE7_BARS,
    runner: Optional[Runner] = None,
    progress=None,
) -> Figure7Result:
    """Also reused by Figure 9 (same bars, Attraction Buffers enabled)."""
    names = list(benchmarks) if benchmarks is not None else list(EVALUATED)
    runner = runner if runner is not None else default_runner()
    records = fetch_records(
        names, (FREE_MIN,) + tuple(bars), config, scale, attraction, runner,
        progress=progress,
    )

    result = Figure7Result(variant_keys=tuple(v.key for v in bars))
    for name in names:
        base_cycles = records[(name, FREE_MIN.key)].total_cycles
        result.baseline_cycles[name] = base_cycles
        result.bars[name] = {}
        for variant in bars:
            run = records[(name, variant.key)]
            result.bars[name][variant.key] = Bar(
                compute=run.compute_cycles / base_cycles,
                stall=run.stall_cycles / base_cycles,
            )
    result.bars["AMEAN"] = {
        key: result.mean_bar(key) for key in result.variant_keys
    }
    return result
