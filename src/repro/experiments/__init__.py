"""Experiment drivers — one per table/figure of the paper's evaluation.

Each driver returns a structured result object and can render the
plain-text equivalent of the paper's table or figure; the
``benchmarks/`` tree wraps them in pytest-benchmark entry points.
"""

from repro.experiments.common import (
    ALL_VARIANTS,
    BenchmarkRun,
    EVALUATED,
    LoopRun,
    Variant,
    run_benchmark,
)
from repro.experiments.figure6 import Figure6Result, run_figure6
from repro.experiments.figure7 import Figure7Result, run_figure7
from repro.experiments.figure9 import Figure9Result, run_figure9
from repro.experiments.table4 import Table4Result, run_table4
from repro.experiments.table5 import Table5Result, run_table5
from repro.experiments.nobal import NobalResult, run_nobal

__all__ = [
    "ALL_VARIANTS",
    "BenchmarkRun",
    "EVALUATED",
    "LoopRun",
    "Variant",
    "run_benchmark",
    "Figure6Result",
    "run_figure6",
    "Figure7Result",
    "run_figure7",
    "Figure9Result",
    "run_figure9",
    "Table4Result",
    "run_table4",
    "Table5Result",
    "run_table5",
    "NobalResult",
    "run_nobal",
]
