"""Shared experiment machinery: variants, per-loop runs, caching.

Every figure/table of the evaluation is some aggregation of the same
underlying unit of work: *compile loop L of benchmark B under coherence
solution C with heuristic H on machine M, then simulate it on the
execution trace*.  :func:`run_benchmark` performs and caches those units
so that e.g. Figure 6 and Figure 7 (which share variants) never repeat a
simulation within one process.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.config import BASELINE_CONFIG, MachineConfig
from repro.sched.pipeline import CoherenceMode, Heuristic, compile_loop
from repro.sim.executor import simulate
from repro.sim.stats import AccessType, SimStats
from repro.workloads.catalog import Benchmark, LoopSpec, get_benchmark
from repro.workloads.traces import trace_factory

#: Benchmarks on the figures' x-axes, in the paper's order.
EVALUATED: Tuple[str, ...] = (
    "epicdec", "g721dec", "g721enc", "gsmdec", "gsmenc", "jpegdec",
    "jpegenc", "mpeg2dec", "pegwitdec", "pegwitenc", "pgpdec", "pgpenc",
    "rasta",
)

#: Iterations used for preferred-cluster profiling (the profile data set).
PROFILE_ITERATIONS = 256


def default_scale() -> float:
    """Global iteration scale; override with ``REPRO_SCALE`` (e.g. 0.25
    for quick runs, 1.0 for the full published numbers)."""
    return float(os.environ.get("REPRO_SCALE", "0.5"))


@dataclass(frozen=True)
class Variant:
    """One (coherence solution, cluster heuristic) combination."""

    coherence: CoherenceMode
    heuristic: Heuristic

    @property
    def key(self) -> str:
        return f"{self.coherence.value}/{self.heuristic.value}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        names = {CoherenceMode.NONE: "free", CoherenceMode.MDC: "MDC",
                 CoherenceMode.DDGT: "DDGT"}
        return f"{names[self.coherence]}({self.heuristic.value})"


FREE_PREF = Variant(CoherenceMode.NONE, Heuristic.PREFCLUS)
FREE_MIN = Variant(CoherenceMode.NONE, Heuristic.MINCOMS)
MDC_PREF = Variant(CoherenceMode.MDC, Heuristic.PREFCLUS)
MDC_MIN = Variant(CoherenceMode.MDC, Heuristic.MINCOMS)
DDGT_PREF = Variant(CoherenceMode.DDGT, Heuristic.PREFCLUS)
DDGT_MIN = Variant(CoherenceMode.DDGT, Heuristic.MINCOMS)

ALL_VARIANTS: Tuple[Variant, ...] = (
    FREE_PREF, FREE_MIN, MDC_PREF, MDC_MIN, DDGT_PREF, DDGT_MIN,
)

#: The four bars of Figures 7 and 9, in the paper's order.
FIGURE7_BARS: Tuple[Variant, ...] = (MDC_PREF, MDC_MIN, DDGT_PREF, DDGT_MIN)


@dataclass
class LoopRun:
    """Result of compiling + simulating one loop under one variant."""

    benchmark: str
    loop: str
    variant: str
    ii: int
    unroll: int
    kernel_iterations: int
    compute_cycles: int
    stall_cycles: int
    stats: SimStats
    violations: int
    static_copies: int
    replicated_instances: int
    fake_consumers: int

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def dynamic_copies(self) -> int:
        """Communication operations executed (Table 4's metric)."""
        return self.static_copies * self.kernel_iterations


@dataclass
class BenchmarkRun:
    """All loops of one benchmark under one variant."""

    benchmark: str
    variant: str
    loops: List[LoopRun] = field(default_factory=list)

    @property
    def compute_cycles(self) -> int:
        return sum(run.compute_cycles for run in self.loops)

    @property
    def stall_cycles(self) -> int:
        return sum(run.stall_cycles for run in self.loops)

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def dynamic_copies(self) -> int:
        return sum(run.dynamic_copies for run in self.loops)

    @property
    def violations(self) -> int:
        return sum(run.violations for run in self.loops)

    def merged_stats(self) -> SimStats:
        merged = SimStats()
        for run in self.loops:
            merged = merged.merged_with(run.stats)
        return merged

    def access_fractions(self) -> Dict[AccessType, float]:
        return self.merged_stats().access_fractions()

    @property
    def local_hit_ratio(self) -> float:
        return self.merged_stats().local_hit_ratio


# ----------------------------------------------------------------------
_RUN_CACHE: Dict[Tuple, BenchmarkRun] = {}


def clear_cache() -> None:
    _RUN_CACHE.clear()


def run_benchmark(
    name: str,
    variant: Variant,
    config: MachineConfig = BASELINE_CONFIG,
    attraction: bool = False,
    scale: Optional[float] = None,
) -> BenchmarkRun:
    """Compile + simulate every loop of a benchmark (cached per process)."""
    if scale is None:
        scale = default_scale()
    key = (name, variant.key, config.name, attraction, scale)
    cached = _RUN_CACHE.get(key)
    if cached is not None:
        return cached

    bench = get_benchmark(name)
    machine = bench.machine(config)
    if attraction:
        machine = machine.with_attraction_buffers()

    result = BenchmarkRun(benchmark=name, variant=variant.key)
    for spec in bench.loops:
        result.loops.append(_run_loop(bench, spec, variant, machine, scale))
    _RUN_CACHE[key] = result
    return result


def _run_loop(
    bench: Benchmark,
    spec: LoopSpec,
    variant: Variant,
    machine: MachineConfig,
    scale: float,
) -> LoopRun:
    profile = trace_factory(PROFILE_ITERATIONS, seed=bench.profile_seed)
    compiled = compile_loop(
        spec.ddg,
        machine,
        coherence=variant.coherence,
        heuristic=variant.heuristic,
        trace_factory=profile,
        unroll_factor=spec.unroll,
    )
    # spec.iterations counts *original* loop iterations; one kernel
    # iteration of the unrolled loop covers `unroll_factor` of them, so
    # every variant of a loop simulates the same amount of original work.
    original_iters = spec.scaled_iterations(scale)
    kernel_iters = max(32, original_iters // compiled.unroll_factor)
    execution = trace_factory(kernel_iters, seed=bench.execute_seed)(
        compiled.ddg
    )
    sim = simulate(compiled, execution, iterations=kernel_iters)
    return LoopRun(
        benchmark=bench.name,
        loop=spec.name,
        variant=variant.key,
        ii=compiled.ii,
        unroll=compiled.unroll_factor,
        kernel_iterations=kernel_iters,
        compute_cycles=sim.compute_cycles,
        stall_cycles=sim.stall_cycles,
        stats=sim.stats,
        violations=sim.violations.total if sim.violations else 0,
        static_copies=compiled.num_copies,
        replicated_instances=(
            compiled.ddgt.instance_count if compiled.ddgt else 0
        ),
        fake_consumers=(
            len(compiled.ddgt.fake_consumers) if compiled.ddgt else 0
        ),
    )
