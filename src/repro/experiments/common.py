"""Legacy experiment surface — thin shims over :mod:`repro.api`.

Historically this module owned the variant vocabulary, the per-process
``_RUN_CACHE`` and the ``run_benchmark`` entry point.  All of that moved
into the declarative :mod:`repro.api` layer (``RunSpec``/``Plan``/
``Runner``/``ResultStore``); this module re-exports the vocabulary and
keeps deprecated, behavior-compatible wrappers so existing callers and
tests continue to work.

New code should use::

    from repro.api import Plan, Runner, RunSpec, run
"""

from __future__ import annotations

import warnings
from typing import Dict, Iterable, Optional, Tuple

from repro.api.core import execute_benchmark
from repro.api.records import LoopRecord, RunRecord
from repro.api.runner import Runner
from repro.api.spec import (
    ALL_VARIANTS,
    DDGT_MIN,
    DDGT_PREF,
    EVALUATED,
    FIGURE7_BARS,
    FREE_MIN,
    FREE_PREF,
    MDC_MIN,
    MDC_PREF,
    PROFILE_ITERATIONS,
    Plan,
    RunSpec,
    Variant,
    default_scale,
    spec_cache_key,
)
from repro.api.store import ResultStore, default_store
from repro.arch.config import BASELINE_CONFIG, MachineConfig, _NAMED

#: Deprecated aliases — the records subsume the old result dataclasses.
LoopRun = LoopRecord
BenchmarkRun = RunRecord

__all__ = [
    "ALL_VARIANTS",
    "BenchmarkRun",
    "DDGT_MIN",
    "DDGT_PREF",
    "EVALUATED",
    "FIGURE7_BARS",
    "FREE_MIN",
    "FREE_PREF",
    "LoopRun",
    "MDC_MIN",
    "MDC_PREF",
    "PROFILE_ITERATIONS",
    "Variant",
    "clear_cache",
    "default_scale",
    "run_benchmark",
]


def clear_cache() -> None:
    """Deprecated: clear the process-wide default ResultStore.

    Use ``repro.api.default_store().clear()`` (or inject your own store
    into a :class:`~repro.api.runner.Runner`) instead.
    """
    warnings.warn(
        "clear_cache() is deprecated; use repro.api.default_store().clear()",
        DeprecationWarning,
        stacklevel=2,
    )
    default_store().clear()


def is_registered(config: MachineConfig) -> bool:
    """Whether ``config`` is (structurally equal to) a named registry
    configuration, i.e. addressable by name from a :class:`RunSpec`."""
    return _NAMED.get(config.name) == config


def run_benchmark(
    name: str,
    variant: Variant,
    config: MachineConfig = BASELINE_CONFIG,
    attraction: bool = False,
    scale: Optional[float] = None,
    store: Optional[ResultStore] = None,
) -> RunRecord:
    """Deprecated: compile + simulate every loop of a benchmark (cached).

    Equivalent to ``repro.api.run(RunSpec(...))``.  Kept for backward
    compatibility; shares the default ResultStore with the new API, so
    mixed old/new callers never repeat a simulation.
    """
    if scale is None:
        scale = default_scale()
    if is_registered(config):
        spec = RunSpec(
            benchmark=name,
            variant=variant.key,
            machine=config.name,
            attraction=attraction,
            scale=scale,
        )
        return Runner(store=store).run_one(spec)

    # Ad-hoc (unnamed) machine configuration: key the cache by the
    # *effective* machine fingerprint — after the benchmark interleave
    # and with_attraction_buffers() are applied — so two configs sharing
    # a name never collide.
    from repro.workloads.catalog import get_benchmark

    bench = get_benchmark(name)
    machine = bench.machine(config)
    if attraction:
        machine = machine.with_attraction_buffers()
    key = "adhoc-" + spec_cache_key(
        benchmark=name, variant=variant.key, machine=machine,
        scale=float(scale), loop=None, seeds=None,
    )
    if store is None:
        store = default_store()
    cached = store.get(key)
    if cached is not None:
        return cached
    record = execute_benchmark(
        name, variant, machine, scale=float(scale), attraction=attraction,
        spec_key=key,
    )
    store.put(key, record)
    return record


def fetch_records(
    names: Iterable[str],
    variants: Iterable[Variant],
    config: MachineConfig,
    scale: Optional[float],
    attraction: bool,
    runner: Runner,
    progress=None,
) -> Dict[Tuple[str, str], RunRecord]:
    """``(benchmark, variant key) -> RunRecord`` for one driver grid.

    Named registry configs go through the runner as a :class:`Plan` —
    streamed, so a ``progress`` callback (``(done, total, record)``) sees
    every completion live; an ad-hoc :class:`MachineConfig` falls back to
    :func:`run_benchmark`, which keys the runner's store by the
    effective-machine fingerprint — so custom configs are honored
    instead of silently replaced by their namesake.
    """
    variants = tuple(variants)
    if is_registered(config):
        plan = Plan.grid(
            benchmarks=list(names),
            variants=variants,
            machines=config.name,
            attraction=attraction,
            scale=scale,
        )
        records = runner.run(plan, progress=progress)
        return {(r.benchmark, r.variant): r for r in records}
    return {
        (name, variant.key): run_benchmark(
            name, variant, config=config, attraction=attraction,
            scale=scale, store=runner.store,
        )
        for name in names
        for variant in variants
    }
