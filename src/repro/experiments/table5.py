"""Table 5 — memory-dependence restrictions before/after code
specialization (section 6), for the chain-heavy benchmarks."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.chains import chain_stats, cmr_car
from repro.analysis.report import format_table
from repro.experiments import paperdata
from repro.workloads.catalog import get_benchmark
from repro.workloads.specialization import specialize_ambiguous

#: Benchmarks the paper applies the (manual) transformation to.
SPECIALIZED = ("epicdec", "pgpdec", "rasta")


@dataclass
class Table5Result:
    #: benchmark -> (old cmr, old car, new cmr, new car)
    rows: Dict[str, Tuple[float, float, float, float]] = field(
        default_factory=dict
    )

    def render(self) -> str:
        headers = ["benchmark", "OLD CMR", "OLD CAR", "NEW CMR", "NEW CAR",
                   "paper OLD", "paper NEW"]
        table = []
        for name, (ocmr, ocar, ncmr, ncar) in self.rows.items():
            p = paperdata.TABLE5.get(name)
            table.append([
                name, ocmr, ocar, ncmr, ncar,
                f"{p[0]:.2f}/{p[1]:.2f}" if p else "-",
                f"{p[2]:.2f}/{p[3]:.2f}" if p else "-",
            ])
        return format_table(
            headers, table,
            title="Table 5: chain restrictions before/after specialization",
        )


def run_table5(benchmarks: Optional[List[str]] = None) -> Table5Result:
    names = list(benchmarks) if benchmarks is not None else list(SPECIALIZED)
    result = Table5Result()
    for name in names:
        bench = get_benchmark(name)
        old = cmr_car(bench.chain_table())
        new_table = []
        for spec in bench.loops:
            aggressive = specialize_ambiguous(spec.ddg)
            new_table.append(
                (chain_stats(aggressive, with_mem_deps=True), spec.iterations)
            )
        new = cmr_car(new_table)
        result.rows[name] = (old[0], old[1], new[0], new[1])
    return result
