"""Published numbers from the paper, for side-by-side comparison.

These are the values this reproduction checks its *shape* against (who
wins, by roughly what factor); absolute cycle counts are not comparable
(different compiler, different simulator calibration, scaled traces).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Table 3 — (CMR, CAR) per benchmark.
TABLE3: Dict[str, Tuple[float, float]] = {
    "epicdec": (0.64, 0.22),
    "g721dec": (0.0, 0.0),
    "g721enc": (0.0, 0.0),
    "gsmdec": (0.18, 0.02),
    "gsmenc": (0.08, 0.01),
    "jpegdec": (0.46, 0.09),
    "jpegenc": (0.07, 0.03),
    "mpeg2dec": (0.13, 0.05),
    "pegwitdec": (0.27, 0.07),
    "pegwitenc": (0.35, 0.09),
    "pgpdec": (0.73, 0.24),
    "pgpenc": (0.63, 0.21),
    "rasta": (0.52, 0.26),
}

#: Table 4 — (delta communication ops DDGT/MDC with PrefClus,
#: DDGT-over-MDC speedup on the selected loops; None = no loop qualified).
TABLE4: Dict[str, Tuple[float, Optional[float]]] = {
    "epicdec": (7.39, 0.183),
    "g721dec": (1.0, None),
    "g721enc": (1.0, None),
    "gsmdec": (1.06, 0.0),
    "gsmenc": (0.86, 0.302),
    "jpegdec": (1.31, 0.0),
    "jpegenc": (1.05, -0.164),
    "mpeg2dec": (1.05, None),
    "pegwitdec": (1.02, 0.062),
    "pegwitenc": (1.29, 0.075),
    "pgpdec": (1.82, 0.041),
    "pgpenc": (1.80, 0.041),
    "rasta": (1.66, 0.107),
}

#: Table 5 — (OLD CMR, OLD CAR, NEW CMR, NEW CAR) after code
#: specialization.
TABLE5: Dict[str, Tuple[float, float, float, float]] = {
    "epicdec": (0.64, 0.22, 0.20, 0.06),
    "pgpdec": (0.73, 0.24, 0.52, 0.17),
    "rasta": (0.52, 0.26, 0.13, 0.06),
}

#: Figure 6 headline anchors (PrefClus).
FIGURE6_ANCHORS = {
    "free_mean_local_hit": 0.625,
    "mdc_mean_local_hit": 0.532,
    "ddgt_vs_mdc_local_hit_gain": 0.15,  # "increased by 15%"
    "epicdec_free_local_hit": 0.60,
    "epicdec_mdc_local_hit": 0.24,
}

#: Figure 7 headline anchors.
FIGURE7_ANCHORS = {
    "ddgt_stall_reduction_prefclus": 0.32,   # vs MDC, PrefClus
    "ddgt_compute_increase_prefclus": 0.11,
    "ddgt_compute_increase_mincoms": 0.10,
    # winners called out in the text
    "ddgt_pref_wins": ("epicdec", "pgpdec"),
    "mdc_min_wins": ("jpegenc", "pegwitdec", "pgpenc", "rasta"),
}

#: Section 4.2, "other architectural configurations": DDGT(PrefClus)
#: speedup over the best MDC result under NOBAL+REG.
NOBAL_REG_SPEEDUPS = {
    "epicdec": 0.17,
    "pgpdec": 0.20,
    "pgpenc": 0.09,
    "rasta": 0.08,
}

#: Figure 9 (Attraction Buffers) anchors.
FIGURE9_ANCHORS = {
    # MDC outperforms DDGT everywhere except these (sections 5.4 text).
    "ddgt_wins_with_ab": ("epicdec", "gsmdec"),
    "epicdec_loop_mdc_local_hit": 0.65,
    "epicdec_loop_ddgt_local_hit": 0.97,
    "epicdec_loop_ddgt_speedup": 0.24,
}
