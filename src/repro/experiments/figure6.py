"""Figure 6 — classification of memory accesses (PrefClus heuristic).

Three bars per benchmark: (i) no memory-dependence restrictions (free),
(ii) MDC, (iii) DDGT; each bar splits all memory accesses into local hits,
remote hits, local misses, remote misses and combined accesses, plus the
arithmetic mean across benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import format_table
from repro.api.runner import Runner, default_runner
from repro.api.spec import DDGT_PREF, EVALUATED, FREE_PREF, MDC_PREF, Variant
from repro.arch.config import BASELINE_CONFIG, MachineConfig
from repro.experiments.common import fetch_records
from repro.sim.stats import AccessType

BARS: Tuple[Variant, ...] = (FREE_PREF, MDC_PREF, DDGT_PREF)
BAR_NAMES = {FREE_PREF.key: "free", MDC_PREF.key: "MDC", DDGT_PREF.key: "DDGT"}


@dataclass
class Figure6Result:
    #: benchmark -> bar name -> access-type fractions
    fractions: Dict[str, Dict[str, Dict[AccessType, float]]] = field(
        default_factory=dict
    )

    def local_hit(self, benchmark: str, bar: str) -> float:
        return self.fractions[benchmark][bar][AccessType.LOCAL_HIT]

    def mean_local_hit(self, bar: str) -> float:
        values = [
            bench[bar][AccessType.LOCAL_HIT]
            for name, bench in self.fractions.items()
            if name != "AMEAN"
        ]
        return sum(values) / len(values) if values else 0.0

    def render(self) -> str:
        headers = ["benchmark", "bar", "local hit", "remote hit",
                   "local miss", "remote miss", "combined"]
        rows = []
        for name, bars in self.fractions.items():
            for bar, frac in bars.items():
                rows.append([
                    name, bar,
                    frac[AccessType.LOCAL_HIT],
                    frac[AccessType.REMOTE_HIT],
                    frac[AccessType.LOCAL_MISS],
                    frac[AccessType.REMOTE_MISS],
                    frac[AccessType.COMBINED],
                ])
        return format_table(
            headers, rows,
            title="Figure 6: memory access classification (PrefClus)",
        )


def run_figure6(
    benchmarks: Optional[List[str]] = None,
    config: MachineConfig = BASELINE_CONFIG,
    scale: Optional[float] = None,
    runner: Optional[Runner] = None,
    progress=None,
) -> Figure6Result:
    names = list(benchmarks) if benchmarks is not None else list(EVALUATED)
    runner = runner if runner is not None else default_runner()
    records = fetch_records(names, BARS, config, scale, False, runner,
                            progress=progress)
    result = Figure6Result()
    for name in names:
        result.fractions[name] = {}
        for variant in BARS:
            run = records[(name, variant.key)]
            result.fractions[name][BAR_NAMES[variant.key]] = (
                run.access_fractions()
            )
    # Arithmetic mean bar (the paper's AMEAN column).
    mean: Dict[str, Dict[AccessType, float]] = {}
    for variant in BARS:
        bar = BAR_NAMES[variant.key]
        mean[bar] = {
            kind: sum(result.fractions[n][bar][kind] for n in names) / len(names)
            for kind in AccessType
        }
    result.fractions["AMEAN"] = mean
    return result
