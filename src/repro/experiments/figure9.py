"""Figure 9 — execution time with Attraction Buffers.

Same four bars as Figure 7, but the machine carries 16-entry 2-way
Attraction Buffers, and the normalization baseline (free MinComs) also
uses them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.api.runner import Runner, default_runner
from repro.api.spec import DDGT_PREF, EVALUATED, MDC_PREF
from repro.arch.config import BASELINE_CONFIG, MachineConfig
from repro.experiments.common import fetch_records
from repro.experiments.figure7 import Figure7Result, run_figure7


@dataclass
class Figure9Result:
    figure: Figure7Result
    #: epicdec chain-loop detail backing the section 5.4 anecdote
    epicdec_loop: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def render(self) -> str:
        text = self.figure.render().replace(
            "Figure 7:", "Figure 9 (Attraction Buffers):"
        )
        if self.epicdec_loop:
            lines = [text, "", "epicdec chain loop (the 76-op chain, §5.4):"]
            for bar, data in self.epicdec_loop.items():
                lines.append(
                    f"  {bar:12s} local hit {data['local_hit']:.2f}  "
                    f"stall {data['stall']:.0f}  total {data['total']:.0f}"
                )
            text = "\n".join(lines)
        return text


def run_figure9(
    benchmarks: Optional[List[str]] = None,
    config: MachineConfig = BASELINE_CONFIG,
    scale: Optional[float] = None,
    runner: Optional[Runner] = None,
    progress=None,
) -> Figure9Result:
    runner = runner if runner is not None else default_runner()
    figure = run_figure7(
        benchmarks=benchmarks, config=config, scale=scale, attraction=True,
        runner=runner, progress=progress,
    )
    result = Figure9Result(figure=figure)
    names = benchmarks if benchmarks is not None else EVALUATED
    if "epicdec" in names:
        records = fetch_records(
            ["epicdec"], (MDC_PREF, DDGT_PREF), config, scale, True, runner,
            progress=progress,
        )
        for variant, bar in ((MDC_PREF, "MDC"), (DDGT_PREF, "DDGT")):
            run = records[("epicdec", variant.key)]
            chain = next(l for l in run.loops if l.loop.endswith(".chain"))
            result.epicdec_loop[bar] = {
                "local_hit": chain.stats.local_hit_ratio,
                "stall": float(chain.stall_cycles),
                "total": float(chain.total_cycles),
            }
    return result
