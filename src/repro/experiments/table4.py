"""Table 4 — analyzing the DDGT solution.

Two columns per benchmark (PrefClus heuristic):

* **delta comm. ops** — the ratio of communication (copy) operations
  executed under DDGT to those under MDC;
* **speedup on selected loops** — DDGT over MDC, restricted to loops that
  suffer at least a 10% slowdown under MDC relative to the optimistic
  baseline (dash when no loop qualifies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import format_table
from repro.api.runner import Runner, default_runner
from repro.api.spec import DDGT_PREF, EVALUATED, FREE_PREF, MDC_PREF
from repro.arch.config import BASELINE_CONFIG, MachineConfig
from repro.experiments import paperdata
from repro.experiments.common import fetch_records

#: Loops slower than this factor vs the baseline are "selected".
SLOWDOWN_THRESHOLD = 1.10


@dataclass
class Table4Result:
    #: benchmark -> DDGT/MDC dynamic copy ratio
    comm_ratio: Dict[str, float] = field(default_factory=dict)
    #: benchmark -> speedup (None when no loop qualified)
    selected_speedup: Dict[str, Optional[float]] = field(default_factory=dict)
    #: benchmark -> names of the selected loops
    selected_loops: Dict[str, List[str]] = field(default_factory=dict)

    def render(self) -> str:
        headers = ["benchmark", "Δ com. ops", "paper Δ",
                   "speedup sel. loops", "paper speedup"]
        rows = []
        for name, ratio in self.comm_ratio.items():
            paper_ratio, paper_speedup = paperdata.TABLE4.get(
                name, (float("nan"), None)
            )
            speedup = self.selected_speedup.get(name)
            rows.append([
                name,
                ratio,
                paper_ratio,
                "-" if speedup is None else f"{speedup:+.1%}",
                "-" if paper_speedup is None else f"{paper_speedup:+.1%}",
            ])
        return format_table(headers, rows, title="Table 4: the DDGT solution")


def run_table4(
    benchmarks: Optional[List[str]] = None,
    config: MachineConfig = BASELINE_CONFIG,
    scale: Optional[float] = None,
    runner: Optional[Runner] = None,
    progress=None,
) -> Table4Result:
    names = list(benchmarks) if benchmarks is not None else list(EVALUATED)
    runner = runner if runner is not None else default_runner()
    records = fetch_records(
        names, (FREE_PREF, MDC_PREF, DDGT_PREF), config, scale, False, runner,
        progress=progress,
    )
    result = Table4Result()
    for name in names:
        base = records[(name, FREE_PREF.key)]
        mdc = records[(name, MDC_PREF.key)]
        ddgt = records[(name, DDGT_PREF.key)]

        mdc_copies = mdc.dynamic_copies
        ddgt_copies = ddgt.dynamic_copies
        if mdc_copies:
            result.comm_ratio[name] = ddgt_copies / mdc_copies
        else:
            # No communication under MDC at all: report the paper's "1"
            # convention unless DDGT added some.
            result.comm_ratio[name] = 1.0 if not ddgt_copies else float(
                ddgt_copies
            )

        selected: List[str] = []
        mdc_cycles = 0
        ddgt_cycles = 0
        for base_loop, mdc_loop, ddgt_loop in zip(
            base.loops, mdc.loops, ddgt.loops
        ):
            if (
                mdc_loop.total_cycles
                >= SLOWDOWN_THRESHOLD * base_loop.total_cycles
            ):
                selected.append(mdc_loop.loop)
                mdc_cycles += mdc_loop.total_cycles
                ddgt_cycles += ddgt_loop.total_cycles
        result.selected_loops[name] = selected
        if selected and ddgt_cycles:
            result.selected_speedup[name] = mdc_cycles / ddgt_cycles - 1.0
        else:
            result.selected_speedup[name] = None
    return result
