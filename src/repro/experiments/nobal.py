"""Section 4.2, "other architectural configurations".

Two unbalanced bus configurations are evaluated:

* **NOBAL+MEM** — four 2-cycle memory buses, two 4-cycle register buses:
  register communication becomes the scarce resource, so MDC (which adds
  none) should always beat DDGT (whose replicated stores multiply copies);
* **NOBAL+REG** — two 4-cycle memory buses, four 2-cycle register buses:
  remote accesses get more expensive, so DDGT(PrefClus) — which makes
  accesses local — should win the chain-heavy benchmarks (the paper
  reports 17%/20%/9%/8% speedups over the best MDC for epicdec, pgpdec,
  pgpenc and rasta).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis.report import format_table
from repro.api.runner import Runner, default_runner
from repro.api.spec import DDGT_PREF, EVALUATED, MDC_MIN, MDC_PREF, Plan
from repro.arch.config import NOBAL_MEM_CONFIG, NOBAL_REG_CONFIG
from repro.experiments import paperdata


@dataclass
class NobalResult:
    #: config name -> benchmark -> variant key -> total cycles
    cycles: Dict[str, Dict[str, Dict[str, int]]] = field(default_factory=dict)

    def ddgt_speedup_over_best_mdc(self, config: str, benchmark: str) -> float:
        """DDGT(PrefClus) speedup over the best MDC variant (positive =
        DDGT faster)."""
        bench = self.cycles[config][benchmark]
        best_mdc = min(bench[MDC_PREF.key], bench[MDC_MIN.key])
        return best_mdc / bench[DDGT_PREF.key] - 1.0

    def render(self) -> str:
        headers = ["config", "benchmark", "MDC(Pref)", "MDC(Min)",
                   "DDGT(Pref)", "DDGT speedup vs best MDC", "paper"]
        rows = []
        for config, benches in self.cycles.items():
            for name, per_variant in benches.items():
                speedup = self.ddgt_speedup_over_best_mdc(config, name)
                paper = (
                    f"{paperdata.NOBAL_REG_SPEEDUPS[name]:+.0%}"
                    if config == "nobal+reg"
                    and name in paperdata.NOBAL_REG_SPEEDUPS
                    else "-"
                )
                rows.append([
                    config, name,
                    per_variant[MDC_PREF.key],
                    per_variant[MDC_MIN.key],
                    per_variant[DDGT_PREF.key],
                    f"{speedup:+.1%}",
                    paper,
                ])
        return format_table(
            headers, rows, title="Section 4.2: unbalanced bus configurations"
        )


def run_nobal(
    benchmarks: Optional[List[str]] = None,
    scale: Optional[float] = None,
    runner: Optional[Runner] = None,
) -> NobalResult:
    names = list(benchmarks) if benchmarks is not None else list(EVALUATED)
    runner = runner if runner is not None else default_runner()
    variants = (MDC_PREF, MDC_MIN, DDGT_PREF)
    plan = Plan.grid(
        benchmarks=names,
        variants=variants,
        machines=(NOBAL_MEM_CONFIG.name, NOBAL_REG_CONFIG.name),
        scale=scale,
    )
    records = {
        (r.machine, r.benchmark, r.variant): r for r in runner.run(plan)
    }
    result = NobalResult()
    for config in (NOBAL_MEM_CONFIG, NOBAL_REG_CONFIG):
        result.cycles[config.name] = {}
        for name in names:
            per_variant: Dict[str, int] = {}
            for variant in variants:
                run = records[(config.name, name, variant.key)]
                per_variant[variant.key] = run.total_cycles
            result.cycles[config.name][name] = per_variant
    return result
