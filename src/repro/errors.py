"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
accidentally swallowing programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """A data-dependence graph is malformed or an operation on it is invalid."""


class SchedulingError(ReproError):
    """The modulo scheduler could not produce a legal schedule."""


class TransformError(ReproError):
    """A DDG transformation (MDC / DDGT / unrolling) failed or is illegal."""


class SimulationError(ReproError):
    """The cycle-level simulator reached an inconsistent state."""


class CheckError(ReproError):
    """A checker found a real problem: the protocol model and the
    simulator disagreed, or a compiled schedule failed verification."""


class ConfigError(ReproError):
    """A machine or workload configuration is invalid."""


class WorkloadError(ReproError):
    """A workload/benchmark descriptor is invalid or unknown."""


class ExecutionError(ReproError):
    """A spec failed in a worker process and its original exception type
    could not be reconstructed on the parent side."""
