"""Canonical content hashing.

The single digest discipline behind every content-addressed key in the
package: spec cache keys (:mod:`repro.api.spec`), machine fingerprints
(:meth:`repro.arch.config.MachineConfig.fingerprint`) and compilation
stage/artifact keys (:mod:`repro.sched.stages`).  Payloads are reduced to
canonical JSON (dataclasses to field dicts, enums to values, dict keys
sorted) and hashed with SHA-256, so two processes — or two interpreter
versions — always agree on the key for the same work.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json

#: Hex digits kept from the SHA-256 digest; 64 bits of key space is ample
#: for cache keys while keeping file names and logs readable.
DIGEST_LENGTH = 16


def jsonable(obj):
    """Convert nested dataclasses/enums/dicts to canonical JSON values."""
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            f.name: jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
    if isinstance(obj, enum.Enum):
        return obj.value
    if isinstance(obj, dict):
        return {
            str(jsonable(k)): jsonable(v)
            for k, v in sorted(obj.items(), key=lambda kv: str(kv[0]))
        }
    if isinstance(obj, (list, tuple)):
        return [jsonable(v) for v in obj]
    return obj


def digest(payload) -> str:
    """Stable short hex digest of an arbitrary JSON-able payload."""
    canonical = json.dumps(jsonable(payload), sort_keys=True,
                           separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:DIGEST_LENGTH]
