"""`repro.bench` — seeded, config-driven benchmark grids with a
persistent cross-PR perf trajectory (``BENCH_*.json`` + CSV).

See ``docs/observability.md`` and the ``repro bench run/compare`` CLI
verbs.
"""

from .compare import Comparison, DEFAULT_THRESHOLD, compare
from .grid import (
    BENCH_FILE_PREFIX,
    BENCH_SCHEMA,
    GridConfig,
    GridSeries,
    bench_paths,
    load_trajectory,
    render,
    run_grid,
    run_series,
    to_csv,
    write_trajectory,
)

__all__ = [
    "BENCH_FILE_PREFIX",
    "BENCH_SCHEMA",
    "Comparison",
    "DEFAULT_THRESHOLD",
    "GridConfig",
    "GridSeries",
    "bench_paths",
    "compare",
    "load_trajectory",
    "render",
    "run_grid",
    "run_series",
    "to_csv",
    "write_trajectory",
]
