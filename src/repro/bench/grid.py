"""Config-driven benchmark grids with a persistent perf trajectory.

A *grid config* (JSON; see ``benchmarks/grids/default.json`` and
``docs/observability.md``) names a set of benchmark *series*.  Each
series describes a :class:`~repro.api.spec.Plan` — catalog benchmarks
or sampled synthetic scenarios, crossed with variants and machines —
that :func:`run_grid` executes through the ordinary ``Plan``/``Runner``
path against **fresh in-memory stores per repeat**, so every repeat
measures cold end-to-end cost (compile + simulate) rather than cache
luck.  The median wall time over ``repeat`` repeats is the series'
tracked number.

The output is one :data:`BENCH_FILE_PREFIX`\\ ``<grid>.json`` trajectory
file plus a flat CSV (anomalib-style machine-readable emission), meant
to be committed at the repo root each PR so the perf history lives in
version control.  ``repro bench compare`` (:mod:`repro.bench.compare`)
diffs two trajectory files and fails on regression.

Series results carry two kinds of fields:

* **perf fields** (``wall_seconds``, ``cycles_per_second``,
  ``frontend_seconds``) — machine-dependent; compared with a relative
  threshold;
* **deterministic fields** (``specs``, ``total_cycles``,
  ``issued_ops``, ``records_digest``) — seeded and exactly
  reproducible anywhere; any change means the *work* changed, which
  compare reports as a note rather than a failure (a legitimate
  simulator change moves them on purpose).
"""

from __future__ import annotations

import csv
import io
import json
import platform
import statistics
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.analysis.report import format_table
from repro.api.artifacts import MemoryArtifactStore
from repro.api.records import RunRecord
from repro.api.runner import Runner
from repro.api.spec import Plan
from repro.api.store import MemoryStore
from repro.errors import WorkloadError
from repro.hashing import digest
from repro.obs import metrics, trace
from repro.sched.stages import FRONTEND_STAGES
from repro.sim.executor import ENGINES

#: Trajectory files are ``BENCH_<grid name>.json`` at the output root.
BENCH_FILE_PREFIX = "BENCH_"

#: Trajectory file format version.
BENCH_SCHEMA = 1

#: Flat-file column order (also the CSV header).
CSV_COLUMNS = (
    "series", "wall_seconds", "cycles_per_second", "frontend_seconds",
    "specs", "total_cycles", "issued_ops", "records_digest",
)

#: Relative spread fields live under these keys in a series result.
PERF_FIELDS = ("wall_seconds", "cycles_per_second", "frontend_seconds")
DETERMINISTIC_FIELDS = ("specs", "total_cycles", "issued_ops",
                        "records_digest")


@dataclass(frozen=True)
class GridSeries:
    """One tracked series of a grid config.

    ``engine`` selects the simulation engine the series measures
    (``"events"``, ``"cycles"``, or ``"batch"``); engines are
    observation-equivalent, so two series differing only in ``engine``
    must produce the same ``records_digest`` — which makes a paired
    events/batch series a persistent, committed equivalence check.
    """

    key: str
    benchmarks: Sequence[str]
    variants: Sequence[str]
    machines: Sequence[str]
    scale: float
    loop: Optional[str] = None
    engine: str = "events"
    batch_size: Optional[int] = None
    model: str = "snooping"
    #: Surrogate-guided series: ``{"budget": N, "explore_frac": F,
    #: "seed": S, "train": {"seed": …, "count": …}}``.  Each repeat pays
    #: the *whole* guided pipeline cold — train-sweep simulation, model
    #: fit, frontier selection, frontier simulation — so the tracked
    #: wall time is the honest end-to-end cost of guidance.
    surrogate: Optional[Dict[str, Any]] = None

    def plan(self) -> Plan:
        return Plan.grid(
            benchmarks=list(self.benchmarks),
            variants=list(self.variants),
            machines=list(self.machines),
            scale=self.scale,
            loops=self.loop,
            models=self.model,
        )


@dataclass
class GridConfig:
    """A parsed grid config file."""

    name: str
    repeat: int
    series: List[GridSeries] = field(default_factory=list)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "GridConfig":
        path = Path(path)
        try:
            data = json.loads(path.read_text())
        except OSError as exc:
            raise WorkloadError(f"cannot read grid config {path}: {exc}")
        except ValueError as exc:
            raise WorkloadError(f"grid config {path} is not JSON: {exc}")
        return cls.from_dict(data)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "GridConfig":
        try:
            name = str(data["name"])
            raw_series = data["series"]
        except (KeyError, TypeError):
            raise WorkloadError(
                "grid config needs at least 'name' and 'series'"
            )
        if not raw_series:
            raise WorkloadError("grid config has no series")
        default_scale = float(data.get("scale", 0.05))
        series: List[GridSeries] = []
        for entry in raw_series:
            key = str(entry["key"])
            benchmarks = entry.get("benchmarks")
            sampler = entry.get("scenarios")
            if benchmarks is None and sampler is None:
                raise WorkloadError(
                    f"series {key!r} names neither 'benchmarks' nor a "
                    "'scenarios' sampler"
                )
            if benchmarks is None:
                # Seeded synthetic scenarios: resolved here, at config
                # parse time, so the plan (and the records digest) is a
                # pure function of the config.
                from repro.scenarios.generator import sample_scenarios
                benchmarks = [
                    p.name for p in sample_scenarios(
                        int(sampler.get("seed", 0)),
                        int(sampler.get("count", 2)),
                        sampler.get("families"),
                    )
                ]
            engine = str(entry.get("engine", "events"))
            if engine not in ENGINES:
                raise WorkloadError(
                    f"series {key!r} names unknown engine {engine!r}; "
                    f"expected one of {ENGINES}"
                )
            batch_size = entry.get("batch_size")
            if batch_size is not None:
                batch_size = int(batch_size)
                if batch_size < 1:
                    raise WorkloadError(
                        f"series {key!r}: batch_size must be >= 1, "
                        f"got {batch_size}"
                    )
            model = str(entry.get("model", "snooping"))
            from repro.sim.models import model_names
            if model not in model_names():
                raise WorkloadError(
                    f"series {key!r} names unknown memory model "
                    f"{model!r}; expected one of {model_names()}"
                )
            surrogate = entry.get("surrogate")
            if surrogate is not None:
                if not isinstance(surrogate, dict) or "budget" not in surrogate:
                    raise WorkloadError(
                        f"series {key!r}: 'surrogate' must be an object "
                        "with at least a 'budget'"
                    )
                if int(surrogate["budget"]) < 1:
                    raise WorkloadError(
                        f"series {key!r}: surrogate budget must be >= 1"
                    )
            series.append(GridSeries(
                key=key,
                benchmarks=[str(b) for b in benchmarks],
                variants=[str(v) for v in entry.get(
                    "variants", ["mdc/prefclus", "mdc/mincoms"])],
                machines=[str(m) for m in entry.get(
                    "machines", ["baseline"])],
                scale=float(entry.get("scale", default_scale)),
                loop=entry.get("loop"),
                engine=engine,
                batch_size=batch_size,
                model=model,
                surrogate=surrogate,
            ))
        seen: Dict[str, int] = {}
        for s in series:
            seen[s.key] = seen.get(s.key, 0) + 1
        dupes = sorted(k for k, n in seen.items() if n > 1)
        if dupes:
            raise WorkloadError(f"duplicate series keys: {dupes}")
        return cls(
            name=name,
            repeat=max(1, int(data.get("repeat", 3))),
            series=series,
        )


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------
def _records_digest(records: Sequence[RunRecord]) -> str:
    return digest([r.to_dict() for r in records])


def _frontend_seconds_now() -> float:
    reg = metrics.registry()
    total = 0.0
    for labels, value in reg.counter_items("stages.seconds"):
        if labels.get("stage") in FRONTEND_STAGES:
            total += value
    return total


def run_series(series: GridSeries, repeat: int,
               engine: Optional[str] = None) -> Dict[str, Any]:
    """Execute one series ``repeat`` times cold; median-walled result.

    ``engine`` (when given) overrides the series' own engine — the
    ``repro bench run --engine`` escape hatch for ad-hoc comparisons.
    """
    if series.surrogate is not None:
        return _run_series_surrogate(series, repeat, engine=engine)
    plan = series.plan()
    walls: List[float] = []
    records: List[RunRecord] = []
    frontend = 0.0
    for _ in range(repeat):
        # Fresh stores per repeat: no result-cache or artifact-cache
        # carry-over, so every repeat pays the full compile+simulate
        # cost the series claims to measure.
        runner = Runner(store=MemoryStore(),
                        artifacts=MemoryArtifactStore(),
                        engine=engine or series.engine,
                        batch_size=series.batch_size)
        frontend_before = _frontend_seconds_now()
        start = time.perf_counter()
        with trace.span(f"bench:{series.key}", cat="bench"):
            records = runner.run(plan)
        walls.append(time.perf_counter() - start)
        frontend = _frontend_seconds_now() - frontend_before
    wall = statistics.median(walls)
    total_cycles = 0
    issued_ops = 0
    for record in records:
        stats = record.merged_stats()
        total_cycles += stats.total_cycles
        issued_ops += stats.issued_ops
    return {
        "wall_seconds": wall,
        "wall_seconds_all": walls,
        "cycles_per_second": (total_cycles / wall) if wall else 0.0,
        "frontend_seconds": frontend,
        "specs": len(plan),
        "total_cycles": total_cycles,
        "issued_ops": issued_ops,
        "records_digest": _records_digest(records),
    }


def _run_series_surrogate(series: GridSeries, repeat: int,
                          engine: Optional[str] = None) -> Dict[str, Any]:
    """Execute a surrogate-guided series ``repeat`` times, cold.

    Each repeat: simulate a small seeded *training* space, fit the
    surrogate on those records, pick the ``budget`` frontier of the
    series' candidate plan, and simulate only that.  The tracked wall
    time covers all four steps, so the series' speedup claim vs its
    exhaustive twin is end-to-end honest.  Deterministic fields come
    from the frontier records; the selection itself is deterministic
    (seeded model, seeded exploration), so ``records_digest`` is stable.
    """
    from repro.scenarios.generator import sample_scenarios
    from repro.surrogate.guide import select_frontier
    from repro.surrogate.train import train_from_records

    cfg = series.surrogate or {}
    budget = int(cfg["budget"])
    explore_frac = float(cfg.get("explore_frac", 0.1))
    guide_seed = int(cfg.get("seed", 0))
    train_cfg = cfg.get("train", {})
    train_benchmarks = [
        p.name for p in sample_scenarios(
            int(train_cfg.get("seed", 1)),
            int(train_cfg.get("count", 6)),
            train_cfg.get("families"),
        )
    ]
    train_plan = Plan.grid(
        benchmarks=train_benchmarks,
        variants=list(series.variants),
        machines=list(series.machines),
        scale=series.scale,
        models=series.model,
    )
    plan = series.plan()

    walls: List[float] = []
    records: List[RunRecord] = []
    frontend = 0.0
    chosen = 0
    for _ in range(repeat):
        runner = Runner(store=MemoryStore(),
                        artifacts=MemoryArtifactStore(),
                        engine=engine or series.engine,
                        batch_size=series.batch_size)
        frontend_before = _frontend_seconds_now()
        start = time.perf_counter()
        with trace.span(f"bench:{series.key}", cat="bench"):
            train_records = runner.run(train_plan)
            model = train_from_records(train_records)
            selection = select_frontier(
                list(plan.specs), model, budget,
                explore_frac=explore_frac, seed=guide_seed,
            )
            records = runner.run(Plan(tuple(selection.chosen)))
        walls.append(time.perf_counter() - start)
        frontend = _frontend_seconds_now() - frontend_before
        chosen = len(selection.chosen)
    wall = statistics.median(walls)
    total_cycles = 0
    issued_ops = 0
    for record in records:
        stats = record.merged_stats()
        total_cycles += stats.total_cycles
        issued_ops += stats.issued_ops
    return {
        "wall_seconds": wall,
        "wall_seconds_all": walls,
        "cycles_per_second": (total_cycles / wall) if wall else 0.0,
        "frontend_seconds": frontend,
        "specs": chosen,
        "total_cycles": total_cycles,
        "issued_ops": issued_ops,
        "records_digest": _records_digest(records),
        "candidate_specs": len(plan),
        "skipped_specs": len(plan) - chosen,
        "train_specs": len(train_plan),
    }


def run_grid(config: GridConfig,
             repeat: Optional[int] = None,
             progress=None,
             engine: Optional[str] = None) -> Dict[str, Any]:
    """Run every series of a grid; returns the trajectory payload.

    ``engine`` forces every series onto one simulation engine (the
    per-series ``engine`` field is the committed default).
    """
    repeat = config.repeat if repeat is None else max(1, repeat)
    if engine is not None and engine not in ENGINES:
        raise WorkloadError(
            f"unknown engine {engine!r}; expected one of {ENGINES}"
        )
    results: Dict[str, Any] = {}
    for pos, series in enumerate(config.series):
        if progress is not None:
            progress(pos, len(config.series), series.key)
        results[series.key] = run_series(series, repeat, engine=engine)
        metrics.inc("bench.series_runs", grid=config.name)
    from repro import __version__
    return {
        "schema": BENCH_SCHEMA,
        "grid": config.name,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "repeat": repeat,
        "env": {
            "python": platform.python_version(),
            "platform": platform.platform(),
            "repro_version": __version__,
        },
        "series": results,
    }


# ----------------------------------------------------------------------
# Emission
# ----------------------------------------------------------------------
def bench_paths(name: str,
                out_dir: Union[str, Path] = ".") -> Dict[str, Path]:
    out = Path(out_dir)
    stem = f"{BENCH_FILE_PREFIX}{name}"
    return {"json": out / f"{stem}.json", "csv": out / f"{stem}.csv"}


def to_csv(trajectory: Dict[str, Any]) -> str:
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for key in sorted(trajectory.get("series", {})):
        cell = trajectory["series"][key]
        writer.writerow([key] + [
            (f"{cell[column]:.6f}"
             if isinstance(cell[column], float) else cell[column])
            for column in CSV_COLUMNS[1:]
        ])
    return out.getvalue()


def write_trajectory(trajectory: Dict[str, Any],
                     out_dir: Union[str, Path] = ".") -> Dict[str, Path]:
    """Write ``BENCH_<grid>.json`` + CSV; returns the paths."""
    paths = bench_paths(str(trajectory["grid"]), out_dir)
    paths["json"].write_text(
        json.dumps(trajectory, indent=2, sort_keys=True) + "\n"
    )
    paths["csv"].write_text(to_csv(trajectory))
    return paths


def load_trajectory(path: Union[str, Path]) -> Dict[str, Any]:
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise WorkloadError(f"cannot read trajectory {path}: {exc}")
    except ValueError as exc:
        raise WorkloadError(f"trajectory {path} is not JSON: {exc}")
    if not isinstance(data, dict) or "series" not in data:
        raise WorkloadError(f"{path} is not a BENCH_*.json trajectory")
    return data


def render(trajectory: Dict[str, Any]) -> str:
    rows = []
    for key in sorted(trajectory.get("series", {})):
        cell = trajectory["series"][key]
        rows.append([
            key, cell["wall_seconds"], cell["cycles_per_second"],
            cell["specs"], cell["total_cycles"],
            str(cell["records_digest"])[:12],
        ])
    return format_table(
        ["series", "wall_s", "cycles/s", "specs", "cycles", "digest"],
        rows,
        title=(f"bench grid {trajectory.get('grid')} "
               f"(repeat={trajectory.get('repeat')}, "
               f"{trajectory.get('created')})"),
    )
