"""Trajectory comparison: fail the build when a tracked series regresses.

:func:`compare` diffs two ``BENCH_*.json`` trajectories (see
:mod:`repro.bench.grid`):

* **perf fields** regress when they move past a relative threshold in
  the bad direction (``wall_seconds``/``frontend_seconds`` up,
  ``cycles_per_second`` down).  The default threshold (15%) absorbs
  normal machine noise while catching real slowdowns;
* a series present in the previous trajectory but **missing** from the
  current one is a regression (coverage must never silently shrink);
  new series are a note;
* **deterministic fields** (spec counts, simulated cycles, record
  digests) differing is a *note*, not a failure: they change exactly
  when the simulated work changes, which a PR may do on purpose — but
  it should be visible in the compare output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from repro.bench.grid import DETERMINISTIC_FIELDS

#: field name -> +1 when bigger-is-better, -1 when smaller-is-better.
PERF_DIRECTIONS = {
    "wall_seconds": -1,
    "frontend_seconds": -1,
    "cycles_per_second": +1,
}

#: Default relative regression threshold.
DEFAULT_THRESHOLD = 0.15

#: Perf values below this are treated as zero: relative comparison of
#: sub-millisecond timings is pure noise.
_EPSILON = 1e-3


@dataclass
class Comparison:
    """Outcome of one trajectory diff."""

    regressions: List[str] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    improvements: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.regressions

    def render(self) -> str:
        lines: List[str] = []
        if self.regressions:
            lines.append(
                f"REGRESSIONS ({len(self.regressions)}):"
            )
            lines.extend(f"  {msg}" for msg in self.regressions)
        else:
            lines.append("no regressions")
        if self.improvements:
            lines.append(f"improvements ({len(self.improvements)}):")
            lines.extend(f"  {msg}" for msg in self.improvements)
        if self.notes:
            lines.append(f"notes ({len(self.notes)}):")
            lines.extend(f"  {msg}" for msg in self.notes)
        return "\n".join(lines)


def compare(current: Dict[str, Any], previous: Dict[str, Any],
            threshold: float = DEFAULT_THRESHOLD) -> Comparison:
    """Diff ``current`` against ``previous``; see the module docstring."""
    result = Comparison()
    cur_series: Dict[str, Dict] = dict(current.get("series") or {})
    prev_series: Dict[str, Dict] = dict(previous.get("series") or {})
    for key in sorted(prev_series):
        if key not in cur_series:
            result.regressions.append(
                f"{key}: series disappeared from the current trajectory"
            )
            continue
        cur, prev = cur_series[key], prev_series[key]
        for name, direction in PERF_DIRECTIONS.items():
            if name not in cur or name not in prev:
                continue
            cur_value = float(cur[name])
            prev_value = float(prev[name])
            if prev_value < _EPSILON or cur_value < _EPSILON:
                continue
            change = cur_value / prev_value - 1.0
            text = (
                f"{key}.{name}: {prev_value:.4f} -> {cur_value:.4f} "
                f"({change:+.1%})"
            )
            if change * direction < 0 and abs(change) > threshold:
                result.regressions.append(text)
            elif change * direction > 0 and abs(change) > threshold:
                result.improvements.append(text)
        for name in DETERMINISTIC_FIELDS:
            if name in cur and name in prev and cur[name] != prev[name]:
                result.notes.append(
                    f"{key}.{name}: {prev[name]} -> {cur[name]} "
                    "(workload changed; expected only when the PR "
                    "changes what is simulated)"
                )
    for key in sorted(cur_series):
        if key not in prev_series:
            result.notes.append(f"{key}: new series (no baseline)")
    return result
