"""Machine description for the word-interleaved cache clustered VLIW processor.

This subpackage holds the static description of the hardware evaluated in
the paper (Table 2), plus the two unbalanced bus configurations from
section 4.2 (NOBAL+MEM and NOBAL+REG).
"""

from repro.arch.config import (
    BASELINE_CONFIG,
    NOBAL_MEM_CONFIG,
    NOBAL_REG_CONFIG,
    BusConfig,
    CacheConfig,
    FuKind,
    MachineConfig,
    MemoryLatencies,
    NextLevelConfig,
    named_config,
)

__all__ = [
    "BASELINE_CONFIG",
    "NOBAL_MEM_CONFIG",
    "NOBAL_REG_CONFIG",
    "BusConfig",
    "CacheConfig",
    "FuKind",
    "MachineConfig",
    "MemoryLatencies",
    "NextLevelConfig",
    "named_config",
]
