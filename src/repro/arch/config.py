"""Static machine description (paper Table 2 and section 4.2 variants).

The machine is a clustered VLIW processor whose L1 data cache is
word-interleaved across clusters.  Each cluster holds a register file, one
integer unit, one floating-point unit and one memory unit, plus a local
cache module.  Clusters exchange register values over register-to-register
buses and memory traffic over memory buses; both bus kinds run at half the
core frequency in the balanced configuration, which we model as a 2-cycle
occupancy/latency per transfer.

Three named configurations are provided:

* ``BASELINE_CONFIG`` — Table 2: 4 clusters, 4 memory buses and 4 register
  buses at 1/2 core frequency (2-cycle latency), 8KB total cache in four
  2KB modules, 32-byte blocks, 2-way associative, 10-cycle always-hit next
  level with 4 ports.
* ``NOBAL_MEM_CONFIG`` — section 4.2: four 2-cycle memory buses but only
  two 4-cycle register buses.
* ``NOBAL_REG_CONFIG`` — section 4.2: two 4-cycle memory buses and four
  2-cycle register buses.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.errors import ConfigError

BYTES_PER_WORD = 4
"""Architectural word size in bytes (the interleaving unit is a word)."""


class FuKind(enum.Enum):
    """Functional-unit classes available in each cluster (Table 2)."""

    INT = "int"
    FP = "fp"
    MEM = "mem"


@dataclass(frozen=True)
class BusConfig:
    """A set of identical inter-cluster buses.

    ``latency`` is the end-to-end transfer latency in core cycles and also
    the number of consecutive cycles a transfer occupies the bus (the buses
    run slower than the core, so a transfer holds the bus for the whole
    latency window).
    """

    count: int
    latency: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ConfigError(f"bus count must be >= 1, got {self.count}")
        if self.latency < 1:
            raise ConfigError(f"bus latency must be >= 1, got {self.latency}")


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one per-cluster cache module."""

    module_bytes: int = 2 * 1024
    block_bytes: int = 32
    associativity: int = 2
    hit_latency: int = 1

    def __post_init__(self) -> None:
        if self.module_bytes % (self.block_bytes * self.associativity):
            raise ConfigError(
                "cache module size must be a multiple of block_bytes * ways"
            )
        if self.block_bytes % BYTES_PER_WORD:
            raise ConfigError("cache block size must be a whole number of words")

    @property
    def num_sets(self) -> int:
        """Number of sets in one cache module.

        The module stores *subblocks* (the slice of each block mapped to its
        cluster), but the number of sets is determined by how many blocks
        the module can name, which is what the paper's "2KB module, 32-byte
        blocks, 2-way" geometry describes.
        """
        return self.module_bytes // (self.block_bytes * self.associativity)


@dataclass(frozen=True)
class NextLevelConfig:
    """The next memory level: always hits, fixed total latency, N ports."""

    ports: int = 4
    latency: int = 10

    def __post_init__(self) -> None:
        if self.ports < 1:
            raise ConfigError("next level needs at least one port")
        if self.latency < 1:
            raise ConfigError("next-level latency must be >= 1")


@dataclass(frozen=True)
class AttractionBufferConfig:
    """Per-cluster Attraction Buffer (section 5): small 2-way buffer of
    remote subblocks, flushed at loop boundaries."""

    entries: int = 16
    associativity: int = 2

    def __post_init__(self) -> None:
        if self.entries < 1 or self.entries % self.associativity:
            raise ConfigError("AB entries must be a positive multiple of ways")

    @property
    def num_sets(self) -> int:
        return self.entries // self.associativity


@dataclass(frozen=True)
class MemoryLatencies:
    """The four access latencies a memory instruction can be scheduled with.

    These are the *assumed* latencies the scheduler may pick from (paper
    section 2.2: memory ops are scheduled with the largest latency that does
    not hurt compute time).  They are derived from the machine parameters:

    * local hit   = cache hit latency
    * remote hit  = request bus + remote hit + response bus
    * local miss  = cache probe + next-level round trip
    * remote miss = request bus + remote probe + next level + response bus
    """

    local_hit: int
    remote_hit: int
    local_miss: int
    remote_miss: int

    def ladder(self) -> Tuple[int, int, int, int]:
        """Latencies in increasing order of pessimism."""
        return (self.local_hit, self.remote_hit, self.local_miss, self.remote_miss)


#: Fixed latencies of non-memory operations, in core cycles.
OP_LATENCIES: Dict[str, int] = {
    "ialu": 1,
    "imul": 2,
    "falu": 2,
    "fmul": 4,
    "fdiv": 8,
    "store": 1,
}


@dataclass(frozen=True)
class MachineConfig:
    """Complete description of one machine configuration."""

    name: str = "baseline"
    num_clusters: int = 4
    interleave_bytes: int = BYTES_PER_WORD
    fu_per_cluster: Dict[FuKind, int] = field(
        default_factory=lambda: {FuKind.INT: 1, FuKind.FP: 1, FuKind.MEM: 1}
    )
    cache: CacheConfig = field(default_factory=CacheConfig)
    memory_buses: BusConfig = field(default_factory=lambda: BusConfig(4, 2))
    register_buses: BusConfig = field(default_factory=lambda: BusConfig(4, 2))
    next_level: NextLevelConfig = field(default_factory=NextLevelConfig)
    attraction_buffer: AttractionBufferConfig | None = None

    def __post_init__(self) -> None:
        if self.num_clusters < 1:
            raise ConfigError("need at least one cluster")
        if self.interleave_bytes < 1:
            raise ConfigError("interleave factor must be positive")
        if self.cache.block_bytes % (self.interleave_bytes * self.num_clusters):
            raise ConfigError(
                "cache block must hold a whole number of interleave units "
                "per cluster (block_bytes %% (interleave * clusters) == 0)"
            )
        for kind in FuKind:
            if self.fu_per_cluster.get(kind, 0) < 0:
                raise ConfigError(f"negative FU count for {kind}")

    def fingerprint(self) -> str:
        """Stable content hash of every field of this configuration.

        Distinguishes configurations that share a ``name`` but differ
        structurally; the building block of spec cache keys
        (:mod:`repro.api.spec`) and compilation stage keys
        (:mod:`repro.sched.stages`).
        """
        from repro.hashing import digest

        return digest(self)

    # ------------------------------------------------------------------
    # Derived geometry
    # ------------------------------------------------------------------
    @property
    def subblock_bytes(self) -> int:
        """Bytes of each cache block held by one cluster (the *subblock*)."""
        return self.cache.block_bytes // self.num_clusters

    @property
    def clusters(self) -> range:
        return range(self.num_clusters)

    def with_interleave(self, interleave_bytes: int) -> "MachineConfig":
        """A copy of this config with a different interleaving factor.

        The paper uses a 4-byte factor for word-dominated benchmarks and a
        2-byte factor for halfword-dominated ones (Table 1 discussion);
        changing the factor only changes the cache indexing function.
        """
        return replace(self, interleave_bytes=interleave_bytes)

    def with_attraction_buffers(
        self, entries: int = 16, associativity: int = 2
    ) -> "MachineConfig":
        """A copy of this config with Attraction Buffers enabled (section 5)."""
        return replace(
            self,
            name=f"{self.name}+ab",
            attraction_buffer=AttractionBufferConfig(entries, associativity),
        )

    # ------------------------------------------------------------------
    # Latencies
    # ------------------------------------------------------------------
    def memory_latencies(self) -> MemoryLatencies:
        """The four-step latency ladder implied by the bus/cache/next-level
        parameters (see :class:`MemoryLatencies`)."""
        hit = self.cache.hit_latency
        bus = self.memory_buses.latency
        nl = self.next_level.latency
        return MemoryLatencies(
            local_hit=hit,
            remote_hit=bus + hit + bus,
            local_miss=hit + nl,
            remote_miss=bus + hit + nl + bus,
        )

    def op_latency(self, mnemonic: str) -> int:
        """Fixed issue-to-result latency of a non-load operation."""
        try:
            return OP_LATENCIES[mnemonic]
        except KeyError:
            raise ConfigError(f"unknown operation mnemonic: {mnemonic!r}") from None

    # ------------------------------------------------------------------
    # Address mapping
    # ------------------------------------------------------------------
    def home_cluster(self, address: int) -> int:
        """The cluster whose cache module owns ``address``.

        Word-interleaved mapping: consecutive ``interleave_bytes`` units go
        to consecutive clusters (paper section 2.1).
        """
        return (address // self.interleave_bytes) % self.num_clusters

    def describe(self) -> str:
        """Human-readable one-block summary (used by the Table 2 bench)."""
        ab = (
            f"{self.attraction_buffer.entries}-entry "
            f"{self.attraction_buffer.associativity}-way"
            if self.attraction_buffer
            else "disabled"
        )
        lat = self.memory_latencies()
        lines = [
            f"configuration          : {self.name}",
            f"clusters               : {self.num_clusters}",
            "functional units       : "
            + " + ".join(
                f"{count} {kind.value}/cluster"
                for kind, count in sorted(
                    self.fu_per_cluster.items(), key=lambda kv: kv[0].value
                )
            ),
            f"cache                  : {self.num_clusters} x "
            f"{self.cache.module_bytes // 1024}KB modules, "
            f"{self.cache.block_bytes}B blocks, "
            f"{self.cache.associativity}-way, "
            f"{self.cache.hit_latency}-cycle hit",
            f"interleave factor      : {self.interleave_bytes} bytes",
            f"memory buses           : {self.memory_buses.count} x "
            f"{self.memory_buses.latency}-cycle",
            f"register buses         : {self.register_buses.count} x "
            f"{self.register_buses.latency}-cycle",
            f"next level             : {self.next_level.ports} ports, "
            f"{self.next_level.latency}-cycle, always hit",
            f"attraction buffers     : {ab}",
            f"latency ladder         : local hit {lat.local_hit} / remote hit "
            f"{lat.remote_hit} / local miss {lat.local_miss} / remote miss "
            f"{lat.remote_miss}",
        ]
        return "\n".join(lines)


BASELINE_CONFIG = MachineConfig(name="baseline")

NOBAL_MEM_CONFIG = MachineConfig(
    name="nobal+mem",
    memory_buses=BusConfig(4, 2),
    register_buses=BusConfig(2, 4),
)

NOBAL_REG_CONFIG = MachineConfig(
    name="nobal+reg",
    memory_buses=BusConfig(2, 4),
    register_buses=BusConfig(4, 2),
)

_NAMED = {
    "baseline": BASELINE_CONFIG,
    "nobal+mem": NOBAL_MEM_CONFIG,
    "nobal+reg": NOBAL_REG_CONFIG,
}

#: Prefix of self-describing generated configuration names (see
#: :func:`encode_config_name`).  ``named_config`` decodes such names on the
#: fly, so machine-space sweeps can ship configurations across process
#: boundaries (RunSpec fields, cache keys, CLI arguments) as plain strings.
GENERATED_PREFIX = "gen-"

_GENERATED_NAME_RE = re.compile(
    r"^gen-c(?P<clusters>\d+)"
    r"-mb(?P<mb_count>\d+)x(?P<mb_lat>\d+)"
    r"-rb(?P<rb_count>\d+)x(?P<rb_lat>\d+)"
    r"-cm(?P<module>\d+)b(?P<block>\d+)a(?P<ways>\d+)"
    r"-nl(?P<nl_lat>\d+)p(?P<nl_ports>\d+)$"
)


def encode_config_name(config: MachineConfig) -> str:
    """The self-describing ``gen-...`` name of a machine configuration.

    The name captures every swept dimension (clusters, both bus sets, the
    cache-module geometry, the next level) and round-trips through
    :func:`parse_config_name`.  Two kinds of field are deliberately not
    encoded: the interleave factor (benchmarks impose their own via
    :meth:`~repro.workloads.catalog.Benchmark.machine`) and per-run
    toggles with their own spec surface (Attraction Buffers travel as
    ``RunSpec.attraction``).  Configurations whose *other* unencoded
    fields (functional-unit mix, cache hit latency) differ from the
    defaults have no faithful name, so encoding them raises
    :class:`~repro.errors.ConfigError` rather than silently producing a
    name that decodes into a different machine.
    """
    defaults = MachineConfig()
    unencodable = []
    if config.fu_per_cluster != defaults.fu_per_cluster:
        unencodable.append("fu_per_cluster")
    if config.cache.hit_latency != defaults.cache.hit_latency:
        unencodable.append("cache.hit_latency")
    if config.attraction_buffer is not None:
        unencodable.append(
            "attraction_buffer (use RunSpec.attraction instead)"
        )
    if unencodable:
        raise ConfigError(
            f"configuration {config.name!r} cannot be encoded as a gen- "
            f"name: non-default {', '.join(unencodable)} would be lost "
            f"in the round trip"
        )
    cache = config.cache
    return (
        f"gen-c{config.num_clusters}"
        f"-mb{config.memory_buses.count}x{config.memory_buses.latency}"
        f"-rb{config.register_buses.count}x{config.register_buses.latency}"
        f"-cm{cache.module_bytes}b{cache.block_bytes}a{cache.associativity}"
        f"-nl{config.next_level.latency}p{config.next_level.ports}"
    )


def parse_config_name(name: str) -> MachineConfig:
    """Decode a ``gen-...`` name into a full :class:`MachineConfig`.

    Raises :class:`~repro.errors.ConfigError` when the name does not match
    the grammar or describes an invalid geometry.
    """
    match = _GENERATED_NAME_RE.match(name)
    if match is None:
        raise ConfigError(
            f"malformed generated configuration name {name!r}; expected "
            f"e.g. {encode_config_name(BASELINE_CONFIG)!r}"
        )
    g = {key: int(value) for key, value in match.groupdict().items()}
    return MachineConfig(
        name=name,
        num_clusters=g["clusters"],
        cache=CacheConfig(
            module_bytes=g["module"],
            block_bytes=g["block"],
            associativity=g["ways"],
        ),
        memory_buses=BusConfig(g["mb_count"], g["mb_lat"]),
        register_buses=BusConfig(g["rb_count"], g["rb_lat"]),
        next_level=NextLevelConfig(ports=g["nl_ports"], latency=g["nl_lat"]),
    )


_MODEL_SUFFIX_RE = re.compile(r"^(?P<base>.+)-mm(?P<model>[a-z][a-z0-9_]*)$")


def split_model_suffix(name: str) -> Tuple[str, str | None]:
    """Split a ``-mm<model>`` memory-model suffix off a machine name.

    Machine-space strings like ``"baseline-mmdls"`` name the baseline
    machine simulated under the ``dls`` memory model; the suffix is
    purely lexical (no :class:`MachineConfig` field), so configs stay
    model-agnostic and :class:`~repro.api.spec.RunSpec` owns the model
    dimension.  Returns ``(base_name, model)``, with ``model=None`` when
    the name carries no suffix.
    """
    match = _MODEL_SUFFIX_RE.match(name)
    if match is None:
        return name, None
    return match.group("base"), match.group("model")


def named_config(name: str) -> MachineConfig:
    """Look up one of the paper's machine configurations by name, or decode
    a generated ``gen-...`` name (see :func:`encode_config_name`)."""
    try:
        return _NAMED[name]
    except KeyError:
        pass
    if name.startswith(GENERATED_PREFIX):
        return parse_config_name(name)
    raise ConfigError(
        f"unknown configuration {name!r}; expected one of {sorted(_NAMED)} "
        f"or a generated '{GENERATED_PREFIX}...' name"
    )
