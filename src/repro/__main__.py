"""``python -m repro`` entry point (see :mod:`repro.api.cli`)."""

import sys

from repro.api.cli import main

sys.exit(main())
