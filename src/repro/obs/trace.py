"""Context-manager span tracing with Chrome trace-event export.

A :class:`Tracer` collects *complete* spans — name, category, start,
duration, nesting depth — measured with ``time.perf_counter`` so
durations are monotonic.  Spans nest per thread: a span opened while
another is active on the same thread records the parent's name, which
is enough to reconstruct the tree without span IDs.

Two export formats:

* **Chrome trace events** (:meth:`Tracer.chrome_trace`): the
  ``{"traceEvents": [...]}`` JSON object with ``ph: "X"`` complete
  events that chrome://tracing and `Perfetto <https://ui.perfetto.dev>`_
  load directly.  Timestamps/durations are microseconds.
* **JSONL** (:meth:`Tracer.write_jsonl`): one span object per line for
  ad-hoc grep/jq processing.  ``repro obs trace`` summarizes either.

Cross-process collection: pool workers run each task under a private
tracer and ship ``Tracer.export()`` back in the result envelope.  The
parent re-bases worker timestamps via each tracer's recorded wall-clock
origin (``time.time()`` at construction) — ``perf_counter`` origins are
not comparable across processes, wall clocks on one host are — and tags
the imported events with the worker's real pid so Perfetto renders one
track per worker.

When no tracer is installed, :func:`span` returns a shared no-op
context manager: instrumentation left in the hot layers costs one
global read and one ``is None`` test.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, Dict, Iterator, List, Optional

from contextlib import contextmanager


class Tracer:
    """Collects spans for one process; thread-safe."""

    def __init__(self, process_name: str = "repro") -> None:
        self.process_name = process_name
        self.pid = os.getpid()
        #: perf_counter value all span timestamps are relative to.
        self.origin = time.perf_counter()
        #: wall-clock time at ``origin`` — the cross-process re-basing
        #: anchor (see module docstring).
        self.wall_origin = time.time()
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []
        self._stacks: Dict[int, List[str]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    @contextmanager
    def span(self, name: str, cat: str = "repro",
             **args: object) -> Iterator[None]:
        """Record the enclosed block as one complete span."""
        tid = threading.get_ident()
        stack = self._stacks.setdefault(tid, [])
        parent = stack[-1] if stack else None
        stack.append(name)
        start = time.perf_counter()
        try:
            yield
        finally:
            duration = time.perf_counter() - start
            stack.pop()
            event: Dict[str, Any] = {
                "name": name,
                "cat": cat,
                "ts_us": (start - self.origin) * 1e6,
                "dur_us": duration * 1e6,
                "pid": self.pid,
                "tid": tid,
                "depth": len(stack),
            }
            if parent is not None:
                event["parent"] = parent
            if args:
                event["args"] = {k: v for k, v in args.items()}
            with self._lock:
                self._events.append(event)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._events)

    def export(self) -> Dict[str, Any]:
        """JSON-serializable image for shipping across processes."""
        return {
            "pid": self.pid,
            "process_name": self.process_name,
            "wall_origin": self.wall_origin,
            "events": self.events(),
        }

    def absorb(self, exported: Dict[str, Any]) -> None:
        """Fold a worker tracer's export into this one, re-basing its
        timestamps onto this tracer's clock via the wall-clock origins."""
        shift_us = (float(exported["wall_origin"]) - self.wall_origin) * 1e6
        pid = int(exported.get("pid", 0))
        absorbed = []
        for event in exported.get("events", []):
            copy = dict(event)
            copy["ts_us"] = float(copy["ts_us"]) + shift_us
            copy["pid"] = pid
            absorbed.append(copy)
        with self._lock:
            self._events.extend(absorbed)

    # ------------------------------------------------------------------
    # Export formats
    # ------------------------------------------------------------------
    def chrome_trace(self) -> Dict[str, Any]:
        """Chrome trace-event JSON (Perfetto-loadable)."""
        trace_events: List[Dict[str, Any]] = []
        pids = set()
        for event in self.events():
            pids.add(event["pid"])
            entry: Dict[str, Any] = {
                "name": event["name"],
                "cat": event["cat"],
                "ph": "X",
                "ts": round(float(event["ts_us"]), 3),
                "dur": round(float(event["dur_us"]), 3),
                "pid": event["pid"],
                "tid": event["tid"],
            }
            args = dict(event.get("args") or {})
            if event.get("parent") is not None:
                args["parent"] = event["parent"]
            if args:
                entry["args"] = args
            trace_events.append(entry)
        for pid in sorted(pids):
            trace_events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": (self.process_name if pid == self.pid
                             else f"{self.process_name}-worker"),
                },
            })
        return {"traceEvents": trace_events,
                "displayTimeUnit": "ms"}

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as handle:
            json.dump(self.chrome_trace(), handle)
            handle.write("\n")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as handle:
            for event in self.events():
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")

    def write(self, path: str) -> None:
        """Write Chrome format, or JSONL when ``path`` ends in .jsonl."""
        if path.endswith(".jsonl"):
            self.write_jsonl(path)
        else:
            self.write_chrome(path)


# ----------------------------------------------------------------------
# Loading / summarizing trace files (the ``repro obs trace`` verb)
# ----------------------------------------------------------------------
def load_events(path: str) -> List[Dict[str, Any]]:
    """Read spans from either export format into the internal shape."""
    with open(path) as handle:
        text = handle.read()
    try:
        data = json.loads(text)
    except ValueError:
        data = None  # more than one JSON document: the JSONL format
    if not isinstance(data, dict):
        return [json.loads(line) for line in text.splitlines()
                if line.strip()]
    events = []
    for entry in data.get("traceEvents", []):
        if entry.get("ph") != "X":
            continue
        args = dict(entry.get("args") or {})
        event: Dict[str, Any] = {
            "name": entry["name"],
            "cat": entry.get("cat", ""),
            "ts_us": float(entry["ts"]),
            "dur_us": float(entry["dur"]),
            "pid": entry.get("pid", 0),
            "tid": entry.get("tid", 0),
        }
        if "parent" in args:
            event["parent"] = args.pop("parent")
        if args:
            event["args"] = args
        events.append(event)
    return events


def summarize_events(events: List[Dict[str, Any]]) -> str:
    """Per-category and per-name rollup of a span list."""
    by_cat: Dict[str, List[float]] = {}
    by_name: Dict[str, List[float]] = {}
    for event in events:
        dur = float(event["dur_us"]) / 1e6
        by_cat.setdefault(str(event.get("cat", "")), []).append(dur)
        by_name.setdefault(str(event["name"]), []).append(dur)
    lines = [f"spans: {len(events)}"]
    lines.append("by category:")
    for cat in sorted(by_cat, key=lambda c: -sum(by_cat[c])):
        durs = by_cat[cat]
        lines.append(
            f"  {cat:<12} count={len(durs):<6} total={sum(durs):.6f}s "
            f"max={max(durs):.6f}s"
        )
    lines.append("top spans by total time:")
    ranked = sorted(by_name.items(), key=lambda item: -sum(item[1]))
    for name, durs in ranked[:15]:
        lines.append(
            f"  {name:<32} count={len(durs):<6} total={sum(durs):.6f}s"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Process-wide tracer
# ----------------------------------------------------------------------
_TRACER: Optional[Tracer] = None


class _NoopSpan:
    """Shared do-nothing context manager for the untraced path."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc: object) -> None:
        return None


_NOOP = _NoopSpan()


def tracer() -> Optional[Tracer]:
    return _TRACER


def set_tracer(target: Optional[Tracer]) -> Optional[Tracer]:
    """Install (or clear, with ``None``) the process tracer; returns
    the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = target
    return previous


def span(name: str, cat: str = "repro", **args: object):
    """A span on the installed tracer, or a shared no-op when none is."""
    if _TRACER is None:
        return _NOOP
    return _TRACER.span(name, cat, **args)
