"""A zero-dependency registry of labeled counters, gauges and histograms.

Every performance-bearing layer of the package reports through one
process-wide :class:`MetricsRegistry` (:func:`registry`):

* the staged pipeline credits per-stage execution counts and wall time
  (``stages.executed`` / ``stages.seconds``, labeled by stage);
* the artifact store counts hits/misses/puts (``artifacts.lookups``
  labeled by stage and outcome) — the counters behind
  ``repro cache artifacts``;
* the :class:`~repro.api.store.JsonFileStore` times entry reads/writes
  and shard scans (``store.read_seconds`` etc.);
* the :class:`~repro.api.runner.Runner` streaming core tracks store hit
  rate, per-spec latency, in-flight task depth and worker utilization;
* ``simulate()`` surfaces the engine counters (cycles by kind, accesses
  by type, fast-path diagnostics, per-bus occupancy).

Design constraints, in priority order:

1. **Never on a hot path.**  Instrumentation happens at per-run,
   per-stage, per-I/O or per-task granularity — never per simulated
   cycle — so the registry can stay dictionary-simple.
2. **Near-zero overhead when disabled.**  :func:`MetricsRegistry.disable`
   turns every record call into a single attribute check and return;
   the timing helpers skip their clock reads entirely.
3. **Cross-process aggregation.**  A registry serializes to a pure-JSON
   :meth:`~MetricsRegistry.snapshot`, snapshots :meth:`~MetricsRegistry.
   merge` into another registry, and merging is associative and lossless
   (counters and histogram moments add, min/max combine) — so pool
   workers capture a fresh registry per task (:func:`capture`) and ship
   its snapshot back to the parent with the task result, regardless of
   which worker ran which task in which order.

Metric names are dotted strings; labels are keyword arguments with
string-convertible values.  Histograms keep count/sum/min/max plus
power-of-two magnitude buckets, which is enough for latency percentile
estimates without per-observation storage.
"""

from __future__ import annotations

import json
import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

#: Canonical label form: sorted ``(key, value)`` string pairs.
LabelItems = Tuple[Tuple[str, str], ...]

#: Histogram bucket index for zero / subnormal observations.
_ZERO_BUCKET = -1075  # below the smallest positive float's exponent


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _bucket_index(value: float) -> int:
    """The power-of-two magnitude bucket an observation lands in.

    Bucket ``i`` covers ``(2**(i-1), 2**i]``; zero and negative values
    collapse into a single underflow bucket.  Integer bucket keys are
    exact, so merging bucket maps is lossless.
    """
    if value <= 0.0:
        return _ZERO_BUCKET
    return math.frexp(value)[1]


@dataclass
class HistogramData:
    """Mergeable summary of a stream of observations."""

    count: int = 0
    total: float = 0.0
    minimum: float = math.inf
    maximum: float = -math.inf
    #: power-of-two magnitude bucket -> observation count
    buckets: Dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        bucket = _bucket_index(value)
        self.buckets[bucket] = self.buckets.get(bucket, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merged_with(self, other: "HistogramData") -> "HistogramData":
        merged = HistogramData(
            count=self.count + other.count,
            total=self.total + other.total,
            minimum=min(self.minimum, other.minimum),
            maximum=max(self.maximum, other.maximum),
            buckets=dict(self.buckets),
        )
        for bucket, count in other.buckets.items():
            merged.buckets[bucket] = merged.buckets.get(bucket, 0) + count
        return merged

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "total": self.total,
            "min": None if self.count == 0 else self.minimum,
            "max": None if self.count == 0 else self.maximum,
            "buckets": {str(k): v for k, v in self.buckets.items()},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "HistogramData":
        count = int(data.get("count", 0))
        return cls(
            count=count,
            total=float(data.get("total", 0.0)),
            minimum=(math.inf if data.get("min") is None
                     else float(data["min"])),
            maximum=(-math.inf if data.get("max") is None
                     else float(data["max"])),
            buckets={int(k): int(v)
                     for k, v in (data.get("buckets") or {}).items()},
        )


class MetricsRegistry:
    """Labeled counters, gauges and histograms with snapshot/merge.

    Thread-safe: the runner's pool feeder thread and the consuming
    thread may both record.  All mutating operations are no-ops while
    the registry is disabled.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._enabled = bool(enabled)
        self._lock = threading.Lock()
        self._counters: Dict[str, Dict[LabelItems, float]] = {}
        self._gauges: Dict[str, Dict[LabelItems, float]] = {}
        self._histograms: Dict[str, Dict[LabelItems, HistogramData]] = {}

    # ------------------------------------------------------------------
    # Enablement
    # ------------------------------------------------------------------
    @property
    def enabled(self) -> bool:
        return self._enabled

    def enable(self) -> None:
        self._enabled = True

    def disable(self) -> None:
        self._enabled = False

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def inc(self, name: str, value: float = 1, **labels: object) -> None:
        """Add ``value`` to the counter ``name`` for ``labels``."""
        if not self._enabled:
            return
        key = _label_items(labels)
        with self._lock:
            series = self._counters.setdefault(name, {})
            series[key] = series.get(key, 0) + value

    def set_gauge(self, name: str, value: float, **labels: object) -> None:
        """Set the gauge ``name`` to ``value`` (last write wins)."""
        if not self._enabled:
            return
        key = _label_items(labels)
        with self._lock:
            self._gauges.setdefault(name, {})[key] = float(value)

    def observe(self, name: str, value: float, **labels: object) -> None:
        """Record one observation into the histogram ``name``."""
        if not self._enabled:
            return
        key = _label_items(labels)
        with self._lock:
            series = self._histograms.setdefault(name, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = HistogramData()
            hist.observe(value)

    @contextmanager
    def time_block(self, name: str, **labels: object):
        """Observe the wall time of a ``with`` block into a histogram.

        Skips the clock reads entirely while disabled (constraint 2 of
        the module docstring).
        """
        if not self._enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start, **labels)

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> float:
        return self._counters.get(name, {}).get(_label_items(labels), 0)

    def gauge(self, name: str, **labels: object) -> Optional[float]:
        return self._gauges.get(name, {}).get(_label_items(labels))

    def histogram(self, name: str,
                  **labels: object) -> Optional[HistogramData]:
        return self._histograms.get(name, {}).get(_label_items(labels))

    def counter_items(
        self, name: str
    ) -> Iterator[Tuple[Dict[str, str], float]]:
        """``(labels dict, value)`` pairs of one counter family."""
        with self._lock:
            items = list(self._counters.get(name, {}).items())
        for key, value in items:
            yield dict(key), value

    def names(self) -> List[str]:
        with self._lock:
            return sorted(
                set(self._counters) | set(self._gauges)
                | set(self._histograms)
            )

    # ------------------------------------------------------------------
    # Snapshot / merge / reset
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Pure-JSON image of the registry (the cross-process wire and
        on-disk format — see ``docs/observability.md``)."""
        with self._lock:
            return {
                "schema": 1,
                "counters": {
                    name: [[list(map(list, key)), value]
                           for key, value in series.items()]
                    for name, series in self._counters.items()
                },
                "gauges": {
                    name: [[list(map(list, key)), value]
                           for key, value in series.items()]
                    for name, series in self._gauges.items()
                },
                "histograms": {
                    name: [[list(map(list, key)), hist.to_dict()]
                           for key, hist in series.items()]
                    for name, series in self._histograms.items()
                },
            }

    def merge(self, snapshot: Dict[str, Any]) -> None:
        """Fold a snapshot into this registry.

        Counters and histograms aggregate (associatively and losslessly);
        gauges take the snapshot's value.  Merging is how worker-task
        deltas reach the parent registry — and it works even while the
        receiving registry is disabled, so a parent that disabled local
        instrumentation still aggregates faithfully.
        """
        with self._lock:
            for name, series in (snapshot.get("counters") or {}).items():
                target = self._counters.setdefault(name, {})
                for raw_key, value in series:
                    key = tuple(tuple(pair) for pair in raw_key)
                    target[key] = target.get(key, 0) + value
            for name, series in (snapshot.get("gauges") or {}).items():
                target = self._gauges.setdefault(name, {})
                for raw_key, value in series:
                    target[tuple(tuple(p) for p in raw_key)] = value
            for name, series in (snapshot.get("histograms") or {}).items():
                target = self._histograms.setdefault(name, {})
                for raw_key, data in series:
                    key = tuple(tuple(pair) for pair in raw_key)
                    incoming = HistogramData.from_dict(data)
                    existing = target.get(key)
                    target[key] = (
                        incoming if existing is None
                        else existing.merged_with(incoming)
                    )

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero every metric, or only those whose name starts with
        ``prefix`` (used by the per-family ``reset_*`` shims)."""
        with self._lock:
            for family in (self._counters, self._gauges, self._histograms):
                if prefix is None:
                    family.clear()
                else:
                    for name in [n for n in family if n.startswith(prefix)]:
                        del family[name]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable dump (the ``repro obs metrics`` CLI verb)."""
        lines: List[str] = []
        with self._lock:
            counters = {n: dict(s) for n, s in self._counters.items()}
            gauges = {n: dict(s) for n, s in self._gauges.items()}
            histograms = {n: dict(s) for n, s in self._histograms.items()}
        for name in sorted(counters):
            for key in sorted(counters[name]):
                value = counters[name][key]
                text = f"{value:g}" if isinstance(value, float) else str(value)
                lines.append(f"{name}{_format_labels(key)} = {text}")
        for name in sorted(gauges):
            for key in sorted(gauges[name]):
                lines.append(
                    f"{name}{_format_labels(key)} = {gauges[name][key]:g}"
                )
        for name in sorted(histograms):
            for key in sorted(histograms[name]):
                hist = histograms[name][key]
                lines.append(
                    f"{name}{_format_labels(key)}: count={hist.count} "
                    f"mean={hist.mean:.6g} min={hist.minimum:.6g} "
                    f"max={hist.maximum:.6g} total={hist.total:.6g}"
                )
        return "\n".join(lines)


def _format_labels(key: LabelItems) -> str:
    if not key:
        return ""
    return "{" + ",".join(f"{k}={v}" for k, v in key) + "}"


# ----------------------------------------------------------------------
# Process-wide default registry
# ----------------------------------------------------------------------
_REGISTRY = MetricsRegistry()


def registry() -> MetricsRegistry:
    """The process-wide registry all built-in instrumentation targets."""
    return _REGISTRY


def set_registry(target: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-wide registry; returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = target
    return previous


def enabled() -> bool:
    """Whether the process-wide registry is recording."""
    return _REGISTRY.enabled


def inc(name: str, value: float = 1, **labels: object) -> None:
    _REGISTRY.inc(name, value, **labels)


def set_gauge(name: str, value: float, **labels: object) -> None:
    _REGISTRY.set_gauge(name, value, **labels)


def observe(name: str, value: float, **labels: object) -> None:
    _REGISTRY.observe(name, value, **labels)


@contextmanager
def capture(enabled: bool = True):
    """Swap in a fresh registry for the duration of a block.

    The pool-worker task boundary: ``_worker_group`` captures each
    task's metrics into a private registry and ships its snapshot back
    in the result envelope, so per-task deltas need no subtraction and
    histogram min/max stay exact.  Restores the previous registry even
    on failure.
    """
    fresh = MetricsRegistry(enabled=enabled)
    previous = set_registry(fresh)
    try:
        yield fresh
    finally:
        set_registry(previous)


# ----------------------------------------------------------------------
# Snapshot file I/O (the ``--metrics FILE`` CLI surface)
# ----------------------------------------------------------------------
def write_snapshot(path: str, snapshot: Optional[Dict[str, Any]] = None,
                   ) -> None:
    """Write a registry snapshot as JSON (default: the process registry)."""
    if snapshot is None:
        snapshot = _REGISTRY.snapshot()
    with open(path, "w") as handle:
        json.dump(snapshot, handle, sort_keys=True, indent=2)
        handle.write("\n")


def load_snapshot(path: str) -> MetricsRegistry:
    """Rebuild a registry from a snapshot file."""
    with open(path) as handle:
        data = json.load(handle)
    rebuilt = MetricsRegistry()
    rebuilt.merge(data)
    return rebuilt
