"""`repro.obs` — unified observability: metrics registry + span tracing.

See ``docs/observability.md`` for the full model.  Quick start::

    from repro import obs

    obs.inc("my.counter", stage="unroll", outcome="hit")
    with obs.registry().time_block("my.seconds", stage="unroll"):
        ...

    tracer = obs.Tracer()
    obs.set_tracer(tracer)
    with obs.span("compile", cat="stage"):
        ...
    tracer.write("trace.json")   # open in https://ui.perfetto.dev
"""

from .metrics import (
    HistogramData,
    MetricsRegistry,
    capture,
    enabled,
    inc,
    load_snapshot,
    observe,
    registry,
    set_gauge,
    set_registry,
    write_snapshot,
)
from .trace import (
    Tracer,
    load_events,
    set_tracer,
    span,
    summarize_events,
    tracer,
)

__all__ = [
    "HistogramData",
    "MetricsRegistry",
    "Tracer",
    "capture",
    "enabled",
    "inc",
    "load_events",
    "load_snapshot",
    "observe",
    "registry",
    "set_gauge",
    "set_registry",
    "set_tracer",
    "span",
    "summarize_events",
    "tracer",
    "write_snapshot",
]
