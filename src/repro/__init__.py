"""repro — reproduction of Gibert, Sánchez & González, *Local Scheduling
Techniques for Memory Coherence in a Clustered VLIW Processor with a
Distributed Data Cache* (CGO 2003).

The package provides, from scratch:

* a loop IR with typed dependence edges (:mod:`repro.ir`);
* conservative memory disambiguation and preferred-cluster profiling
  (:mod:`repro.alias`);
* a clustered modulo scheduler with the PrefClus/MinComs heuristics and
  the paper's two coherence solutions — Memory Dependent Chains and the
  DDG Transformations (:mod:`repro.sched`);
* a cycle-level simulator of the word-interleaved cache clustered VLIW
  machine, including Attraction Buffers and a coherence-violation checker
  (:mod:`repro.sim`);
* a calibrated Mediabench-like workload catalog (:mod:`repro.workloads`);
* a declarative session layer (:mod:`repro.api`) — ``RunSpec``/``Plan``
  grids, a serial/parallel ``Runner``, persistent ``ResultStore`` caching
  and a ``python -m repro`` CLI — on which the experiment drivers
  (:mod:`repro.experiments`) regenerate every table and figure of the
  evaluation.  Compilation runs as a staged pipeline
  (:mod:`repro.sched.stages`) whose variant-independent front end
  (unroll → disambiguate → profile) is content-addressed and shared
  across the 6-way coherence × heuristic cross through an
  ``ArtifactStore`` (:mod:`repro.api.artifacts`, ``docs/architecture.md``);
* a seeded synthetic scenario engine (:mod:`repro.scenarios`) — kernel
  and machine-space generators plus a differential free/MDC/DDGT sweep
  harness (``repro scenarios {generate,sweep,report}``) that turns the
  reproduction into a general stress/fuzz rig;
* unified observability (:mod:`repro.obs`) — a process-wide metrics
  registry with exact cross-process aggregation and span tracing with
  Perfetto-loadable export (``--trace``/``--metrics``, ``repro obs``) —
  plus config-driven benchmark grids with a persistent, CI-compared
  ``BENCH_*.json`` perf trajectory (:mod:`repro.bench`,
  ``repro bench {run,compare}``, ``docs/observability.md``).

Quickstart — declare work, run it, read structured results::

    from repro import Plan, Runner, RunSpec, run

    # One unit of work: benchmark x variant x machine (content-hashed,
    # cached by the process-wide ResultStore).
    record = run(RunSpec(benchmark="epicdec", variant="mdc/prefclus",
                         scale=0.25))
    print(record.total_cycles, f"{record.local_hit_ratio:.1%}")

    # A whole grid, fanned out over 4 worker processes with an on-disk
    # cache: re-running is near-instant.
    from repro.api import DiskStore, FIGURE7_BARS

    plan = Plan.grid(benchmarks=["epicdec", "gsmdec", "pgpdec"],
                     variants=FIGURE7_BARS, scale=0.25)
    for rec in Runner(store=DiskStore(), parallel=4).run(plan):
        print(rec.benchmark, rec.variant, rec.total_cycles)

The same plans drive the CLI: ``python -m repro figure 7 --parallel 4``,
``python -m repro run epicdec -v ddgt/prefclus``, ``python -m repro list``.
(The old ``repro.experiments.run_benchmark`` entry point still works but
is deprecated in favor of this API.)

For the low-level path — build a DDG by hand, compile and simulate it —
see ``examples/quickstart.py`` and :func:`compile_loop`/:func:`simulate`.
"""

__version__ = "1.10.0"

from repro.alias import AccessPattern, MemRef
from repro.arch import (
    BASELINE_CONFIG,
    NOBAL_MEM_CONFIG,
    NOBAL_REG_CONFIG,
    MachineConfig,
    named_config,
)
from repro.errors import (
    ConfigError,
    ExecutionError,
    GraphError,
    ReproError,
    SchedulingError,
    SimulationError,
    TransformError,
    WorkloadError,
)
from repro.ir import Ddg, DdgBuilder, DepKind, Edge, Instruction, Opcode
from repro.sched import (
    CoherenceMode,
    CompilationResult,
    Heuristic,
    apply_ddgt,
    apply_mdc,
    compile_loop,
    memory_dependent_chains,
)
from repro.sim import SimStats, SimulationResult, simulate
from repro.workloads import benchmark_names, get_benchmark, trace_factory
from repro.api import (
    DiskStore,
    LoopRecord,
    MemoryStore,
    Plan,
    ResultStore,
    RunError,
    RunJournal,
    RunRecord,
    RunSpec,
    Runner,
    Variant,
    default_store,
    run,
    set_default_store,
)
from repro.scenarios import (
    ScenarioParams,
    build_scenario_ddg,
    run_sweep,
    sample_scenarios,
    scenario_benchmark,
)

__all__ = [
    "AccessPattern",
    "MemRef",
    "BASELINE_CONFIG",
    "NOBAL_MEM_CONFIG",
    "NOBAL_REG_CONFIG",
    "MachineConfig",
    "named_config",
    "ConfigError",
    "GraphError",
    "ReproError",
    "ExecutionError",
    "SchedulingError",
    "SimulationError",
    "TransformError",
    "WorkloadError",
    "Ddg",
    "DdgBuilder",
    "DepKind",
    "Edge",
    "Instruction",
    "Opcode",
    "CoherenceMode",
    "CompilationResult",
    "Heuristic",
    "apply_ddgt",
    "apply_mdc",
    "compile_loop",
    "memory_dependent_chains",
    "SimStats",
    "SimulationResult",
    "simulate",
    "benchmark_names",
    "get_benchmark",
    "trace_factory",
    "DiskStore",
    "LoopRecord",
    "MemoryStore",
    "Plan",
    "ResultStore",
    "RunError",
    "RunJournal",
    "RunRecord",
    "RunSpec",
    "Runner",
    "Variant",
    "default_store",
    "run",
    "set_default_store",
    "ScenarioParams",
    "build_scenario_ddg",
    "run_sweep",
    "sample_scenarios",
    "scenario_benchmark",
    "__version__",
]
