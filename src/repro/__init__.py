"""repro — reproduction of Gibert, Sánchez & González, *Local Scheduling
Techniques for Memory Coherence in a Clustered VLIW Processor with a
Distributed Data Cache* (CGO 2003).

The package provides, from scratch:

* a loop IR with typed dependence edges (:mod:`repro.ir`);
* conservative memory disambiguation and preferred-cluster profiling
  (:mod:`repro.alias`);
* a clustered modulo scheduler with the PrefClus/MinComs heuristics and
  the paper's two coherence solutions — Memory Dependent Chains and the
  DDG Transformations (:mod:`repro.sched`);
* a cycle-level simulator of the word-interleaved cache clustered VLIW
  machine, including Attraction Buffers and a coherence-violation checker
  (:mod:`repro.sim`);
* a calibrated Mediabench-like workload catalog (:mod:`repro.workloads`);
* experiment drivers regenerating every table and figure of the
  evaluation (:mod:`repro.experiments`).

Quickstart::

    from repro import (
        BASELINE_CONFIG, CoherenceMode, Heuristic, MemRef,
        DdgBuilder, compile_loop, simulate, trace_factory,
    )

    b = DdgBuilder("saxpy")
    x = b.load("x", mem=MemRef("X", stride=4))
    y = b.load("y", mem=MemRef("Y", stride=4))
    s = b.fmul("s", "x", "y")
    b.store("s", mem=MemRef("Y", stride=4))
    loop = b.build()

    compiled = compile_loop(
        loop, BASELINE_CONFIG,
        coherence=CoherenceMode.MDC, heuristic=Heuristic.PREFCLUS,
        trace_factory=trace_factory(256, seed=1),
    )
    result = simulate(
        compiled, trace_factory(2000, seed=2)(compiled.ddg)
    )
    print(result.stats.describe())
"""

from repro.alias import AccessPattern, MemRef
from repro.arch import (
    BASELINE_CONFIG,
    NOBAL_MEM_CONFIG,
    NOBAL_REG_CONFIG,
    MachineConfig,
    named_config,
)
from repro.errors import (
    ConfigError,
    GraphError,
    ReproError,
    SchedulingError,
    SimulationError,
    TransformError,
    WorkloadError,
)
from repro.ir import Ddg, DdgBuilder, DepKind, Edge, Instruction, Opcode
from repro.sched import (
    CoherenceMode,
    CompilationResult,
    Heuristic,
    apply_ddgt,
    apply_mdc,
    compile_loop,
    memory_dependent_chains,
)
from repro.sim import SimStats, SimulationResult, simulate
from repro.workloads import benchmark_names, get_benchmark, trace_factory

__version__ = "1.0.0"

__all__ = [
    "AccessPattern",
    "MemRef",
    "BASELINE_CONFIG",
    "NOBAL_MEM_CONFIG",
    "NOBAL_REG_CONFIG",
    "MachineConfig",
    "named_config",
    "ConfigError",
    "GraphError",
    "ReproError",
    "SchedulingError",
    "SimulationError",
    "TransformError",
    "WorkloadError",
    "Ddg",
    "DdgBuilder",
    "DepKind",
    "Edge",
    "Instruction",
    "Opcode",
    "CoherenceMode",
    "CompilationResult",
    "Heuristic",
    "apply_ddgt",
    "apply_mdc",
    "compile_loop",
    "memory_dependent_chains",
    "SimStats",
    "SimulationResult",
    "simulate",
    "benchmark_names",
    "get_benchmark",
    "trace_factory",
    "__version__",
]
