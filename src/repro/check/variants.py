"""Check models for the non-default memory models.

One :class:`~repro.check.model.ProtocolModel` subclass per registered
memory model (:mod:`repro.sim.models`), sharing the state shape, the
invariants (:mod:`repro.check.invariants`) and the explorer:

* :class:`DLSProtocolModel` — the directoryless-shared-LLC model is the
  snooping protocol skeleton over a different placement map, so the
  subclass overrides exactly one hook (:meth:`home`), mirroring how
  ``DLSMemorySystem`` overrides only ``_route``.  Every seeded mutation
  applies unchanged.

* :class:`DirectoryProtocolModel` — the distributed-directory model
  decouples the *directory home* (``sb % N``, where requests go) from
  the *owner* (``(sb // N) % N``, where the data lives).  Its own
  transition table adds the forwarded hop: a request reaching a home
  that does not own the data becomes a ``fwd_ld``/``fwd_st`` message in
  the home's FIFO (``deliver_request_forward``), and an access issued
  *at* the home of data owned elsewhere skips the request hop entirely
  (``issue_forward``).  Forwarded messages are served at the owner by
  the ``deliver_forward_*`` family — the same hit/miss/combine
  dispositions as requests, at the model's :meth:`data_home`.  Seeded
  mutations are snooping-flow bugs and are rejected.

The explorer proves, per model, that disciplined programs (every
aliasing pair on one cluster) never observe stale versions.  For the
directory model the informal argument is the one the table encodes:
aliasing accesses from one cluster take the *same* (cluster, home,
owner) path, and every hop — issue queue, request FIFO, forward FIFO,
MSHR replay — preserves arrival order, so the extra hop cannot reorder
a chain.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Type

from repro.errors import ConfigError

from repro.check.model import (
    ABSENT,
    INFLIGHT,
    NO_VERSION,
    GuardedAction,
    ModelOp,
    ProtocolModel,
    State,
    _a_deliver_response,
    _a_fill,
    _a_local_hit,
    _a_local_miss,
    _a_remote,
    _a_request_combine,
    _a_request_hit,
    _a_request_miss,
    _a_send_response,
    _append,
    _apply_store,
    _deliverable_requests,
    _describe_delivery,
    _i_deliver_response,
    _i_fill,
    _i_local_combine,
    _i_local_hit,
    _i_local_miss,
    _i_send_response,
    _issuable,
    _observe,
    _op_describer,
    _pop,
    _set,
)
from repro.sim.models.dls import dls_home


class DLSProtocolModel(ProtocolModel):
    """Snooping transitions over the hashed single-slice placement."""

    def home(self, sb: int) -> int:
        return dls_home(sb, self.num_clusters)


# ----------------------------------------------------------------------
# Directory: guards and actions for the forwarded hop
# ----------------------------------------------------------------------
def _i_issue_forward(model: ProtocolModel, state: State):
    for op in model.program:
        sb = op.subblock
        if (
            op.cluster == model.home(sb)
            and op.cluster != model.data_home(sb)
            and _issuable(model, state, op)
        ):
            yield (op.index,)


def _a_issue_forward(model, state, args):
    op = model.program[args[0]]
    message = (
        ("fwd_ld", op.subblock, (op.index,), op.cluster)
        if op.is_load
        else ("fwd_st", op.subblock, op.index)
    )
    state = state._replace(
        queues=_append(state.queues, op.cluster, message),
        ops=_set(state.ops, op.index, (INFLIGHT, NO_VERSION)),
    )
    return state, []


def _i_remote_directory(model: ProtocolModel, state: State):
    # Unlike the snooping guard (not is_local), an access from the data
    # home itself forwards (above) rather than sending a request.
    for op in model.program:
        if op.cluster != model.home(op.subblock) and _issuable(
            model, state, op
        ):
            yield (op.index,)


def _owned_requests(model: ProtocolModel, state: State):
    """Deliverable requests whose home also owns the data."""
    for src, pos, message in _deliverable_requests(model, state):
        sb = message[1]
        if model.data_home(sb) == model.home(sb):
            yield src, pos, message


def _i_request_hit_owned(model, state):
    for src, pos, message in _owned_requests(model, state):
        if state.cache[message[1]] != ABSENT:
            yield (src, pos)


def _i_request_miss_owned(model, state):
    for src, pos, message in _owned_requests(model, state):
        if state.cache[message[1]] == ABSENT and not state.mshr[message[1]]:
            yield (src, pos)


def _i_request_combine_owned(model, state):
    for src, pos, message in _owned_requests(model, state):
        if state.cache[message[1]] == ABSENT and state.mshr[message[1]]:
            yield (src, pos)


def _i_request_forward(model, state):
    for src, pos, message in _deliverable_requests(model, state):
        sb = message[1]
        if model.data_home(sb) != model.home(sb):
            yield (src, pos)


def _a_request_forward(model, state, args):
    """The home's directory lookup: the request leaves its source FIFO
    and re-enters the fabric as a forward in the *home's* FIFO, bound
    for the owner."""
    src, pos = args
    message = state.queues[src][pos]
    sb = message[1]
    forward = (
        ("fwd_ld", sb, message[2], src)
        if message[0] == "req_ld"
        else ("fwd_st", sb, message[2])
    )
    state = state._replace(queues=_pop(state.queues, src, pos))
    state = state._replace(
        queues=_append(state.queues, model.home(sb), forward)
    )
    return state, []


def _deliverable_forwards(model: ProtocolModel, state: State):
    """Per-source FIFO heads that are forwarded messages."""
    for src in range(model.num_clusters):
        queue = state.queues[src]
        if queue and queue[0][0] in ("fwd_ld", "fwd_st"):
            yield src, 0, queue[0]


def _i_forward_hit(model, state):
    for src, pos, message in _deliverable_forwards(model, state):
        if state.cache[message[1]] != ABSENT:
            yield (src, pos)


def _a_forward_hit(model, state, args):
    src, pos = args
    message = state.queues[src][pos]
    sb = message[1]
    owner = model.data_home(sb)
    state = state._replace(queues=_pop(state.queues, src, pos))
    events = []
    if message[0] == "fwd_ld":
        for op_index in message[2]:
            state = _observe(model, state, op_index, INFLIGHT, events)
        version = state.ops[message[2][0]][1]
        state = state._replace(
            pending=_append(
                state.pending, owner, ("resp", sb, message[2], version)
            )
        )
    else:
        state = _apply_store(
            model, state, sb, message[2], events, present=True
        )
    return state, events


def _i_forward_miss(model, state):
    for src, pos, message in _deliverable_forwards(model, state):
        if state.cache[message[1]] == ABSENT and not state.mshr[message[1]]:
            yield (src, pos)


def _a_forward_miss(model, state, args):
    src, pos = args
    message = state.queues[src][pos]
    sb = message[1]
    state = state._replace(queues=_pop(state.queues, src, pos))
    if message[0] == "fwd_ld":
        actions = [("respond", message[3], op) for op in message[2]]
    else:
        actions = [("store", message[2])]
    for action in actions:
        state = state._replace(mshr=_append(state.mshr, sb, action))
    return state, []


def _i_forward_combine(model, state):
    for src, pos, message in _deliverable_forwards(model, state):
        if state.cache[message[1]] == ABSENT and state.mshr[message[1]]:
            yield (src, pos)


class DirectoryProtocolModel(ProtocolModel):
    """Request -> home -> owner -> requester as guarded actions."""

    def __init__(
        self,
        num_clusters: int,
        num_subblocks: int,
        program: Tuple[ModelOp, ...],
        mutation: Optional[str] = None,
    ) -> None:
        if mutation is not None:
            raise ConfigError(
                "seeded mutations model snooping-flow bugs and are not "
                "defined for the directory model"
            )
        super().__init__(num_clusters, num_subblocks, program)

    def owner(self, sb: int) -> int:
        return (sb // self.num_clusters) % self.num_clusters

    def data_home(self, sb: int) -> int:
        return self.owner(sb)

    def is_local(self, op: ModelOp) -> bool:
        sb = op.subblock
        return op.cluster == self.home(sb) == self.data_home(sb)


DirectoryProtocolModel.TRANSITION_TABLE = (
    GuardedAction(
        "issue_local_hit",
        "a local access (cluster = home = owner) finds its subblock",
        _i_local_hit, _a_local_hit, _op_describer,
    ),
    GuardedAction(
        "issue_local_miss",
        "a local access opens an MSHR entry and a next-level fill",
        _i_local_miss, _a_local_miss, _op_describer,
    ),
    GuardedAction(
        "issue_local_combine",
        "a local access merges into the open MSHR entry",
        _i_local_combine, _a_local_miss, _op_describer,
    ),
    GuardedAction(
        "issue_forward",
        "an access at the directory home of data owned elsewhere goes "
        "straight to the owner (the lookup is local and free)",
        _i_issue_forward, _a_issue_forward, _op_describer,
    ),
    GuardedAction(
        "issue_remote",
        "a remote access sends its request to the directory home",
        _i_remote_directory, _a_remote, _op_describer,
    ),
    GuardedAction(
        "deliver_request_hit",
        "a request reaches a home that owns and holds the subblock",
        _i_request_hit_owned, _a_request_hit, _describe_delivery,
    ),
    GuardedAction(
        "deliver_request_miss",
        "a request reaches an owning home without the subblock: "
        "MSHR + fill",
        _i_request_miss_owned, _a_request_miss, _describe_delivery,
    ),
    GuardedAction(
        "deliver_request_combine",
        "a request reaches an owning home mid-fill and joins the entry",
        _i_request_combine_owned, _a_request_combine, _describe_delivery,
    ),
    GuardedAction(
        "deliver_request_forward",
        "a request reaches a home that does not own the data and is "
        "forwarded to the owner",
        _i_request_forward, _a_request_forward, _describe_delivery,
    ),
    GuardedAction(
        "deliver_forward_hit",
        "a forward reaches the owner holding the subblock and is served",
        _i_forward_hit, _a_forward_hit, _describe_delivery,
    ),
    GuardedAction(
        "deliver_forward_miss",
        "a forward reaches the owner without the subblock: MSHR + fill",
        _i_forward_miss, _a_forward_miss, _describe_delivery,
    ),
    GuardedAction(
        "deliver_forward_combine",
        "a forward reaches the owner mid-fill and joins the MSHR entry",
        _i_forward_combine, _a_forward_miss, _describe_delivery,
    ),
    GuardedAction(
        "send_response",
        "a ready probe-hit response enters the owner's bus queue",
        _i_send_response, _a_send_response,
        lambda model, args: f"owner c{args[0]}",
    ),
    GuardedAction(
        "deliver_response",
        "a response reaches its requester; the load completes",
        _i_deliver_response, _a_deliver_response,
        lambda model, args: f"from owner c{args[0]}",
    ),
    GuardedAction(
        "fill_complete",
        "the next-level fill lands; MSHR actions replay in arrival order",
        _i_fill, _a_fill,
        lambda model, args: f"sb{args[0]}",
    ),
)


#: memory-model name -> check model class (the bridge and the explorer
#: select by the same names the sim registry uses).
CHECK_MODELS: Dict[str, Type[ProtocolModel]] = {
    "snooping": ProtocolModel,
    "dls": DLSProtocolModel,
    "directory": DirectoryProtocolModel,
}


def named_check_model(name: str) -> Type[ProtocolModel]:
    """The check-model class for a registered memory model name."""
    try:
        return CHECK_MODELS[name]
    except KeyError:
        raise ConfigError(
            f"no check model for memory model {name!r}; expected one of "
            f"{sorted(CHECK_MODELS)}"
        ) from None
