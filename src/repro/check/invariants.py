"""Invariants checked over every reachable state, edge and event.

Four families, matching the claims the paper's coherence solutions make:

* **safety of observations** (``no_stale_read`` / ``no_future_read`` /
  ``store_order``): in a *disciplined* program — every aliasing pair on
  one cluster, i.e. what MDC chains and DDGT replication guarantee — a
  load observes exactly the version of the last program-order store to
  its subblock, and stores never apply out of order.  Undisciplined
  (free-scheduling) programs are exempt: racing is their documented
  behaviour, and the explorer counts those races separately as evidence
  the model can represent them.

* **bookkeeping soundness** (``single_owner`` / ``single_carrier``): a
  subblock is either resident at its home or being filled, never both;
  every in-flight access is carried by exactly one protocol artifact
  (request, MSHR action, ready response or response message), and
  completed/unissued accesses by none.

* **progress** (``deadlock``): a state with no enabled transition must
  be fully quiescent — all ops complete, no queued messages, no open
  MSHR entries, no waiting responses.

* **watchdog consistency** (``watchdog_progress``): the *drain measure*
  :func:`measure` strictly decreases on every non-issue transition and
  grows by at most :data:`MAX_ISSUE_DELTA` per issue.  That gives a
  lexicographic ranking ((unissued ops, measure)) that decreases on
  every transition, so no infinite run exists once issue stops: the
  protocol is livelock-free and the simulator's post-issue stall
  watchdog (``repro.sim.executor.STALL_WATCHDOG``) can only ever fire
  on a genuine bug, never on a slow legal drain.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.check.model import (
    ABSENT,
    COMPLETE,
    INFLIGHT,
    Event,
    ProtocolModel,
    State,
    UNISSUED,
)

#: Drain-measure weights.  Chosen so that every non-issue transition is
#: strictly decreasing: each protocol step turns an artifact into
#: strictly lighter ones (e.g. serving a read request, weight 4/op,
#: leaves a ready response, weight 2, which becomes a response message,
#: weight 1, which vanishes at delivery).
W_REQ_LD = 4      # per load carried by a read request message
W_REQ_ST = 3      # a store request message
W_RESP = 1        # a response message (any op count)
W_READY = 2       # a ready (not yet sent) probe-hit response
W_RESPOND = 2     # a deferred "respond" MSHR action
W_LOCAL = 1       # a deferred local load/store MSHR action
W_FILL = 1        # an in-flight next-level fill (MSHR entry open)

#: Largest measure increase any single issue transition can cause
#: (a remote load request).
MAX_ISSUE_DELTA = W_REQ_LD


def measure(state: State) -> int:
    """Total weight of in-flight protocol work (the drain measure)."""
    total = 0
    for queue in state.queues:
        for message in queue:
            if message[0] == "req_ld":
                total += W_REQ_LD * len(message[2])
            elif message[0] == "req_st":
                total += W_REQ_ST
            else:
                total += W_RESP
    for ready in state.pending:
        total += W_READY * len(ready)
    for actions in state.mshr:
        if actions:
            total += W_FILL
        for action in actions:
            total += W_RESPOND if action[0] == "respond" else W_LOCAL
    return total


# ----------------------------------------------------------------------
def state_violations(model: ProtocolModel, state: State) -> List[str]:
    """Bookkeeping-soundness violations of one state."""
    violations: List[str] = []
    for sb in range(model.num_subblocks):
        if state.mshr[sb] and state.cache[sb] != ABSENT:
            violations.append(
                f"single_owner: sb{sb} is resident at its home while a "
                f"next-level fill is still in flight"
            )
    carriers = [0] * len(model.program)
    for queue in state.queues:
        for message in queue:
            if message[0] == "req_ld":
                for op in message[2]:
                    carriers[op] += 1
            elif message[0] == "req_st":
                carriers[message[2]] += 1
            else:
                for op in message[2]:
                    carriers[op] += 1
    for ready in state.pending:
        for message in ready:
            for op in message[2]:
                carriers[op] += 1
    for actions in state.mshr:
        for action in actions:
            carriers[action[-1]] += 1
    for op in model.program:
        status = state.ops[op.index][0]
        count = carriers[op.index]
        if status == INFLIGHT and count != 1:
            violations.append(
                f"single_carrier: in-flight {op.label} is carried by "
                f"{count} protocol artifacts (want exactly 1)"
            )
        elif status != INFLIGHT and count != 0:
            violations.append(
                f"single_carrier: {'completed' if status == COMPLETE else 'unissued'} "
                f"{op.label} still appears in {count} protocol artifacts"
            )
    return violations


def edge_violations(
    transition_name: str, measure_before: int, measure_after: int
) -> List[str]:
    """Watchdog-consistency check for one fired transition."""
    if transition_name.startswith("issue"):
        if measure_after > measure_before + MAX_ISSUE_DELTA:
            return [
                f"watchdog_progress: issue transition {transition_name} "
                f"grew the drain measure by "
                f"{measure_after - measure_before} (> {MAX_ISSUE_DELTA})"
            ]
        return []
    if measure_after >= measure_before:
        return [
            f"watchdog_progress: {transition_name} did not decrease the "
            f"drain measure ({measure_before} -> {measure_after}); a "
            f"cycle of such steps would livelock the drain"
        ]
    return []


def event_violations(
    model: ProtocolModel, events: List[Event], disciplined: bool
) -> Tuple[List[str], int]:
    """Observation-safety violations of one transition's events.

    Returns ``(violations, races)`` where races counts stale/future
    observations in *undisciplined* programs (legal for free scheduling,
    and evidence the model can express the hazard at all).
    """
    violations: List[str] = []
    races = 0
    for event in events:
        if event[0] == "observe":
            _tag, op_index, observed, expected = event
            if observed == expected:
                continue
            if not disciplined:
                races += 1
                continue
            kind = "no_stale_read" if observed < expected else "no_future_read"
            op = model.program[op_index]
            violations.append(
                f"{kind}: {op.label} observed version {observed} but the "
                f"last program-order store left version {expected}"
            )
        elif event[0] == "apply" and event[4]:
            _tag, sb, version, previous, _inverted = event
            if not disciplined:
                races += 1
                continue
            violations.append(
                f"store_order: version {version} reached sb{sb} after "
                f"younger version {previous} (program order inverted)"
            )
    return violations, races


def terminal_violations(model: ProtocolModel, state: State) -> List[str]:
    """Deadlock check for a state with no enabled transitions."""
    problems: List[str] = []
    stuck = [
        model.program[i].label
        for i, (status, _v) in enumerate(state.ops)
        if status != COMPLETE
    ]
    if stuck:
        problems.append("incomplete ops: " + ", ".join(stuck))
    if any(state.queues):
        problems.append("undelivered messages")
    if any(state.pending):
        problems.append("unsent responses")
    if any(state.mshr):
        problems.append("open MSHR entries")
    if problems:
        return ["deadlock: quiescence unreachable — " + "; ".join(problems)]
    return []


def unissued_count(state: State) -> int:
    return sum(1 for status, _v in state.ops if status == UNISSUED)
