"""Invariants checked over every reachable state, edge and event.

Four families, matching the claims the paper's coherence solutions make:

* **safety of observations** (``no_stale_read`` / ``no_future_read`` /
  ``store_order``): in a *disciplined* program — every aliasing pair on
  one cluster, i.e. what MDC chains and DDGT replication guarantee — a
  load observes exactly the version of the last program-order store to
  its subblock, and stores never apply out of order.  Undisciplined
  (free-scheduling) programs are exempt: racing is their documented
  behaviour, and the explorer counts those races separately as evidence
  the model can represent them.

* **bookkeeping soundness** (``single_owner`` / ``single_carrier``): a
  subblock is either resident at its home or being filled, never both;
  every in-flight access is carried by exactly one protocol artifact
  (request, MSHR action, ready response or response message), and
  completed/unissued accesses by none.

* **progress** (``deadlock``): a state with no enabled transition must
  be fully quiescent — all ops complete, no queued messages, no open
  MSHR entries, no waiting responses.

* **watchdog consistency** (``watchdog_progress``): the *drain measure*
  :func:`measure` strictly decreases on every non-issue transition and
  grows by at most :data:`MAX_ISSUE_DELTA` per issue.  That gives a
  lexicographic ranking ((unissued ops, measure)) that decreases on
  every transition, so no infinite run exists once issue stops: the
  protocol is livelock-free and the simulator's post-issue stall
  watchdog (``repro.sim.executor.STALL_WATCHDOG``) can only ever fire
  on a genuine bug, never on a slow legal drain.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.check.model import (
    ABSENT,
    COMPLETE,
    INFLIGHT,
    Event,
    ProtocolModel,
    State,
    UNISSUED,
)

#: Message kinds carrying a tuple of load ops at position 2 (``fwd_*``
#: are the directory model's home->owner forwards; see
#: :mod:`repro.check.variants`).
PER_OP_KINDS = frozenset({"req_ld", "fwd_ld"})
#: Message kinds carrying a single store op index at position 2.
FLAT_KINDS = frozenset({"req_st", "fwd_st"})

#: Drain-measure weights.  Chosen so that every non-issue transition is
#: strictly decreasing: each protocol step turns an artifact into
#: strictly lighter ones (e.g. serving a read request, weight 8/op,
#: leaves a ready response, weight 4, which becomes a response message,
#: weight 2, which vanishes at delivery).  The directory model inserts
#: one more rung per family — a request forwarded to the owner becomes a
#: ``fwd_*`` message, one lighter per carried op than the request it
#: came from, and a forwarded load that opens an MSHR entry turns
#: ``fwd_ld`` (7/op) into respond actions (4/op) plus one fill (2), a
#: strict decrease already at a single op.
W_REQ_LD = 8      # per load carried by a read request message
W_FWD_LD = 7      # per load carried by a forwarded read (directory)
W_REQ_ST = 6      # a store request message
W_FWD_ST = 5      # a forwarded store message (directory)
W_RESP = 2        # a response message (any op count)
W_READY = 4       # a ready (not yet sent) probe-hit response
W_RESPOND = 4     # a deferred "respond" MSHR action
W_LOCAL = 2       # a deferred local load/store MSHR action
W_FILL = 2        # an in-flight next-level fill (MSHR entry open)

#: Largest measure increase any single issue transition can cause
#: (a remote load request).
MAX_ISSUE_DELTA = W_REQ_LD

_MESSAGE_WEIGHTS = {"req_ld": W_REQ_LD, "fwd_ld": W_FWD_LD,
                    "req_st": W_REQ_ST, "fwd_st": W_FWD_ST}


def measure(state: State) -> int:
    """Total weight of in-flight protocol work (the drain measure)."""
    total = 0
    for queue in state.queues:
        for message in queue:
            kind = message[0]
            if kind in PER_OP_KINDS:
                total += _MESSAGE_WEIGHTS[kind] * len(message[2])
            elif kind in FLAT_KINDS:
                total += _MESSAGE_WEIGHTS[kind]
            else:
                total += W_RESP
    for ready in state.pending:
        total += W_READY * len(ready)
    for actions in state.mshr:
        if actions:
            total += W_FILL
        for action in actions:
            total += W_RESPOND if action[0] == "respond" else W_LOCAL
    return total


# ----------------------------------------------------------------------
def state_violations(model: ProtocolModel, state: State) -> List[str]:
    """Bookkeeping-soundness violations of one state."""
    violations: List[str] = []
    for sb in range(model.num_subblocks):
        if state.mshr[sb] and state.cache[sb] != ABSENT:
            violations.append(
                f"single_owner: sb{sb} is resident at its home while a "
                f"next-level fill is still in flight"
            )
    carriers = [0] * len(model.program)
    for queue in state.queues:
        for message in queue:
            if message[0] in FLAT_KINDS:
                carriers[message[2]] += 1
            else:  # req_ld / fwd_ld / resp all carry an op tuple
                for op in message[2]:
                    carriers[op] += 1
    for ready in state.pending:
        for message in ready:
            for op in message[2]:
                carriers[op] += 1
    for actions in state.mshr:
        for action in actions:
            carriers[action[-1]] += 1
    for op in model.program:
        status = state.ops[op.index][0]
        count = carriers[op.index]
        if status == INFLIGHT and count != 1:
            violations.append(
                f"single_carrier: in-flight {op.label} is carried by "
                f"{count} protocol artifacts (want exactly 1)"
            )
        elif status != INFLIGHT and count != 0:
            violations.append(
                f"single_carrier: {'completed' if status == COMPLETE else 'unissued'} "
                f"{op.label} still appears in {count} protocol artifacts"
            )
    return violations


def edge_violations(
    transition_name: str, measure_before: int, measure_after: int
) -> List[str]:
    """Watchdog-consistency check for one fired transition."""
    if transition_name.startswith("issue"):
        if measure_after > measure_before + MAX_ISSUE_DELTA:
            return [
                f"watchdog_progress: issue transition {transition_name} "
                f"grew the drain measure by "
                f"{measure_after - measure_before} (> {MAX_ISSUE_DELTA})"
            ]
        return []
    if measure_after >= measure_before:
        return [
            f"watchdog_progress: {transition_name} did not decrease the "
            f"drain measure ({measure_before} -> {measure_after}); a "
            f"cycle of such steps would livelock the drain"
        ]
    return []


def event_violations(
    model: ProtocolModel, events: List[Event], disciplined: bool
) -> Tuple[List[str], int]:
    """Observation-safety violations of one transition's events.

    Returns ``(violations, races)`` where races counts stale/future
    observations in *undisciplined* programs (legal for free scheduling,
    and evidence the model can express the hazard at all).
    """
    violations: List[str] = []
    races = 0
    for event in events:
        if event[0] == "observe":
            _tag, op_index, observed, expected = event
            if observed == expected:
                continue
            if not disciplined:
                races += 1
                continue
            kind = "no_stale_read" if observed < expected else "no_future_read"
            op = model.program[op_index]
            violations.append(
                f"{kind}: {op.label} observed version {observed} but the "
                f"last program-order store left version {expected}"
            )
        elif event[0] == "apply" and event[4]:
            _tag, sb, version, previous, _inverted = event
            if not disciplined:
                races += 1
                continue
            violations.append(
                f"store_order: version {version} reached sb{sb} after "
                f"younger version {previous} (program order inverted)"
            )
    return violations, races


def terminal_violations(model: ProtocolModel, state: State) -> List[str]:
    """Deadlock check for a state with no enabled transitions."""
    problems: List[str] = []
    stuck = [
        model.program[i].label
        for i, (status, _v) in enumerate(state.ops)
        if status != COMPLETE
    ]
    if stuck:
        problems.append("incomplete ops: " + ", ".join(stuck))
    if any(state.queues):
        problems.append("undelivered messages")
    if any(state.pending):
        problems.append("unsent responses")
    if any(state.mshr):
        problems.append("open MSHR entries")
    if problems:
        return ["deadlock: quiescence unreachable — " + "; ".join(problems)]
    return []


def unissued_count(state: State) -> int:
    return sum(1 for status, _v in state.ops if status == UNISSUED)
