"""Conformance bridge: the simulator vs. the protocol model, step by step.

The model checker (:mod:`repro.check.explorer`) proves properties of the
*model*; this module pins the model to the *simulator* so those proofs
transfer.  It drives a real :class:`~repro.sim.memory.MemorySystem`
through small programs, captures the structured trace events the memory
system emits, maps every event onto one model transition, and replays
that transition sequence through :class:`~repro.check.model.ProtocolModel`
— asserting at every step that

* the transition the simulator took is *enabled* in the model (the
  simulator never does anything the model cannot);
* the message/action the simulator consumed is exactly the one at the
  model's corresponding FIFO head (per-source in-order delivery holds);
* observation and store-application payloads agree version for version;
* the drained final states agree — subblock versions, residency, and
  completion of every access.

A battery of programs and issue schedules (:func:`run_conformance`)
covers every core transition of the model; the run fails loudly if any
transition was never exercised, so the correspondence cannot silently
rot as either side evolves.

Version encoding: the simulator stamps stores with ``(iteration, seq)``
pairs; the driver runs a single iteration and stamps store ``op_i`` with
``(0, i + 1)``, so simulator version ``(0, v)`` is model version ``v``
and ``None`` (initial contents) is model version ``0``.
"""

from __future__ import annotations

import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.arch.config import MachineConfig
from repro.errors import CheckError
from repro.check.model import (
    ABSENT,
    COMPLETE,
    CORE_TRANSITIONS,
    ModelOp,
    ProtocolModel,
    State,
    Transition,
    enumerate_programs,
)
from repro.sim.memory import MemorySystem
from repro.sim.stats import SimStats

#: simulator trace kinds that open a new model transition (everything
#: else — observe/apply/fill-time send_response — is that transition's
#: payload).
_DRIVER_KINDS = frozenset({
    "local", "remote_issue", "home_request", "deliver_response", "fill",
    "forward_issue", "forward", "owner_request",
})

_LOCAL_NAMES = {
    "hit": "issue_local_hit",
    "miss": "issue_local_miss",
    "combine": "issue_local_combine",
}
_REQUEST_NAMES = {
    "hit": "deliver_request_hit",
    "miss": "deliver_request_miss",
    "combine": "deliver_request_combine",
}
_FORWARD_NAMES = {
    "hit": "deliver_forward_hit",
    "miss": "deliver_forward_miss",
    "combine": "deliver_forward_combine",
}


def conformance_machine(num_clusters: int = 2) -> MachineConfig:
    """The machine the bridge drives: baseline geometry, ``num_clusters``
    clusters.  The cache (32-set modules) never evicts for the handful of
    blocks a model program touches, matching the model's no-eviction
    abstraction."""
    machine = MachineConfig(
        name=f"conformance-{num_clusters}c", num_clusters=num_clusters
    )
    if (machine.cache.block_bytes // machine.interleave_bytes) % num_clusters:
        raise CheckError(
            "conformance address scheme needs a whole number of interleave "
            "rounds per block"
        )
    return machine


def subblock_address(machine: MachineConfig, sb: int) -> int:
    """The one address the driver uses for model subblock ``sb``: inside
    block ``sb``, at the interleave unit owned by cluster ``sb % N`` — so
    block id and home cluster reproduce the model's mapping exactly."""
    return (
        sb * machine.cache.block_bytes
        + (sb % machine.num_clusters) * machine.interleave_bytes
    )


def _norm(version: Optional[Tuple[int, int]]) -> int:
    """Simulator version -> model version (see the module docstring)."""
    return 0 if version is None else version[1]


@dataclass
class ConformanceReport:
    """Aggregate result of one :func:`run_conformance` battery."""

    num_clusters: int
    num_subblocks: int
    model: str = "snooping"
    #: the checked model's core transition names (its coverage target)
    core: Tuple[str, ...] = CORE_TRANSITIONS
    runs: int = 0
    programs: int = 0
    transitions: int = 0
    elapsed_seconds: float = 0.0
    coverage: Dict[str, int] = field(default_factory=dict)

    def missing_transitions(self) -> List[str]:
        return [t for t in self.core if not self.coverage.get(t)]

    @property
    def ok(self) -> bool:
        return not self.missing_transitions()

    def summary(self) -> str:
        lines = [
            f"configuration      : {self.num_clusters} clusters x "
            f"{self.num_subblocks} subblocks, model={self.model}",
            f"programs driven    : {self.programs} ({self.runs} runs)",
            f"transitions agreed : {self.transitions}",
            "transition coverage:",
        ]
        for name in self.core:
            lines.append(f"  {name:24s} {self.coverage.get(name, 0)}")
        missing = self.missing_transitions()
        verdict = (
            "every core transition exercised, no disagreements"
            if not missing
            else "NEVER exercised: " + ", ".join(missing)
        )
        lines.append(f"elapsed            : {self.elapsed_seconds:.2f}s")
        lines.append(f"verdict            : {verdict}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
class ConformanceBridge:
    """Replays one simulator trace through the model."""

    def __init__(self, model: ProtocolModel) -> None:
        self.model = model
        self.state: State = model.initial_state()
        self.coverage: Dict[str, int] = {}
        self.transitions = 0
        self.steps: List[str] = []  # replayed transitions, for diagnostics

    # ------------------------------------------------------------------
    def _fail(self, problem: str) -> None:
        lines = [
            f"conformance failure: {problem}",
            "program : " + "; ".join(op.label for op in self.model.program),
            "model   : " + self.model.describe_state(self.state),
            f"replayed: {len(self.steps)} transitions",
        ]
        for step in self.steps[-6:]:
            lines.append(f"  ... {step}")
        raise CheckError("\n".join(lines))

    def _decode_op(self, kind: str, ref) -> ModelOp:
        """Map a simulator event's op reference (a load's iid, a store's
        version stamp) back to the program op."""
        index = ref if kind == "load" else ref[1] - 1
        if not 0 <= index < len(self.model.program):
            self._fail(f"simulator referenced unknown op {ref!r}")
        op = self.model.program[index]
        if op.kind != kind:
            self._fail(f"simulator treated {op.label} as a {kind}")
        return op

    # ------------------------------------------------------------------
    def _step(
        self, name: str, args: Tuple, payload: Sequence[tuple]
    ) -> None:
        """Fire one model transition and compare its events with the
        simulator payload that accompanied the step."""
        transition = Transition(name, args)
        if transition not in self.model.enabled(self.state):
            self._fail(
                f"simulator step {name}{args} is not enabled in the model"
            )
        self.state, events = self.model.apply(self.state, transition)
        self.transitions += 1
        self.coverage[name] = self.coverage.get(name, 0) + 1
        self.steps.append(f"{name}{args}")

        model_seq = [
            ("observe", e[1], e[2]) if e[0] == "observe"
            else ("apply", e[1], e[2], e[4])
            for e in events
        ]
        sim_seq = []
        for event in payload:
            if event[0] == "observe":
                _tag, iid, _iteration, observed = event
                sim_seq.append(("observe", iid, _norm(observed)))
            elif event[0] == "apply":
                _tag, block, _home, _addr, version, inverted = event
                sim_seq.append(("apply", block, _norm(version), inverted))
            # fill-time ("send_response", ..., deferred=False) events are
            # part of the fill transition in the model (the response goes
            # straight onto the bus); nothing to compare.
        if model_seq != sim_seq:
            self._fail(
                f"payload mismatch at {name}{args}: "
                f"model {model_seq} vs simulator {sim_seq}"
            )

    # ------------------------------------------------------------------
    def replay(self, events: Sequence[tuple]) -> None:
        """Map the whole simulator trace onto model transitions."""
        cursor = 0
        total = len(events)
        while cursor < total:
            event = events[cursor]
            kind = event[0]
            is_driver = kind in _DRIVER_KINDS or (
                kind == "send_response" and event[-1]  # deferred pop
            )
            if not is_driver:
                self._fail(f"orphan payload event {event!r}")
            cursor += 1
            payload_start = cursor
            while cursor < total:
                nxt = events[cursor]
                if nxt[0] in _DRIVER_KINDS or (
                    nxt[0] == "send_response" and nxt[-1]
                ):
                    break
                cursor += 1
            payload = events[payload_start:cursor]
            self._dispatch(event, payload)

    def _dispatch(self, event: tuple, payload: Sequence[tuple]) -> None:
        kind = event[0]
        if kind == "local":
            _tag, cluster, block, opkind, ref, disposition = event
            op = self._decode_op(opkind, ref)
            if op.cluster != cluster or op.subblock != block:
                self._fail(f"{op.label} issued as {event!r}")
            self._step(_LOCAL_NAMES[disposition], (op.index,), payload)
        elif kind == "remote_issue":
            _tag, cluster, home, block, opkind, ref = event
            op = self._decode_op(opkind, ref)
            if (
                op.cluster != cluster
                or op.subblock != block
                or self.model.home(block) != home
            ):
                self._fail(f"{op.label} issued as {event!r}")
            self._step("issue_remote", (op.index,), payload)
        elif kind == "home_request":
            _tag, home, src, block, opkind, ref, disposition = event
            op = self._decode_op(opkind, ref)
            expected_head = (
                ("req_ld", block, (op.index,))
                if op.is_load
                else ("req_st", block, op.index)
            )
            queue = self.state.queues[src]
            if not queue or queue[0] != expected_head:
                self._fail(
                    f"home c{home} served {expected_head} from c{src} but "
                    f"the model FIFO head is "
                    f"{queue[0] if queue else 'empty'}"
                )
            self._step(_REQUEST_NAMES[disposition], (src, 0), payload)
        elif kind == "forward_issue":
            _tag, cluster, block, opkind, ref = event
            op = self._decode_op(opkind, ref)
            if (
                op.cluster != cluster
                or op.subblock != block
                or self.model.home(block) != cluster
                or self.model.data_home(block) == cluster
            ):
                self._fail(f"{op.label} issued as {event!r}")
            self._step("issue_forward", (op.index,), payload)
        elif kind == "forward":
            _tag, home, owner, src, block, opkind, ref = event
            op = self._decode_op(opkind, ref)
            if (
                self.model.home(block) != home
                or self.model.data_home(block) != owner
            ):
                self._fail(f"misrouted forward {event!r}")
            expected_head = (
                ("req_ld", block, (op.index,))
                if op.is_load
                else ("req_st", block, op.index)
            )
            queue = self.state.queues[src]
            if not queue or queue[0] != expected_head:
                self._fail(
                    f"home c{home} forwarded {expected_head} from c{src} "
                    f"but the model FIFO head is "
                    f"{queue[0] if queue else 'empty'}"
                )
            self._step("deliver_request_forward", (src, 0), payload)
        elif kind == "owner_request":
            _tag, owner, src, block, opkind, ref, disposition = event
            op = self._decode_op(opkind, ref)
            if self.model.data_home(block) != owner:
                self._fail(f"forward served away from the owner: {event!r}")
            expected_head = (
                ("fwd_ld", block, (op.index,), src)
                if op.is_load
                else ("fwd_st", block, op.index)
            )
            # The forward sits in the FIFO of whoever sent it: the
            # requester itself (issue_forward) or the directory home
            # (deliver_request_forward).
            for source in dict.fromkeys((src, self.model.home(block))):
                queue = self.state.queues[source]
                if queue and queue[0] == expected_head:
                    self._step(
                        _FORWARD_NAMES[disposition], (source, 0), payload
                    )
                    return
            self._fail(
                f"owner c{owner} served {expected_head} but no model FIFO "
                f"has it at its head"
            )
        elif kind == "send_response":
            _tag, home, block, iids, _deferred = event
            ready = self.state.pending[home]
            if not ready or ready[0][1] != block or ready[0][2] != iids:
                self._fail(
                    f"home c{home} sent response for sb{block} ops {iids} "
                    f"but the model ready buffer head is "
                    f"{ready[0] if ready else 'empty'}"
                )
            self._step("send_response", (home,), payload)
        elif kind == "deliver_response":
            _tag, requester, block, iids = event
            home = self.model.data_home(block)
            queue = self.state.queues[home]
            if (
                not queue
                or queue[0][0] != "resp"
                or queue[0][1] != block
                or queue[0][2] != iids
            ):
                self._fail(
                    f"c{requester} received response for sb{block} ops "
                    f"{iids} but the model FIFO head is "
                    f"{queue[0] if queue else 'empty'}"
                )
            self._step("deliver_response", (home,), payload)
        else:  # fill
            _tag, cluster, block = event
            if self.model.data_home(block) != cluster:
                self._fail(f"fill of sb{block} landed at cluster {cluster}")
            self._step("fill_complete", (block,), payload)

    # ------------------------------------------------------------------
    def finish(
        self,
        memory: MemorySystem,
        machine: MachineConfig,
        address_fn=None,
    ) -> None:
        """Compare the drained final states of simulator and model.

        ``address_fn(machine, sb)`` maps model subblocks to the driven
        addresses (default: the snooping scheme of
        :func:`subblock_address`)."""
        if address_fn is None:
            address_fn = subblock_address
        for op in self.model.program:
            if self.state.ops[op.index][0] != COMPLETE:
                self._fail(
                    f"{op.label} never completed in the model although the "
                    f"simulator drained"
                )
        if any(self.state.queues) or any(self.state.pending) or any(
            self.state.mshr
        ):
            self._fail(
                "model still holds in-flight work after the simulator "
                "drained"
            )
        for sb in range(self.model.num_subblocks):
            home = self.model.data_home(sb)
            addr = address_fn(machine, sb)
            # Reaching into the memory system's version book is the whole
            # point of the bridge: it is the simulator's ground truth.
            sim_version = _norm(
                memory._versions.get((sb, home), {}).get(addr)
            )
            if sim_version != self.state.versions[sb]:
                self._fail(
                    f"final version of sb{sb} differs: simulator has "
                    f"v{sim_version}, model has v{self.state.versions[sb]}"
                )
            present = memory.modules[home].contains(sb)
            if present != (self.state.cache[sb] != ABSENT):
                self._fail(
                    f"final residency of sb{sb} differs: simulator "
                    f"{'holds' if present else 'lacks'} it, model says "
                    f"{'present' if self.state.cache[sb] != ABSENT else 'absent'}"
                )


# ----------------------------------------------------------------------
# Driving the simulator
# ----------------------------------------------------------------------
def run_program(
    program: Tuple[ModelOp, ...],
    schedule: Sequence[int],
    machine: Optional[MachineConfig] = None,
    num_subblocks: Optional[int] = None,
    max_cycles: int = 10_000,
    model: str = "snooping",
    memory_factory=None,
) -> ConformanceBridge:
    """Drive one program through the simulator at the given issue cycles
    and replay its trace through the model.

    ``schedule[i]`` is the cycle op ``i`` issues; within one (cluster,
    subblock) chain cycles must be non-decreasing in program order (the
    in-order memory unit the model's issue guard encodes).

    ``model`` selects which registered memory model is driven and which
    check model replays it; ``memory_factory(machine, stats, trace)``
    overrides how the memory system is built (by default the model's
    registry ``build()``), e.g. to bridge an instrumented subclass.
    """
    from repro.check.variants import named_check_model
    from repro.sim.models import named_model

    model_impl = named_model(model)
    check_cls = named_check_model(model)
    if machine is None:
        machine = conformance_machine()
    if num_subblocks is None:
        num_subblocks = max(op.subblock for op in program) + 1
    if len(schedule) != len(program):
        raise CheckError("schedule and program lengths differ")

    events: List[tuple] = []
    completed: set = set()
    if memory_factory is None:
        memory = model_impl.build(machine, SimStats(), trace=events.append)
    else:
        memory = memory_factory(machine, SimStats(), events.append)
    by_cycle: Dict[int, List[ModelOp]] = defaultdict(list)
    for op, cycle in zip(program, schedule):
        by_cycle[cycle].append(op)
    last_issue = max(schedule)

    cycle = 0
    while True:
        memory.tick_begin(cycle)
        for op in by_cycle.get(cycle, ()):
            addr = model_impl.conformance_address(machine, op.subblock)
            if op.is_load:
                memory.load(
                    op.cluster, addr, machine.interleave_bytes,
                    op.index, 0,
                    lambda _c, index=op.index: completed.add(index),
                    cycle,
                )
            else:
                memory.store(
                    op.cluster, addr, machine.interleave_bytes,
                    op.index, 0, (0, op.index + 1), False, cycle,
                )
        memory.tick_end(cycle)
        if cycle >= last_issue and memory.quiescent():
            break
        cycle += 1
        if cycle > max_cycles:
            raise CheckError(
                f"simulator did not drain within {max_cycles} cycles for "
                "program " + "; ".join(op.label for op in program)
            )

    loads = {op.index for op in program if op.is_load}
    if completed != loads:
        raise CheckError(
            f"loads {sorted(loads - completed)} never completed in the "
            "simulator"
        )

    check_model = check_cls(machine.num_clusters, num_subblocks, program)
    bridge = ConformanceBridge(check_model)
    bridge.replay(events)
    bridge.finish(
        memory, machine, address_fn=model_impl.conformance_address
    )
    return bridge


def issue_schedules(length: int) -> List[Tuple[int, ...]]:
    """The issue timings each program is driven under.  Together they hit
    every disposition: back-to-back issue (miss + combine flows), small
    stagger (requests racing fills) and wide stagger (everything resident
    by the next access — the hit flows)."""
    return [
        (0,) * length,
        tuple(range(length)),
        tuple(3 * i for i in range(length)),
        tuple(25 * i for i in range(length)),
    ]


def run_conformance(
    num_clusters: int = 2,
    num_subblocks: int = 2,
    op_counts: Iterable[int] = (2, 3),
    programs: Optional[Iterable[Tuple[ModelOp, ...]]] = None,
    schedules: Optional[List[Tuple[int, ...]]] = None,
    model: str = "snooping",
    memory_factory=None,
) -> ConformanceReport:
    """Run the full battery; raises :class:`~repro.errors.CheckError` on
    the first simulator/model disagreement, returns the coverage report
    otherwise (``report.ok`` asserts every core transition fired)."""
    from repro.check.variants import named_check_model

    machine = conformance_machine(num_clusters)
    report = ConformanceReport(
        num_clusters=num_clusters,
        num_subblocks=num_subblocks,
        model=model,
        core=named_check_model(model).core_transitions(),
    )
    started = time.perf_counter()
    if programs is None:
        programs = [
            program
            for count in op_counts
            for program in enumerate_programs(
                num_clusters, num_subblocks, count
            )
        ]
    for program in programs:
        report.programs += 1
        for schedule in (schedules or issue_schedules(len(program))):
            bridge = run_program(
                program, schedule, machine=machine,
                num_subblocks=num_subblocks, model=model,
                memory_factory=memory_factory,
            )
            report.runs += 1
            report.transitions += bridge.transitions
            for name, count in bridge.coverage.items():
                report.coverage[name] = report.coverage.get(name, 0) + count
    report.elapsed_seconds = time.perf_counter() - started
    return report
