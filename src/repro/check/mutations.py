"""Seeded protocol mutations — the "does the checker pay for itself" set.

Each mutation is a deliberate bug wired into the guarded-action model
(:mod:`repro.check.model` branches on ``ProtocolModel.mutation``).  The
regression harness (``tests/test_check_mutations.py``) asserts that the
exhaustive explorer produces a counterexample for every one of them; if
a future edit to the model or the invariants makes any mutation pass,
the checker has lost the power to catch that class of bug.

``stale_combining`` is a re-injection of the real stale-read bug found
by fuzzing in an early revision of the simulator: remote loads combined
onto an in-flight same-subblock request and were served at the *older*
request's serialization point, missing stores that program order placed
between the two loads (see the ``_remote_load`` docstring in
:mod:`repro.sim.memory`, which documents why the fixed protocol never
combines at the requester side).
"""

from __future__ import annotations

from typing import Dict

#: mutation name -> what the seeded bug does
MUTATIONS: Dict[str, str] = {
    "stale_combining": (
        "remote loads merge onto an in-flight same-subblock request and "
        "are served at its serialization point (the original fuzzed "
        "stale-read bug)"
    ),
    "dropped_invalidation": (
        "a store deferred in a home MSHR entry is dropped at fill time: "
        "the freshly installed subblock never learns about the write"
    ),
    "reordered_home_arrival": (
        "the fabric may deliver any queued request, not the per-source "
        "FIFO head — breaking the in-order arrival property MDC relies on"
    ),
    "premature_combine": (
        "a request that reaches a home mid-fill is served against the "
        "current contents instead of joining the MSHR entry, jumping "
        "the fill's serialization order"
    ),
}
