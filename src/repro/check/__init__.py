"""Static checking: protocol model checking and schedule linting.

``repro.check`` is the correctness backbone of the memory system: instead
of *sampling* behaviours the way the simulator-based tests do, it

* models the coherence protocol as a **guarded-action transition system**
  (:mod:`repro.check.model`) small enough to enumerate exhaustively,
* **BFS-explores** every reachable state of small configurations and
  checks safety/progress invariants, producing minimal counterexample
  traces on violation (:mod:`repro.check.explorer`,
  :mod:`repro.check.invariants`),
* keeps the model honest with a **conformance bridge** that drives the
  live :class:`~repro.sim.memory.MemorySystem` and replays its event
  trace through the model transition by transition
  (:mod:`repro.check.conformance`), and
* post-validates compiler output without simulation via the **static
  schedule verifier** (:mod:`repro.check.schedule_lint`).

Seeded protocol mutations (including a re-injection of the stale-read
bug fixed in an early revision) live in :mod:`repro.check.mutations` and
prove the checker can actually find the class of bug it exists for.

See ``docs/checking.md`` for the model, the invariants and how to read a
counterexample trace.
"""

from repro.check.explorer import CheckReport, Counterexample, check_protocol
from repro.check.model import ModelOp, ProtocolModel, enumerate_programs
from repro.check.mutations import MUTATIONS
from repro.check.schedule_lint import LintFinding, lint_compilation
from repro.check.variants import CHECK_MODELS, named_check_model

__all__ = [
    "CHECK_MODELS",
    "CheckReport",
    "Counterexample",
    "LintFinding",
    "MUTATIONS",
    "ModelOp",
    "ProtocolModel",
    "check_protocol",
    "enumerate_programs",
    "lint_compilation",
    "named_check_model",
]
