"""Exhaustive BFS exploration of the protocol model's state space.

For every program over a small configuration (the default — 2 clusters,
2 subblocks, 3 ops — is the ISSUE's "small config" target), the explorer
enumerates the *complete* reachable state space of
:class:`~repro.check.model.ProtocolModel` breadth-first and checks every
invariant of :mod:`repro.check.invariants` on every state, edge and
event.  BFS order makes the first violation found a minimal-depth one,
and parent pointers reconstruct the full transition trace leading to it
— the counterexample format ``docs/checking.md`` explains how to read.

State spaces here are tiny by model-checking standards (tens of
thousands of states across all programs) but exhaustive where the
simulator tests are one interleaving each: every bus-delivery order,
every fill timing, every issue interleaving consistent with per-chain
program order is covered.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.check.invariants import (
    edge_violations,
    event_violations,
    measure,
    state_violations,
    terminal_violations,
)
from repro.check.model import (
    ModelOp,
    ProtocolModel,
    State,
    Transition,
    enumerate_programs,
    is_disciplined,
)


@dataclass
class Counterexample:
    """A minimal trace from the initial state to an invariant violation."""

    program: Tuple[ModelOp, ...]
    mutation: Optional[str]
    invariant: str  # e.g. "no_stale_read"
    violation: str  # full violation message
    trace: List[str]  # rendered transitions, initial state first
    final_state: str

    def format(self) -> str:
        lines = [
            f"invariant violated : {self.invariant}",
            f"  {self.violation}",
            "program            : "
            + "; ".join(op.label for op in self.program),
        ]
        if self.mutation:
            lines.append(f"mutation           : {self.mutation}")
        lines.append(f"trace ({len(self.trace)} steps):")
        for i, step in enumerate(self.trace, 1):
            lines.append(f"  {i:2d}. {step}")
        lines.append(f"final state        : {self.final_state}")
        return "\n".join(lines)


@dataclass
class CheckReport:
    """Aggregate result of one :func:`check_protocol` run."""

    num_clusters: int
    num_subblocks: int
    op_count: int
    mutation: Optional[str]
    model: str = "snooping"
    programs: int = 0
    disciplined_programs: int = 0
    states: int = 0
    transitions: int = 0
    races: int = 0  # stale/future observations in free (undisciplined) programs
    elapsed_seconds: float = 0.0
    truncated: bool = False
    counterexamples: List[Counterexample] = field(default_factory=list)
    transition_coverage: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.counterexamples

    def summary(self) -> str:
        verdict = (
            "no invariant violations"
            if self.ok
            else f"{len(self.counterexamples)} invariant violation(s)"
        )
        lines = [
            f"configuration      : {self.num_clusters} clusters x "
            f"{self.num_subblocks} subblocks x {self.op_count} ops"
            + (f", model={self.model}" if self.model != "snooping" else "")
            + (f", mutation={self.mutation}" if self.mutation else ""),
            f"programs explored  : {self.programs} "
            f"({self.disciplined_programs} disciplined)"
            + (" [truncated by --max-states]" if self.truncated else ""),
            f"reachable states   : {self.states}",
            f"transitions fired  : {self.transitions}",
            f"free-mode races    : {self.races} "
            "(stale/future observations under free scheduling; expected)",
            f"elapsed            : {self.elapsed_seconds:.2f}s",
            f"verdict            : {verdict}",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
def _reconstruct(
    model: ProtocolModel,
    parents: Dict[State, Optional[Tuple[State, Transition]]],
    state: State,
    extra: Optional[Transition],
    final_state: State,
    violation: str,
) -> Counterexample:
    steps: List[str] = []
    cursor: Optional[State] = state
    while True:
        link = parents[cursor]
        if link is None:
            break
        cursor, transition = link
        steps.append(
            f"{transition.name} "
            f"[{model.describe_transition(transition)}]"
        )
    steps.reverse()
    if extra is not None:
        steps.append(
            f"{extra.name} [{model.describe_transition(extra)}]"
        )
    return Counterexample(
        program=model.program,
        mutation=model.mutation,
        invariant=violation.split(":", 1)[0],
        violation=violation,
        trace=steps,
        final_state=model.describe_state(final_state),
    )


def explore_program(
    model: ProtocolModel,
    max_states: Optional[int] = None,
    coverage: Optional[Dict[str, int]] = None,
) -> Tuple[int, int, int, bool, Optional[Counterexample]]:
    """Exhaustively explore one program.

    Returns ``(states, transitions, races, truncated, counterexample)``;
    exploration stops at the first violation (BFS order keeps it
    minimal) or when ``max_states`` distinct states were visited.
    """
    disciplined = is_disciplined(model.program)
    start = model.initial_state()
    parents: Dict[State, Optional[Tuple[State, Transition]]] = {start: None}
    frontier = deque([start])
    transitions = 0
    races = 0
    truncated = False

    violations = state_violations(model, start)
    if violations:
        return 1, 0, 0, False, _reconstruct(
            model, parents, start, None, start, violations[0]
        )

    while frontier:
        state = frontier.popleft()
        enabled = model.enabled(state)
        if not enabled:
            violations = terminal_violations(model, state)
            if violations:
                return (
                    len(parents), transitions, races, truncated,
                    _reconstruct(model, parents, state, None, state,
                                 violations[0]),
                )
            continue
        measure_before = measure(state)
        for transition in enabled:
            successor, events = model.apply(state, transition)
            transitions += 1
            if coverage is not None:
                coverage[transition.name] = (
                    coverage.get(transition.name, 0) + 1
                )
            violations, new_races = event_violations(
                model, events, disciplined
            )
            races += new_races
            if not violations:
                violations = edge_violations(
                    transition.name, measure_before, measure(successor)
                )
            if not violations and successor not in parents:
                violations = state_violations(model, successor)
            if violations:
                return (
                    len(parents), transitions, races, truncated,
                    _reconstruct(model, parents, state, transition,
                                 successor, violations[0]),
                )
            if successor not in parents:
                parents[successor] = (state, transition)
                if max_states is not None and len(parents) >= max_states:
                    truncated = True
                    return len(parents), transitions, races, truncated, None
                frontier.append(successor)

    return len(parents), transitions, races, truncated, None


# ----------------------------------------------------------------------
def check_protocol(
    num_clusters: int = 2,
    num_subblocks: int = 2,
    op_count: int = 3,
    mutation: Optional[str] = None,
    max_states: Optional[int] = None,
    stop_on_violation: bool = True,
    disciplined_only: bool = False,
    programs: Optional[Iterable[Tuple[ModelOp, ...]]] = None,
    model: str = "snooping",
) -> CheckReport:
    """Exhaustively check every program of the configuration.

    ``max_states`` bounds the *total* states across all programs (the CI
    smoke budget); ``disciplined_only`` restricts the sweep to programs
    the coherence solutions actually produce (faster mutation hunting);
    ``programs`` substitutes an explicit program list for the full
    enumeration; ``model`` selects the memory model's check model
    (:mod:`repro.check.variants`).
    """
    from repro.check.variants import named_check_model

    model_cls = named_check_model(model)
    report = CheckReport(
        num_clusters=num_clusters,
        num_subblocks=num_subblocks,
        op_count=op_count,
        mutation=mutation,
        model=model,
    )
    started = time.perf_counter()
    if programs is None:
        programs = enumerate_programs(num_clusters, num_subblocks, op_count)
    for program in programs:
        disciplined = is_disciplined(program)
        if disciplined_only and not disciplined:
            continue
        budget: Optional[int] = None
        if max_states is not None:
            budget = max_states - report.states
            if budget <= 0:
                report.truncated = True
                break
        model = model_cls(
            num_clusters, num_subblocks, program, mutation=mutation
        )
        states, transitions, races, truncated, counterexample = (
            explore_program(model, budget, report.transition_coverage)
        )
        report.programs += 1
        report.disciplined_programs += int(disciplined)
        report.states += states
        report.transitions += transitions
        report.races += races
        report.truncated = report.truncated or truncated
        if counterexample is not None:
            report.counterexamples.append(counterexample)
            if stop_on_violation:
                break
    report.elapsed_seconds = time.perf_counter() - started
    return report
