"""Guarded-action model of the coherence protocol.

This is the protocol of :mod:`repro.sim.memory` re-stated as a small,
declarative transition system in the style of guarded action languages:
a state is an immutable tuple, and every behaviour is one entry of
:data:`TRANSITION_TABLE` — a *guard* over the state plus an *action*
producing the successor.  Nothing here executes cycles; the model is
**untimed**.  Time is replaced by non-determinism: any enabled transition
may fire next.  The per-source FIFO queues are the only ordering the
model keeps, because in-order same-source delivery is the one hardware
property the MDC/DDGT coherence solutions rely on (section 3.2 of the
paper; :mod:`repro.sim.bus`).  Every cycle-accurate simulator run is one
interleaving of this system, so a property proved over all interleavings
holds for the simulator — the conformance bridge
(:mod:`repro.check.conformance`) pins the correspondence.

The abstraction, flow by flow (mirroring ``MemorySystem``):

* a *subblock* ``sb`` lives at its home cluster ``sb % num_clusters``
  and holds a *version* — 0 initially, ``i + 1`` after store ``op_i``
  applied (versions replace data values, exactly as in the simulator);
* **local hit**: access completes against the home module immediately;
* **local miss**: an MSHR entry opens and a next-level fill is pending;
  further local accesses *combine* into the entry;
* **remote access**: a request message enters the requester's FIFO
  queue; at delivery the home serves it (hit), opens an MSHR entry
  (miss) or combines into one;
* **responses**: a served read observes the subblock *at the home* (its
  serialization point) and the response travels back through the home's
  FIFO queue; probe-hit responses first wait in a per-home "ready"
  buffer (the simulator's deferred sends) before entering the queue;
* **fill**: the MSHR entry replays its deferred actions in arrival
  order, exactly like ``_HomeWaiter``.

A *program* is a tuple of :class:`ModelOp`; the model enforces that each
cluster issues ops touching the same subblock in program order (what an
in-order memory unit plus the scheduler's dependence edges guarantee),
while everything else interleaves freely.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Callable,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
)

# Cache-line (subblock) states at the home module.
ABSENT, CLEAN, DIRTY = 0, 1, 2

# Operation status.
UNISSUED, INFLIGHT, COMPLETE = 0, 1, 2

#: observed-version placeholder for "nothing observed (yet)".
NO_VERSION = -1

#: Model events emitted by actions, compared against simulator events by
#: the conformance bridge:
#:   ("observe", op_index, observed_version, expected_version)
#:   ("apply", subblock, version, previous_version, inverted)
Event = Tuple


@dataclass(frozen=True)
class ModelOp:
    """One memory access of the modelled program."""

    index: int
    cluster: int
    kind: str  # "load" | "store"
    subblock: int

    @property
    def is_load(self) -> bool:
        return self.kind == "load"

    @property
    def label(self) -> str:
        k = "ld" if self.kind == "load" else "st"
        return f"op{self.index}:{k} c{self.cluster} sb{self.subblock}"


class State(NamedTuple):
    """One protocol state.  Every field is a tuple, so states hash and
    compare by value — the explorer's visited set depends on that."""

    #: per subblock: ABSENT / CLEAN / DIRTY at its home module
    cache: Tuple[int, ...]
    #: per subblock: last applied store version (0 = initial contents)
    versions: Tuple[int, ...]
    #: per subblock: deferred MSHR actions, in arrival order; non-empty
    #: iff a next-level fill is in flight for the subblock.  Actions:
    #:   ("store", op) | ("load", op) | ("respond", requester, op)
    mshr: Tuple[Tuple[tuple, ...], ...]
    #: per *source* cluster: FIFO of in-flight messages.  Messages:
    #:   ("req_ld", sb, (ops...)) | ("req_st", sb, op)
    #:   | ("resp", sb, (ops...), version)
    queues: Tuple[Tuple[tuple, ...], ...]
    #: per *home* cluster: probe-hit responses ready to enter the queue
    #: (the simulator's deferred sends), in ready order
    pending: Tuple[Tuple[tuple, ...], ...]
    #: per op: (status, observed version or NO_VERSION)
    ops: Tuple[Tuple[int, int], ...]


class Transition(NamedTuple):
    """One enabled transition instance: a table entry plus its arguments."""

    name: str
    args: Tuple


# ----------------------------------------------------------------------
# Tuple-of-tuples update helpers
# ----------------------------------------------------------------------
def _set(t: tuple, i: int, v) -> tuple:
    return t[:i] + (v,) + t[i + 1:]


def _append(t: tuple, i: int, v) -> tuple:
    return _set(t, i, t[i] + (v,))


def _pop(t: tuple, i: int, pos: int = 0) -> tuple:
    inner = t[i]
    return _set(t, i, inner[:pos] + inner[pos + 1:])


# ----------------------------------------------------------------------
# The model
# ----------------------------------------------------------------------
class ProtocolModel:
    """The guarded-action system for one program on one small machine.

    ``mutation`` selects a seeded protocol bug from
    :mod:`repro.check.mutations` (``None`` = the faithful protocol).

    Subclasses (:mod:`repro.check.variants`) model other memory models
    by overriding the placement hooks (:meth:`home`, :meth:`data_home`,
    :meth:`is_local`) and/or substituting their own ``TRANSITION_TABLE``
    class attribute; the state shape, the invariants and the explorer
    are shared.
    """

    #: The protocol's transition table.  Assigned after the module-level
    #: table is built (the actions are module functions); subclasses
    #: override it with their own tuple of :class:`GuardedAction`.
    TRANSITION_TABLE: Tuple["GuardedAction", ...] = ()

    @classmethod
    def table_by_name(cls) -> dict:
        """Name -> entry index of this class's table (cached per class)."""
        cached = cls.__dict__.get("_table_by_name")
        if cached is None:
            cached = {entry.name: entry for entry in cls.TRANSITION_TABLE}
            cls._table_by_name = cached
        return cached

    @classmethod
    def core_transitions(cls) -> Tuple[str, ...]:
        """Transition names of the faithful (unmutated) protocol."""
        return tuple(
            e.name for e in cls.TRANSITION_TABLE if e.mutation_only is None
        )

    def __init__(
        self,
        num_clusters: int,
        num_subblocks: int,
        program: Tuple[ModelOp, ...],
        mutation: Optional[str] = None,
    ) -> None:
        from repro.check.mutations import MUTATIONS

        if mutation is not None and mutation not in MUTATIONS:
            raise ValueError(
                f"unknown mutation {mutation!r}; expected one of "
                f"{sorted(MUTATIONS)}"
            )
        self.num_clusters = num_clusters
        self.num_subblocks = num_subblocks
        self.program = tuple(program)
        self.mutation = mutation
        #: expected observation of each load: the version written by the
        #: last program-order store to the same subblock before it.
        self._expected = {}
        last_store = {}
        for op in self.program:
            if op.is_load:
                self._expected[op.index] = last_store.get(op.subblock, 0)
            else:
                last_store[op.subblock] = op.index + 1

    # ------------------------------------------------------------------
    def home(self, sb: int) -> int:
        """The cluster requests for ``sb`` are sent to."""
        return sb % self.num_clusters

    def data_home(self, sb: int) -> int:
        """The cluster that actually holds ``sb`` — the serialization
        point.  Equal to :meth:`home` in the snooping protocol; the
        distributed-directory variant decouples the two."""
        return self.home(sb)

    def is_local(self, op: ModelOp) -> bool:
        return self.home(op.subblock) == op.cluster

    def expected_version(self, op_index: int) -> int:
        return self._expected[op_index]

    def initial_state(self) -> State:
        sbs = self.num_subblocks
        clusters = self.num_clusters
        return State(
            cache=(ABSENT,) * sbs,
            versions=(0,) * sbs,
            mshr=((),) * sbs,
            queues=((),) * clusters,
            pending=((),) * clusters,
            ops=((UNISSUED, NO_VERSION),) * len(self.program),
        )

    # ------------------------------------------------------------------
    def enabled(self, state: State) -> List[Transition]:
        """Every transition instance whose guard holds in ``state``."""
        out: List[Transition] = []
        for entry in type(self).TRANSITION_TABLE:
            if entry.mutation_only is not None and (
                entry.mutation_only != self.mutation
            ):
                continue
            for args in entry.instances(self, state):
                out.append(Transition(entry.name, args))
        return out

    def apply(
        self, state: State, transition: Transition
    ) -> Tuple[State, List[Event]]:
        """Fire ``transition``; returns the successor and its events."""
        entry = self.table_by_name()[transition.name]
        return entry.apply(self, state, transition.args)

    # ------------------------------------------------------------------
    # Rendering (counterexample traces)
    # ------------------------------------------------------------------
    def describe_transition(self, t: Transition) -> str:
        entry = self.table_by_name()[t.name]
        return entry.describe(self, t.args)

    def describe_state(self, state: State) -> str:
        parts = []
        names = {ABSENT: "absent", CLEAN: "clean", DIRTY: "dirty"}
        for sb in range(self.num_subblocks):
            bits = f"sb{sb}@c{self.data_home(sb)}={names[state.cache[sb]]}" \
                   f" v{state.versions[sb]}"
            if state.mshr[sb]:
                bits += " mshr=" + ",".join(
                    _action_label(a) for a in state.mshr[sb]
                )
            parts.append(bits)
        for c in range(self.num_clusters):
            if state.queues[c]:
                parts.append(
                    f"queue c{c}=[" + " ".join(
                        _message_label(m) for m in state.queues[c]
                    ) + "]"
                )
            if state.pending[c]:
                parts.append(
                    f"ready c{c}=[" + " ".join(
                        _message_label(m) for m in state.pending[c]
                    ) + "]"
                )
        status = {UNISSUED: "-", INFLIGHT: "*", COMPLETE: "✓"}
        parts.append("ops=" + " ".join(
            f"{op.label}{status[state.ops[op.index][0]]}"
            for op in self.program
        ))
        return "; ".join(parts)


def _action_label(action: tuple) -> str:
    if action[0] == "respond":
        return f"respond(c{action[1]},op{action[2]})"
    return f"{action[0]}(op{action[1]})"


def _message_label(message: tuple) -> str:
    if message[0] in ("req_ld", "fwd_ld"):
        return "%s(sb%d,%s)" % (
            message[0], message[1], "+".join(f"op{o}" for o in message[2])
        )
    if message[0] in ("req_st", "fwd_st"):
        return f"{message[0]}(sb{message[1]},op{message[2]})"
    return "resp(sb%d,%s,v%d)" % (
        message[1], "+".join(f"op{o}" for o in message[2]), message[3]
    )


# ----------------------------------------------------------------------
# Shared action fragments
# ----------------------------------------------------------------------
def _issuable(model: ProtocolModel, state: State, op: ModelOp) -> bool:
    """Issue guard: unissued, and every earlier same-cluster op touching
    the same subblock has issued (in-order issue per aliasing chain)."""
    if state.ops[op.index][0] != UNISSUED:
        return False
    for earlier in model.program[: op.index]:
        if (
            earlier.cluster == op.cluster
            and earlier.subblock == op.subblock
            and state.ops[earlier.index][0] == UNISSUED
        ):
            return False
    return True


def _observe(
    model: ProtocolModel, state: State, op_index: int, status: int,
    events: List[Event],
) -> State:
    """Record a load's observation at its serialization point."""
    observed = state.versions[model.program[op_index].subblock]
    events.append(
        ("observe", op_index, observed, model.expected_version(op_index))
    )
    return state._replace(ops=_set(state.ops, op_index, (status, observed)))


def _apply_store(
    model: ProtocolModel, state: State, sb: int, op_index: int,
    events: List[Event], present: bool,
) -> State:
    """Apply store ``op_index`` to ``sb``; keeps the younger version on a
    write inversion, mirroring ``MemorySystem._apply_store``."""
    version = op_index + 1
    current = state.versions[sb]
    inverted = current > version
    events.append(("apply", sb, version, current, inverted))
    new_versions = (
        state.versions if inverted else _set(state.versions, sb, version)
    )
    new_cache = _set(state.cache, sb, DIRTY) if present else state.cache
    return state._replace(
        versions=new_versions,
        cache=new_cache,
        ops=_set(state.ops, op_index, (COMPLETE, NO_VERSION)),
    )


def _request_actions(model: ProtocolModel, src: int, message: tuple):
    """MSHR actions a delivered request defers, in order."""
    if message[0] == "req_ld":
        return [("respond", src, op) for op in message[2]]
    return [("store", message[2])]


# ----------------------------------------------------------------------
# Transition table
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GuardedAction:
    """One protocol rule: parameterized guard + action."""

    name: str
    doc: str
    instances: Callable[[ProtocolModel, State], Iterable[Tuple]]
    apply: Callable[[ProtocolModel, State, Tuple], Tuple[State, List[Event]]]
    describe: Callable[[ProtocolModel, Tuple], str]
    #: non-None restricts the rule to one seeded mutation
    mutation_only: Optional[str] = None


def _op_describer(model: ProtocolModel, args: Tuple) -> str:
    return model.program[args[0]].label


# -- issue: local hit ---------------------------------------------------
def _i_local_hit(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for op in model.program:
        if (
            model.is_local(op)
            and state.cache[op.subblock] != ABSENT
            and _issuable(model, state, op)
        ):
            yield (op.index,)


def _a_local_hit(model, state, args):
    op = model.program[args[0]]
    events: List[Event] = []
    if op.is_load:
        state = _observe(model, state, op.index, COMPLETE, events)
    else:
        state = _apply_store(
            model, state, op.subblock, op.index, events, present=True
        )
    return state, events


# -- issue: local miss --------------------------------------------------
def _i_local_miss(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for op in model.program:
        if (
            model.is_local(op)
            and state.cache[op.subblock] == ABSENT
            and not state.mshr[op.subblock]
            and _issuable(model, state, op)
        ):
            yield (op.index,)


def _a_local_miss(model, state, args):
    op = model.program[args[0]]
    action = ("load", op.index) if op.is_load else ("store", op.index)
    state = state._replace(
        mshr=_append(state.mshr, op.subblock, action),
        ops=_set(state.ops, op.index, (INFLIGHT, NO_VERSION)),
    )
    return state, []


# -- issue: local combine ----------------------------------------------
def _i_local_combine(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for op in model.program:
        if (
            model.is_local(op)
            and state.mshr[op.subblock]
            and _issuable(model, state, op)
        ):
            yield (op.index,)


_a_local_combine = _a_local_miss  # same action: append to the open entry


# -- issue: remote ------------------------------------------------------
def _combinable_position(state: State, op: ModelOp) -> Optional[int]:
    """Queue position of an in-flight same-cluster load request for the
    same subblock (the target the stale-combining bug merged onto)."""
    for pos, message in enumerate(state.queues[op.cluster]):
        if message[0] == "req_ld" and message[1] == op.subblock:
            return pos
    return None


def _i_remote(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for op in model.program:
        if model.is_local(op) or not _issuable(model, state, op):
            continue
        if (
            model.mutation == "stale_combining"
            and op.is_load
            and _combinable_position(state, op) is not None
        ):
            continue  # the buggy protocol combines instead (see below)
        yield (op.index,)


def _a_remote(model, state, args):
    op = model.program[args[0]]
    message = (
        ("req_ld", op.subblock, (op.index,))
        if op.is_load
        else ("req_st", op.subblock, op.index)
    )
    state = state._replace(
        queues=_append(state.queues, op.cluster, message),
        ops=_set(state.ops, op.index, (INFLIGHT, NO_VERSION)),
    )
    return state, []


# -- issue: remote combine (stale_combining mutation only) --------------
def _i_remote_combine(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for op in model.program:
        if (
            not model.is_local(op)
            and op.is_load
            and _issuable(model, state, op)
            and _combinable_position(state, op) is not None
        ):
            yield (op.index,)


def _a_remote_combine(model, state, args):
    op = model.program[args[0]]
    pos = _combinable_position(state, op)
    queue = state.queues[op.cluster]
    message = queue[pos]
    merged = (message[0], message[1], message[2] + (op.index,))
    state = state._replace(
        queues=_set(
            state.queues, op.cluster,
            queue[:pos] + (merged,) + queue[pos + 1:],
        ),
        ops=_set(state.ops, op.index, (INFLIGHT, NO_VERSION)),
    )
    return state, []


# -- deliver a request at its home --------------------------------------
def _deliverable_requests(
    model: ProtocolModel, state: State
) -> Iterator[Tuple[int, int, tuple]]:
    """(src, position, message) triples a delivery may consume.  The
    faithful fabric delivers per-source FIFO heads only; the
    reordered-arrival mutation may deliver any queued request."""
    for src in range(model.num_clusters):
        queue = state.queues[src]
        if not queue:
            continue
        positions = (
            range(len(queue))
            if model.mutation == "reordered_home_arrival"
            else (0,)
        )
        for pos in positions:
            message = queue[pos]
            if message[0] in ("req_ld", "req_st"):
                yield src, pos, message


def _i_request_hit(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for src, pos, message in _deliverable_requests(model, state):
        if state.cache[message[1]] != ABSENT:
            yield (src, pos)


def _a_request_hit(model, state, args):
    src, pos = args
    message = state.queues[src][pos]
    sb = message[1]
    home = model.data_home(sb)
    state = state._replace(queues=_pop(state.queues, src, pos))
    events: List[Event] = []
    if message[0] == "req_ld":
        # Serve at the serialization point; the response data waits in
        # the home's ready buffer for its bus slot.
        for op_index in message[2]:
            state = _observe(model, state, op_index, INFLIGHT, events)
        version = state.ops[message[2][0]][1]
        state = state._replace(
            pending=_append(
                state.pending, home, ("resp", sb, message[2], version)
            )
        )
    else:
        state = _apply_store(
            model, state, sb, message[2], events, present=True
        )
    return state, events


def _i_request_miss(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for src, pos, message in _deliverable_requests(model, state):
        if state.cache[message[1]] == ABSENT and not state.mshr[message[1]]:
            yield (src, pos)


def _a_request_miss(model, state, args):
    src, pos = args
    message = state.queues[src][pos]
    sb = message[1]
    state = state._replace(queues=_pop(state.queues, src, pos))
    for action in _request_actions(model, src, message):
        state = state._replace(mshr=_append(state.mshr, sb, action))
    return state, []


def _i_request_combine(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    if model.mutation == "premature_combine":
        return  # the buggy protocol serves immediately (see below)
    for src, pos, message in _deliverable_requests(model, state):
        if state.cache[message[1]] == ABSENT and state.mshr[message[1]]:
            yield (src, pos)


_a_request_combine = _a_request_miss  # same action: defer into the entry


# -- deliver a request prematurely (premature_combine mutation) ---------
def _i_request_premature(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for src, pos, message in _deliverable_requests(model, state):
        if state.cache[message[1]] == ABSENT and state.mshr[message[1]]:
            yield (src, pos)


def _a_request_premature(model, state, args):
    """The bug: a request that finds an open MSHR entry is served against
    the *current* subblock contents instead of waiting its turn in the
    entry — it jumps the serialization order of the pending fill."""
    src, pos = args
    message = state.queues[src][pos]
    sb = message[1]
    home = model.data_home(sb)
    state = state._replace(queues=_pop(state.queues, src, pos))
    events: List[Event] = []
    if message[0] == "req_ld":
        for op_index in message[2]:
            state = _observe(model, state, op_index, INFLIGHT, events)
        version = state.ops[message[2][0]][1]
        state = state._replace(
            pending=_append(
                state.pending, home, ("resp", sb, message[2], version)
            )
        )
    else:
        state = _apply_store(
            model, state, sb, message[2], events, present=False
        )
    return state, events


# -- move a ready response onto the bus ---------------------------------
def _i_send_response(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for home in range(model.num_clusters):
        if state.pending[home]:
            yield (home,)


def _a_send_response(model, state, args):
    home = args[0]
    message = state.pending[home][0]
    state = state._replace(
        pending=_pop(state.pending, home),
        queues=_append(state.queues, home, message),
    )
    return state, []


# -- deliver a response at its requester --------------------------------
def _i_deliver_response(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for src in range(model.num_clusters):
        queue = state.queues[src]
        if queue and queue[0][0] == "resp":
            yield (src,)


def _a_deliver_response(model, state, args):
    src = args[0]
    message = state.queues[src][0]
    state = state._replace(queues=_pop(state.queues, src))
    for op_index in message[2]:
        observed = state.ops[op_index][1]
        state = state._replace(
            ops=_set(state.ops, op_index, (COMPLETE, observed))
        )
    return state, []


# -- next-level fill completes ------------------------------------------
def _i_fill(model: ProtocolModel, state: State) -> Iterator[Tuple]:
    for sb in range(model.num_subblocks):
        if state.mshr[sb]:
            yield (sb,)


def _a_fill(model, state, args):
    """Install the subblock and replay the MSHR actions in arrival
    order against the evolving contents (``_handle_fill``).  Responses
    produced here enter the bus queue directly: the simulator sends
    fill-time responses in the fill cycle itself."""
    sb = args[0]
    home = model.data_home(sb)
    actions = state.mshr[sb]
    state = state._replace(
        cache=_set(state.cache, sb, CLEAN),
        mshr=_set(state.mshr, sb, ()),
    )
    events: List[Event] = []
    for action in actions:
        if action[0] == "store":
            if model.mutation == "dropped_invalidation":
                # The bug: the deferred store's effect on the freshly
                # installed subblock is dropped on the floor.
                state = state._replace(
                    ops=_set(state.ops, action[1], (COMPLETE, NO_VERSION))
                )
                continue
            state = _apply_store(model, state, sb, action[1], events,
                                 present=True)
        elif action[0] == "load":
            state = _observe(model, state, action[1], COMPLETE, events)
        else:  # respond
            _tag, requester, op_index = action
            state = _observe(model, state, op_index, INFLIGHT, events)
            version = state.ops[op_index][1]
            state = state._replace(
                queues=_append(
                    state.queues, home,
                    ("resp", sb, (op_index,), version),
                )
            )
    return state, events


def _describe_delivery(model: ProtocolModel, args: Tuple) -> str:
    src = args[0]
    return f"from c{src}" + (f" pos {args[1]}" if args[1] else "")


TRANSITION_TABLE: Tuple[GuardedAction, ...] = (
    GuardedAction(
        "issue_local_hit",
        "a local access finds its subblock at the home module",
        _i_local_hit, _a_local_hit, _op_describer,
    ),
    GuardedAction(
        "issue_local_miss",
        "a local access opens an MSHR entry and a next-level fill",
        _i_local_miss, _a_local_miss, _op_describer,
    ),
    GuardedAction(
        "issue_local_combine",
        "a local access merges into the open MSHR entry",
        _i_local_combine, _a_local_combine, _op_describer,
    ),
    GuardedAction(
        "issue_remote",
        "a remote access sends its own request to the home cluster",
        _i_remote, _a_remote, _op_describer,
    ),
    GuardedAction(
        "issue_remote_combine",
        "BUG: a remote load merges onto an in-flight same-subblock "
        "request instead of sending its own",
        _i_remote_combine, _a_remote_combine, _op_describer,
        mutation_only="stale_combining",
    ),
    GuardedAction(
        "deliver_request_hit",
        "a request reaches a home that holds the subblock and is served",
        _i_request_hit, _a_request_hit, _describe_delivery,
    ),
    GuardedAction(
        "deliver_request_miss",
        "a request reaches a home without the subblock: MSHR + fill",
        _i_request_miss, _a_request_miss, _describe_delivery,
    ),
    GuardedAction(
        "deliver_request_combine",
        "a request reaches a home mid-fill and joins the MSHR entry",
        _i_request_combine, _a_request_combine, _describe_delivery,
    ),
    GuardedAction(
        "deliver_request_premature",
        "BUG: a request arriving mid-fill is served against the current "
        "contents, jumping the MSHR serialization order",
        _i_request_premature, _a_request_premature, _describe_delivery,
        mutation_only="premature_combine",
    ),
    GuardedAction(
        "send_response",
        "a ready probe-hit response enters the home's bus queue",
        _i_send_response, _a_send_response,
        lambda model, args: f"home c{args[0]}",
    ),
    GuardedAction(
        "deliver_response",
        "a response reaches its requester; the load completes",
        _i_deliver_response, _a_deliver_response,
        lambda model, args: f"from home c{args[0]}",
    ),
    GuardedAction(
        "fill_complete",
        "the next-level fill lands; MSHR actions replay in arrival order",
        _i_fill, _a_fill,
        lambda model, args: f"sb{args[0]}",
    ),
)

ProtocolModel.TRANSITION_TABLE = TRANSITION_TABLE

#: Module-level aliases of the snooping table's lookups, kept for
#: importers that predate per-class tables (use
#: :meth:`ProtocolModel.table_by_name` / ``core_transitions`` for
#: model-generic code).
TABLE_BY_NAME = ProtocolModel.table_by_name()
CORE_TRANSITIONS: Tuple[str, ...] = ProtocolModel.core_transitions()


# ----------------------------------------------------------------------
# Program enumeration
# ----------------------------------------------------------------------
def is_disciplined(program: Iterable[ModelOp]) -> bool:
    """Whether every aliasing pair (same subblock, at least one store)
    is placed on one cluster — the property MDC chains and DDGT store
    replication establish.  The no-stale-read invariant is asserted for
    disciplined programs only; free scheduling may (and does) race."""
    ops = list(program)
    for a, b in itertools.combinations(ops, 2):
        if a.subblock != b.subblock:
            continue
        if a.kind == "load" and b.kind == "load":
            continue
        if a.cluster != b.cluster:
            return False
    return True


def enumerate_programs(
    num_clusters: int, num_subblocks: int, length: int
) -> Iterator[Tuple[ModelOp, ...]]:
    """All programs of ``length`` ops over the configuration: each op is
    any (cluster, kind, subblock) combination."""
    shapes = list(
        itertools.product(
            range(num_clusters), ("load", "store"), range(num_subblocks)
        )
    )
    for combo in itertools.product(shapes, repeat=length):
        yield tuple(
            ModelOp(index, cluster, kind, sb)
            for index, (cluster, kind, sb) in enumerate(combo)
        )
