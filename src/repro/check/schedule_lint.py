"""Static schedule verifier — post-validates compiler output, no simulation.

``Schedule.validate()`` is the scheduler's own sanity check; this module
is its independent, *reporting* counterpart: it re-derives every rule
from the machine description and the final graph, returns findings
instead of raising on the first problem, and adds the rules that only
make sense at the whole-compilation level — copy-insertion completeness
and "memory ops ordered at their home module" under MDC/DDGT.

Rules (each finding carries its ``rule`` name):

* ``completeness`` — every node scheduled exactly once, cluster pins and
  the assignment respected;
* ``resource`` — no functional-unit overcommit in any (cluster, slot)
  of the modulo schedule; inter-cluster copies within the register-bus
  capacity over their full occupancy window;
* ``latency`` — every dependence edge satisfied:
  ``t(dst) - t(src) >= latency - II * distance``;
* ``copies`` — cross-cluster register flow is copy-mediated: an RF edge
  between two non-copy ops stays within one cluster, a copy lives in
  its consumers' cluster and has exactly one producer;
* ``memory_order`` — the coherence solution's placement obligations:
  under MDC every memory-dependence edge stays within one cluster (the
  chain property); under DDGT no MA edge survives the rewrite, SYNC
  edges target stores, and every replicated store covers all clusters
  so aliased updates apply in the home cluster — locally — before any
  posterior access.

The pipeline exposes this as the opt-in ninth stage (``verify=True`` on
:func:`repro.sched.pipeline.compile_loop`) and the CLI as
``repro check schedule <benchmark> <variant>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.arch.config import FuKind, MachineConfig
from repro.ir.ddg import Ddg
from repro.ir.edges import DepKind, MEMORY_DEP_KINDS
from repro.sched.cluster import ClusterAssignment
from repro.sched.ddgt import DdgtResult
from repro.sched.schedule import Schedule, edge_latency
from repro.sched.stages import CompilationResult, CoherenceMode


@dataclass(frozen=True)
class LintFinding:
    """One rule violation found in a compiled loop."""

    rule: str
    message: str
    iid: Optional[int] = None

    def __str__(self) -> str:
        return f"[{self.rule}] {self.message}"


def lint_compilation(result: CompilationResult) -> List[LintFinding]:
    """Lint one :func:`~repro.sched.pipeline.compile_loop` result."""
    return lint_schedule(
        result.ddg,
        result.machine,
        result.assignment,
        result.schedule,
        coherence=result.coherence,
        ddgt=result.ddgt,
    )


def lint_schedule(
    ddg: Ddg,
    machine: MachineConfig,
    assignment: ClusterAssignment,
    schedule: Schedule,
    coherence: CoherenceMode = CoherenceMode.NONE,
    ddgt: Optional[DdgtResult] = None,
) -> List[LintFinding]:
    """Run every rule; returns all findings (empty = lint-clean)."""
    findings: List[LintFinding] = []
    findings.extend(_check_completeness(ddg, machine, assignment, schedule))
    if findings:
        # Placement is broken; the remaining rules would only cascade.
        return findings
    findings.extend(_check_resources(ddg, machine, schedule))
    findings.extend(_check_latencies(ddg, machine, schedule))
    findings.extend(_check_copies(ddg, schedule))
    findings.extend(
        _check_memory_order(ddg, machine, schedule, coherence, ddgt)
    )
    return findings


# ----------------------------------------------------------------------
def _check_completeness(
    ddg: Ddg,
    machine: MachineConfig,
    assignment: ClusterAssignment,
    schedule: Schedule,
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    node_ids = {instr.iid for instr in ddg}
    for instr in ddg:
        placed = schedule.ops.get(instr.iid)
        if placed is None:
            findings.append(LintFinding(
                "completeness", f"{instr.label} was never scheduled",
                instr.iid,
            ))
            continue
        if not 0 <= placed.cluster < machine.num_clusters:
            findings.append(LintFinding(
                "completeness",
                f"{instr.label} scheduled in nonexistent cluster "
                f"{placed.cluster}",
                instr.iid,
            ))
        if (
            instr.required_cluster is not None
            and placed.cluster != instr.required_cluster
        ):
            findings.append(LintFinding(
                "completeness",
                f"{instr.label} pinned to cluster "
                f"{instr.required_cluster} but scheduled in "
                f"{placed.cluster}",
                instr.iid,
            ))
        if instr.iid in assignment and assignment[instr.iid] != placed.cluster:
            findings.append(LintFinding(
                "completeness",
                f"{instr.label} assigned to cluster "
                f"{assignment[instr.iid]} but scheduled in "
                f"{placed.cluster}",
                instr.iid,
            ))
    for iid in schedule.ops:
        if iid not in node_ids:
            findings.append(LintFinding(
                "completeness",
                f"schedule places unknown instruction iid {iid}",
                iid,
            ))
    return findings


def _check_resources(
    ddg: Ddg, machine: MachineConfig, schedule: Schedule
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    ii = schedule.ii
    fu_usage: Dict[Tuple[int, FuKind, int], int] = {}
    bus_usage: Dict[int, int] = {}
    for op in schedule.ops.values():
        instr = ddg.node(op.iid)
        slot = op.time % ii
        if instr.is_copy:
            # A copy holds a register bus for `latency` consecutive
            # modulo slots; bus identity is a packing detail, so (as in
            # Schedule.validate) the per-slot aggregate is the invariant.
            for k in range(machine.register_buses.latency):
                s = (slot + k) % ii
                bus_usage[s] = bus_usage.get(s, 0) + 1
            continue
        key = (op.cluster, instr.fu_kind, slot)
        fu_usage[key] = fu_usage.get(key, 0) + 1
    for (cluster, kind, slot), used in sorted(
        fu_usage.items(), key=lambda kv: (kv[0][0], kv[0][1].value, kv[0][2])
    ):
        units = machine.fu_per_cluster.get(kind, 0)
        if used > units:
            findings.append(LintFinding(
                "resource",
                f"{used} {kind.value} ops share slot {slot} of cluster "
                f"{cluster} but it has {units} {kind.value} unit(s)",
            ))
    for slot, used in sorted(bus_usage.items()):
        if used > machine.register_buses.count:
            findings.append(LintFinding(
                "resource",
                f"{used} copies occupy modulo slot {slot} but only "
                f"{machine.register_buses.count} register buses exist",
            ))
    return findings


def _check_latencies(
    ddg: Ddg, machine: MachineConfig, schedule: Schedule
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    ii = schedule.ii
    for edge in ddg.edges():
        lat = edge_latency(edge, ddg, machine, schedule.assumed_latency)
        slack = (
            schedule.ops[edge.dst].time
            - schedule.ops[edge.src].time
            - (lat - ii * edge.distance)
        )
        if slack < 0:
            findings.append(LintFinding(
                "latency",
                f"dependence {edge} unsatisfied: needs "
                f"{lat - ii * edge.distance} cycles, schedule gives "
                f"{schedule.ops[edge.dst].time - schedule.ops[edge.src].time}",
                edge.dst,
            ))
    return findings


def _check_copies(ddg: Ddg, schedule: Schedule) -> List[LintFinding]:
    findings: List[LintFinding] = []
    for edge in ddg.edges():
        if edge.kind is not DepKind.RF:
            continue
        src = ddg.node(edge.src)
        dst = ddg.node(edge.dst)
        src_cluster = schedule.ops[edge.src].cluster
        dst_cluster = schedule.ops[edge.dst].cluster
        if not src.is_copy and not dst.is_copy:
            if src_cluster != dst_cluster:
                findings.append(LintFinding(
                    "copies",
                    f"register flow {src.label} -> {dst.label} crosses "
                    f"clusters {src_cluster} -> {dst_cluster} without a "
                    f"copy",
                    edge.dst,
                ))
        elif src.is_copy and src_cluster != dst_cluster:
            findings.append(LintFinding(
                "copies",
                f"copy {src.label} lives in cluster {src_cluster} but "
                f"its consumer {dst.label} is in {dst_cluster}",
                edge.src,
            ))
    for instr in ddg:
        if not instr.is_copy:
            continue
        producers = [
            e for e in ddg.preds(instr.iid) if e.kind is DepKind.RF
        ]
        if len(producers) != 1:
            findings.append(LintFinding(
                "copies",
                f"copy {instr.label} has {len(producers)} producers "
                f"(want exactly 1)",
                instr.iid,
            ))
    return findings


def _check_memory_order(
    ddg: Ddg,
    machine: MachineConfig,
    schedule: Schedule,
    coherence: CoherenceMode,
    ddgt: Optional[DdgtResult],
) -> List[LintFinding]:
    findings: List[LintFinding] = []
    if coherence is CoherenceMode.MDC:
        # The chain property: aliasing accesses share a cluster, so the
        # per-cluster in-order memory unit plus in-order same-source bus
        # delivery serializes them at the home module in program order.
        for edge in ddg.edges():
            if edge.kind not in MEMORY_DEP_KINDS or edge.src == edge.dst:
                continue
            src_cluster = schedule.ops[edge.src].cluster
            dst_cluster = schedule.ops[edge.dst].cluster
            if src_cluster != dst_cluster:
                findings.append(LintFinding(
                    "memory_order",
                    f"MDC: memory-dependent "
                    f"{ddg.node(edge.src).label} -> "
                    f"{ddg.node(edge.dst).label} split across clusters "
                    f"{src_cluster} and {dst_cluster}; their requests "
                    f"can reach the home module out of order",
                    edge.dst,
                ))
    elif coherence is CoherenceMode.DDGT:
        for edge in ddg.edges():
            if edge.kind is DepKind.MA:
                findings.append(LintFinding(
                    "memory_order",
                    f"DDGT: anti dependence {ddg.node(edge.src).label} "
                    f"-> {ddg.node(edge.dst).label} was not rewritten "
                    f"into a SYNC edge",
                    edge.dst,
                ))
            elif edge.kind is DepKind.SYNC:
                if not ddg.node(edge.dst).is_store:
                    findings.append(LintFinding(
                        "memory_order",
                        f"DDGT: SYNC edge targets non-store "
                        f"{ddg.node(edge.dst).label}",
                        edge.dst,
                    ))
        groups: Dict[int, List[int]] = {}
        if ddgt is not None:
            groups = dict(ddgt.replicas)
        else:
            for instr in ddg:
                if instr.replica_group is not None:
                    groups.setdefault(instr.replica_group, []).append(
                        instr.iid
                    )
        for original, instances in sorted(groups.items()):
            clusters = sorted(
                schedule.ops[iid].cluster for iid in instances
            )
            if clusters != list(range(machine.num_clusters)):
                findings.append(LintFinding(
                    "memory_order",
                    f"DDGT: replica group of "
                    f"{ddg.node(original).label} covers clusters "
                    f"{clusters}, not one instance per cluster; the "
                    f"home-cluster instance of some address is missing",
                    original,
                ))
    return findings
