"""Flattened memory-protocol stepper for the batch engine.

This module is where the batch engine's throughput actually comes from.
Profiling the event-skipping engine on mixed-family scenario batches
shows ~80% of wall time inside the memory subsystem's object protocol:
every access allocates dataclass messages (`BusMessage`,
``_PendingLoad``), defines delivery closures, and walks 15-20 method
calls across ``MemorySystem``/``BusFabric``/``NextLevel``/
``CacheModule``.  Amortizing *dispatch* across runs (the lockstep heap)
cannot touch that, so the batch engine replaces the whole per-run
protocol execution with :func:`flat_stepper`: one generator holding the
entire machine state in plain containers —

* bus messages are tuples dispatched on an integer kind (request-load /
  request-store / response), in per-source deques;
* cache modules and Attraction Buffers are lists of insertion-ordered
  dicts (pop + reinsert = LRU touch), presence mapped to a dirty bit;
* next-level requests are ``(cluster, block)`` tuples (``None`` for
  victim write-backs), keyed by completion cycle;
* load completion callbacks collapse to ``per_load[iteration] = cycle``
  on the run's completion maps;
* per-op address streams are precomputed into flat lists (affine
  references as pure arithmetic, indirect ones through the same
  ``_mix`` hash the trace uses), so the cycle loop never calls
  ``AddressTrace.address``;
* the ``tick_begin``/``tick_end`` bodies are inlined at their three
  call sites behind truthiness guards, the earliest bus-free cycle is
  cached, and the three timed-event dicts are only ever keyed by
  nondecreasing cycles, so their minimum is their *first* key;
* stats accumulate in local integers and flush to
  :class:`~repro.sim.stats.SimStats` once, in the ``finally`` block.

Semantics replicate ``MemorySystem`` + ``BusFabric`` + ``NextLevel`` +
``AttractionBuffer`` and the event-skipping executor *exactly*, with
the orderings that matter called out inline: tick order (deferred sends
-> next-level fills -> next-level acceptance -> bus deliveries), bus
arbitration (round-robin over sources, highest-numbered free bus
first), MSHR action replay in arrival order, home-side load
serialization, and the stall/drain watchdogs with their exact error
strings.  The only state deliberately not mirrored is per-module cache
hit/miss counters and the next level's ``queued_cycles``, neither of
which is observable through ``SimStats`` or the metrics registry.
Byte-identity with ``engine="events"`` is enforced by the golden suite
and the batch differential cross (``tests/test_sim_batch.py``).

The stepper is only used for plain configurations — when the executor's
``MemorySystem`` has been substituted (fault-injecting test doubles),
the batch engine falls back to a method-faithful compat stepper in
:mod:`repro.sim.batch`.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, List

from repro.alias.memref import AccessPattern
from repro.errors import SimulationError
from repro.sim import executor as _executor
from repro.sim.executor import (
    _all_ready,
    _due_ops,
    _fastpath_tables,
    _next_prune_after,
)
from repro.sim.stats import AccessType
from repro.workloads.traces import _MASK64, AddressTrace

#: Minimum fast-forward jump (in simulated cycles) at which the stepper
#: parks and hands control back to the batch scheduler's event heap.
#: Shorter jumps are taken inline: re-enqueueing costs a heap push/pop,
#: and sub-park jumps are too frequent for that to pay off.
PARK_MIN_JUMP = 64

# Bus-message kinds (tuple position 0).
_REQ_LOAD = 0
_REQ_STORE = 1
_RESPONSE = 2

# MSHR action kinds (tuple position 0); replayed in arrival order.
_ACT_STORE = 0
_ACT_LOAD = 1
_ACT_RESPOND = 2


def _address_table(trc, iid: int, n_iter: int) -> List[int]:
    """Per-iteration addresses of one memory op, as a flat list.

    Replicates :meth:`~repro.workloads.traces.AddressTrace.address` for
    the concrete trace class (affine as straight arithmetic, indirect
    through the same hash); any other ``TraceLike`` goes through its own
    ``address`` method, so doubles keep their exact streams.
    """
    if type(trc) is not AddressTrace:
        return [trc.address(iid, it) for it in range(n_iter)]
    mem = trc._ddg.node(iid).mem
    if mem is None:
        raise SimulationError(f"instruction {iid} is not a memory op")
    if mem.width < 1:  # unconstructible via MemRef; defensive
        raise SimulationError(
            f"access width must be positive, got {mem.width}")
    start = trc.base(mem.space) + mem.offset
    if mem.pattern is AccessPattern.AFFINE:
        stride = mem.stride
        return [start + stride * it for it in range(n_iter)]
    slots = max(1, mem.spread // mem.width)
    seed = trc.seed
    space_hash = trc._space_hash[mem.space]
    salt = mem.salt
    width = mem.width
    # _mix(seed, space_hash, salt, it) with the three SplitMix64 steps
    # inlined: the tables are built once per run but cover every op
    # instance, so the 4-deep call chain is worth flattening.
    mask = _MASK64
    out = []
    append = out.append
    for it in range(n_iter):
        x = ((salt ^ it) + 0x9E3779B97F4A7C15) & mask
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & mask
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & mask
        x ^= x >> 31
        x = ((space_hash ^ x) + 0x9E3779B97F4A7C15) & mask
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & mask
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & mask
        x ^= x >> 31
        x = ((seed ^ x) + 0x9E3779B97F4A7C15) & mask
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & mask
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & mask
        x ^= x >> 31
        append(start + (x % slots) * width)
    return out


def flat_stepper(
    machine, schedule, n_iter, total_indexes, ops_by_slot, completions,
    trc, stats, checker, flush_abs, soa_cycles, soa_indexes, run_id, out,
):
    """Run one compiled loop to completion; yields at park points.

    ``out`` receives diagnostic state at exit (currently the per-bus
    ``busy_cycles`` list, for the batch engine's metrics publication).
    """
    ii = schedule.ii
    length = schedule.length
    watchdog = _executor.STALL_WATCHDOG
    prune_interval = _executor._PRUNE_INTERVAL
    prune = _executor._prune

    # ------------------------------------------------------------------
    # Machine parameters
    # ------------------------------------------------------------------
    num_clusters = machine.num_clusters
    interleave = machine.interleave_bytes
    block_bytes = machine.cache.block_bytes
    hit_latency = machine.cache.hit_latency
    nsets = machine.cache.num_sets
    assoc = machine.cache.associativity
    num_buses = machine.memory_buses.count
    bus_latency = machine.memory_buses.latency
    nl_latency = machine.next_level.latency
    nl_ports = machine.next_level.ports
    ab_config = machine.attraction_buffer
    use_abs = ab_config is not None
    if use_abs:
        ab_nsets = ab_config.num_sets
        ab_assoc = ab_config.associativity
        ab_sets: List[List[dict]] = [
            [dict() for _ in range(ab_nsets)] for _ in range(num_clusters)
        ]

    # ------------------------------------------------------------------
    # Machine state (mirrors MemorySystem/BusFabric/NextLevel/CacheModule)
    # ------------------------------------------------------------------
    # Cache modules: per cluster, per set, insertion-ordered dict
    # block -> dirty (last = most recently used, first = LRU victim).
    cache_sets: List[List[dict]] = [
        [dict() for _ in range(nsets)] for _ in range(num_clusters)
    ]
    # Ground-truth versions: (block, home) -> {addr: (iteration, seq)}.
    versions: Dict[tuple, dict] = {}
    # Home-side MSHRs: per cluster, block -> action list (arrival order).
    mshr: List[Dict[int, list]] = [{} for _ in range(num_clusters)]
    # Bus fabric.
    queues = [deque() for _ in range(num_clusters)]
    bus_free = [0] * num_buses
    busy_cycles = [0] * num_buses
    bus_min = 0  # cached min(bus_free); updated by inject
    in_flight: Dict[int, list] = {}
    queued = 0
    rr_start = 0
    transfers = 0
    # Per-message-kind transfer counts, indexed by _REQ_LOAD/_REQ_STORE/
    # _RESPONSE (mutable list: no nonlocal needed at the injection sites).
    transfers_by_kind = [0, 0, 0]
    bus_queued_cycles = 0
    # Next level: queue of (cluster, block) fetches / None write-backs.
    nl_queue = deque()
    nl_compl: Dict[int, list] = {}
    nl_requests = 0
    # Deferred home responses: send cycle -> messages.
    deferred: Dict[int, list] = {}
    outstanding = 0
    # The three timed dicts above are only ever inserted at the current
    # cycle plus a nonnegative constant latency, and only ever popped at
    # the current cycle, so their keys stay sorted: next(iter(d)) is
    # min(d) everywhere below.

    # ------------------------------------------------------------------
    # Stat accumulators (flushed once, in the finally block)
    # ------------------------------------------------------------------
    acc_local_hit = 0
    acc_remote_hit = 0
    acc_local_miss = 0
    acc_remote_miss = 0
    acc_combined = 0
    viol_acc = 0
    nullified_acc = 0
    ab_hits_total = 0
    ab_fills_total = 0
    ab_overflows_total = 0
    ab_flushed_acc = 0
    compute_acc = 0
    stall_acc = 0
    issued_acc = 0
    ff_acc = 0
    fr_acc = 0

    observe_load = checker.observe_load if checker is not None else None

    # ------------------------------------------------------------------
    # Protocol helpers (closures over the flat state)
    # ------------------------------------------------------------------
    def apply_store(key, addr, version):
        nonlocal viol_acc
        bucket = versions.get(key)
        if bucket is None:
            bucket = versions[key] = {}
        current = bucket.get(addr)
        if current is not None and current > version:
            # A younger store already applied: program order inverted;
            # keep the younger (trace-correct) version.
            if checker is not None:
                checker.observe_write_inversion()
            viol_acc += 1
            return
        bucket[addr] = version

    def send_response(home, requester, block, addr, iid, it, per_load,
                      send_at, now):
        # The load observes the subblock *here*, at its serialization
        # point at the home module; the response only models the
        # transfer back.  (The version snapshot is only materialized
        # when Attraction Buffers will consume it at the requester.)
        nonlocal viol_acc, queued
        bucket = versions.get((block, home))
        if use_abs:
            snapshot = dict(bucket) if bucket else {}
            observed = snapshot.get(addr)
        else:
            snapshot = None
            observed = bucket.get(addr) if bucket else None
        if observe_load is not None and observe_load(iid, it, observed):
            viol_acc += 1
        message = (_RESPONSE, home, requester, block, it, per_load,
                   snapshot)
        if send_at <= now:
            queues[home].append(message)
            queued += 1
        else:
            bucket_d = deferred.get(send_at)
            if bucket_d is None:
                deferred[send_at] = [message]
            else:
                bucket_d.append(message)

    def ab_fill(cluster, block, home, snapshot):
        nonlocal ab_fills_total, ab_overflows_total
        key = (block, home)
        abset = ab_sets[cluster][block % ab_nsets]
        entry = abset.get(key)
        if entry is not None:
            # Re-fill of a resident copy: merge + LRU touch, no fill
            # counted (AttractionBuffer.fill's early return).
            entry[0].update(snapshot)
            abset[key] = abset.pop(key)
            return
        if len(abset) >= ab_assoc:
            victim_key = next(iter(abset))
            victim = abset.pop(victim_key)
            ab_overflows_total += 1
            if victim[1]:
                for a, v in victim[0].items():
                    apply_store(victim_key, a, v)
        abset[key] = [dict(snapshot), False]
        ab_fills_total += 1

    def handle_fill(cluster, block, cycle):
        # Install clean (merging dirtiness and refreshing LRU when the
        # block is somehow already present), write back a dirty victim
        # through a next-level port, then replay the MSHR actions in
        # arrival order.
        nonlocal outstanding, viol_acc, nl_requests
        cset = cache_sets[cluster][block % nsets]
        if block in cset:
            cset[block] = cset.pop(block)
        else:
            if len(cset) >= assoc:
                victim_dirty = cset.pop(next(iter(cset)))
                if victim_dirty:
                    nl_queue.append(None)
                    nl_requests += 1
            cset[block] = False
        actions = mshr[cluster].pop(block, None)
        if actions is None:
            raise SimulationError(f"fill for block {block} without waiter")
        key = (block, cluster)
        for action in actions:
            kind = action[0]
            if kind == _ACT_STORE:
                apply_store(key, action[1], action[2])
                cset[block] = True
            elif kind == _ACT_LOAD:
                _k, addr, iid, it, per_load = action
                bucket = versions.get(key)
                observed = bucket.get(addr) if bucket else None
                if observe_load is not None and observe_load(
                        iid, it, observed):
                    viol_acc += 1
                per_load[it] = cycle
            else:  # _ACT_RESPOND
                _k, requester, addr, iid, it, per_load = action
                send_response(cluster, requester, block, addr, iid, it,
                              per_load, send_at=cycle, now=cycle)
            outstanding -= 1

    def deliver(arrivals, cycle):
        # Bus messages arrive at their destinations (fabric.deliver).
        nonlocal outstanding, acc_remote_hit, acc_remote_miss
        nonlocal acc_combined, nl_requests
        for message in arrivals:
            kind = message[0]
            if kind == _RESPONSE:
                # (kind, home, requester, block, it, per_load, snapshot)
                message[5][message[4]] = cycle
                outstanding -= 1
                if use_abs:
                    ab_fill(message[2], message[3], message[1],
                            message[6])
            elif kind == _REQ_LOAD:
                _k, src, home, block, addr, iid, it, per_load = message
                cset = cache_sets[home][block % nsets]
                if block in cset:
                    acc_remote_hit += 1
                    cset[block] = cset.pop(block)
                    send_response(home, src, block, addr, iid, it,
                                  per_load, send_at=cycle + hit_latency,
                                  now=cycle)
                else:
                    waiter = mshr[home].get(block)
                    if waiter is not None:
                        acc_combined += 1
                        waiter.append(
                            (_ACT_RESPOND, src, addr, iid, it, per_load))
                        outstanding += 1
                    else:
                        acc_remote_miss += 1
                        mshr[home][block] = [
                            (_ACT_RESPOND, src, addr, iid, it, per_load)]
                        outstanding += 1
                        nl_queue.append((home, block))
                        nl_requests += 1
            else:  # _REQ_STORE
                _k, src, home, block, addr, version = message
                cset = cache_sets[home][block % nsets]
                if block in cset:
                    acc_remote_hit += 1
                    cset.pop(block)
                    cset[block] = True
                    apply_store((block, home), addr, version)
                else:
                    waiter = mshr[home].get(block)
                    if waiter is not None:
                        acc_combined += 1
                        waiter.append((_ACT_STORE, addr, version))
                        outstanding += 1
                    else:
                        acc_remote_miss += 1
                        mshr[home][block] = [(_ACT_STORE, addr, version)]
                        outstanding += 1
                        nl_queue.append((home, block))
                        nl_requests += 1
                outstanding -= 1

    def flat_load(cluster, addr, iid, it, per_load, cycle):
        nonlocal outstanding, queued, viol_acc, nl_requests
        nonlocal acc_local_hit, acc_local_miss, acc_combined
        nonlocal ab_hits_total
        home = (addr // interleave) % num_clusters
        block = addr // block_bytes
        if home == cluster:
            cset = cache_sets[cluster][block % nsets]
            if block in cset:
                acc_local_hit += 1
                cset[block] = cset.pop(block)
                bucket = versions.get((block, cluster))
                observed = bucket.get(addr) if bucket else None
                if observe_load is not None and observe_load(
                        iid, it, observed):
                    viol_acc += 1
                per_load[it] = cycle + hit_latency
                return
            waiter = mshr[cluster].get(block)
            if waiter is not None:
                acc_combined += 1
                waiter.append((_ACT_LOAD, addr, iid, it, per_load))
                outstanding += 1
                return
            acc_local_miss += 1
            mshr[cluster][block] = [(_ACT_LOAD, addr, iid, it, per_load)]
            outstanding += 1
            nl_queue.append((cluster, block))
            nl_requests += 1
            return
        if use_abs:
            # A cached copy of the remote subblock makes the access
            # local (section 5.1).
            key = (block, home)
            abset = ab_sets[cluster][block % ab_nsets]
            entry = abset.get(key)
            if entry is not None:
                abset[key] = abset.pop(key)
                ab_hits_total += 1
                acc_local_hit += 1
                observed = entry[0].get(addr)
                if observe_load is not None and observe_load(
                        iid, it, observed):
                    viol_acc += 1
                per_load[it] = cycle + hit_latency
                return
        # Every remote load travels to its home as its own request (no
        # requester-side combining — home-side serialization is the
        # point of coherence).
        outstanding += 1
        queues[cluster].append(
            (_REQ_LOAD, cluster, home, block, addr, iid, it, per_load))
        queued += 1

    def flat_store(cluster, addr, it, seq, replica, cycle):
        nonlocal outstanding, queued, nullified_acc, nl_requests
        nonlocal acc_local_hit, acc_local_miss, acc_combined
        version = (it, seq)
        home = (addr // interleave) % num_clusters
        block = addr // block_bytes
        if replica and home != cluster:
            # Nullified instance (section 3.3) — still refreshes an
            # Attraction-Buffer copy if one exists (section 5.3).
            nullified_acc += 1
            if use_abs:
                entry = ab_sets[cluster][block % ab_nsets].get(
                    (block, home))
                if entry is not None:
                    entry[0][addr] = version
                    entry[1] = True
            return
        if home == cluster:
            cset = cache_sets[cluster][block % nsets]
            if block in cset:
                acc_local_hit += 1
                cset.pop(block)
                cset[block] = True
                apply_store((block, cluster), addr, version)
                return
            waiter = mshr[cluster].get(block)
            if waiter is not None:
                acc_combined += 1
                waiter.append((_ACT_STORE, addr, version))
                outstanding += 1
                return
            acc_local_miss += 1
            mshr[cluster][block] = [(_ACT_STORE, addr, version)]
            outstanding += 1
            nl_queue.append((cluster, block))
            nl_requests += 1
            return
        if use_abs:
            # Remote store with a locally attracted copy: update it in
            # place; dirty data goes home at the loop-boundary flush.
            entry = ab_sets[cluster][block % ab_nsets].get((block, home))
            if entry is not None:
                entry[0][addr] = version
                entry[1] = True
                acc_local_hit += 1
                return
        outstanding += 1
        queues[cluster].append(
            (_REQ_STORE, cluster, home, block, addr, version))
        queued += 1

    def inject_1bus(cycle):
        # inject() specialized for single-bus fabrics (the contended
        # configurations where it dominates the profile): at most one
        # message moves per cycle, so the free-list and the post-loop
        # min() collapse away.
        nonlocal queued, rr_start, transfers, bus_queued_cycles, bus_min
        if bus_free[0] > cycle:
            bus_queued_cycles += queued
            return
        base = rr_start
        rr_start = (base + 1) % num_clusters
        for k in range(num_clusters):
            queue = queues[(base + k) % num_clusters]
            if queue:
                message = queue.popleft()
                queued -= 1
                arrival = cycle + bus_latency
                bus_free[0] = arrival
                bus_min = arrival
                busy_cycles[0] += bus_latency
                bucket = in_flight.get(arrival)
                if bucket is None:
                    in_flight[arrival] = [message]
                else:
                    bucket.append(message)
                transfers += 1
                transfers_by_kind[message[0]] += 1
                break
        bus_queued_cycles += queued

    def inject(cycle):
        # BusFabric.inject for the queued case: round-robin arbitration
        # over sources for the free buses (highest-numbered free bus
        # assigned first), at most one injection per source per cycle.
        nonlocal queued, rr_start, transfers, bus_queued_cycles, bus_min
        if bus_min > cycle:  # no bus free: account waiters, O(1)
            bus_queued_cycles += queued
            return
        base = rr_start
        rr_start = (base + 1) % num_clusters
        arrival = cycle + bus_latency
        # Scanning buses top-down skipping busy ones visits exactly the
        # free buses in descending index order — the order the original
        # free-list pop() assigns them.
        b = num_buses - 1
        for k in range(num_clusters):
            queue = queues[(base + k) % num_clusters]
            if not queue:
                continue
            while b >= 0 and bus_free[b] > cycle:
                b -= 1
            if b < 0:
                break
            message = queue.popleft()
            queued -= 1
            bus_free[b] = arrival
            busy_cycles[b] += bus_latency
            b -= 1
            bucket = in_flight.get(arrival)
            if bucket is None:
                in_flight[arrival] = [message]
            else:
                bucket.append(message)
            transfers += 1
            transfers_by_kind[message[0]] += 1
        bus_queued_cycles += queued
        # A still-free bus keeps bus_min <= cycle; its exact value is
        # only ever *compared* against cycles >= this one, so the stale
        # cached value stays predicate-equivalent.  Only when every bus
        # went busy does the cache need the real minimum.
        while b >= 0:
            if bus_free[b] <= cycle:
                return
            b -= 1
        bus_min = min(bus_free)

    if num_buses == 1:
        inject = inject_1bus

    def nl_accept(cycle):
        # NextLevel.tick's acceptance half (fills are handled inline at
        # the call sites *before* this, so a victim write-back those
        # fills enqueue is accepted this very cycle, like the original).
        done = cycle + nl_latency
        bucket = nl_compl.get(done)
        if bucket is None:
            bucket = nl_compl[done] = []
        accepted = 0
        while nl_queue and accepted < nl_ports:
            bucket.append(nl_queue.popleft())
            accepted += 1

    def skip_window(start, stop):
        # Bulk replay of provably inert cycles (BusFabric.skip_window).
        nonlocal bus_queued_cycles, rr_start
        if queued:
            bus_queued_cycles += queued * (stop - start)
            return
        begin = start if start > bus_min else bus_min
        if stop > begin:
            rr_start = (rr_start + (stop - begin)) % num_clusters

    # ------------------------------------------------------------------
    # Steady-state dispatch tables (see repro.sim.batch docstring), with
    # per-op precomputed address lists replacing trace.address calls.
    # ------------------------------------------------------------------
    (
        run_len, all_clean, count_prefix, ops_per_ii, steady_lo, steady_hi,
    ) = _fastpath_tables(ops_by_slot, ii, n_iter, total_indexes)

    addr_tabs: Dict[int, List[int]] = {}
    flat_slots: List[tuple] = []
    pred_slots: List[tuple] = []
    for bucket in ops_by_slot:
        flat = []
        preds = []
        for info in bucket:
            kq = info.time // ii
            if info.is_load or info.is_store:
                addrs = addr_tabs.get(info.iid)
                if addrs is None:
                    addrs = addr_tabs[info.iid] = _address_table(
                        trc, info.iid, n_iter)
                flat.append((
                    1 if info.is_load else 2, info.iid,
                    completions.get(info.iid), info.cluster, addrs,
                    info.seq, info.replica, kq,
                ))
            for load_iid, distance in info.load_preds:
                preds.append((completions[load_iid], kq + distance))
        flat_slots.append(tuple(flat))
        pred_slots.append(tuple(preds))
    slot_counts = [len(bucket) for bucket in ops_by_slot]

    index = 0
    cycle = 0
    stall_streak = 0
    drain_low_water = float("inf")
    drain_anchor = 0
    next_prune = prune_interval

    def _stall(waits, cycle, stall_streak, index):
        """Event-to-event stall loop (frozen waits), shared by both
        issue paths; parks at long fast-forward jumps."""
        nonlocal stall_acc, ff_acc, next_prune, queued, rr_start
        while True:
            stall_acc += 1
            stall_streak += 1
            if stall_streak > watchdog:
                raise SimulationError(
                    f"machine stalled for {stall_streak} cycles at "
                    f"kernel index {index}"
                )
            # tick_end
            if queued:
                inject(cycle)
            elif bus_min <= cycle:
                rr_start = (rr_start + 1) % num_clusters
            cycle += 1

            # next_event_cycle(cycle)
            if nl_queue or (queued and bus_min <= cycle):
                event = cycle
            else:
                event = bus_min if queued else None
                if in_flight:
                    c = next(iter(in_flight))
                    if event is None or c < event:
                        event = c
                if nl_compl:
                    c = next(iter(nl_compl))
                    if event is None or c < event:
                        event = c
                if deferred:
                    c = next(iter(deferred))
                    if event is None or c < event:
                        event = c
                if event is not None and event < cycle:
                    event = cycle
            if event is None or event > cycle:
                wake = 0
                for per_load, j in waits:
                    done = per_load.get(j, 0)
                    if done is None:
                        wake = None
                        break
                    if done > wake:
                        wake = done
                if wake is None and event is None:
                    over = watchdog + 1 - stall_streak
                    stall_acc += over
                    raise SimulationError(
                        f"machine stalled for {watchdog + 1} cycles at "
                        f"kernel index {index}"
                    )
                if wake is None:
                    target = event
                elif event is None:
                    target = wake
                else:
                    target = event if event < wake else wake
                if target > cycle:
                    skipped = target - cycle
                    if stall_streak + skipped > watchdog:
                        over = watchdog + 1 - stall_streak
                        stall_acc += over
                        raise SimulationError(
                            f"machine stalled for {watchdog + 1} cycles "
                            f"at kernel index {index}"
                        )
                    stall_acc += skipped
                    ff_acc += skipped
                    stall_streak += skipped
                    skip_window(cycle, target)
                    cycle = target
                    if skipped >= prune_interval:
                        prune(completions, index, ii, length)
                        if index >= next_prune:
                            next_prune = _next_prune_after(index)
                    if skipped >= PARK_MIN_JUMP:
                        soa_cycles[run_id] = cycle
                        soa_indexes[run_id] = index
                        yield cycle
            # tick_begin
            if deferred:
                msgs = deferred.pop(cycle, None)
                if msgs:
                    for message in msgs:
                        queues[message[1]].append(message)
                    queued += len(msgs)
            if nl_compl:
                fills = nl_compl.pop(cycle, None)
                if fills:
                    for fill in fills:
                        if fill is not None:
                            handle_fill(fill[0], fill[1], cycle)
            if nl_queue and nl_ports:
                nl_accept(cycle)
            if in_flight:
                arrivals = in_flight.pop(cycle, None)
                if arrivals:
                    deliver(arrivals, cycle)
            for per_load, j in waits:
                done = per_load.get(j, 0)
                if done is None or done > cycle:
                    break
            else:
                return cycle, stall_streak

    try:
        while True:
            if index >= total_indexes:
                if not (outstanding or queued or in_flight or nl_queue
                        or nl_compl or deferred):
                    break
                # ---- post-issue drain --------------------------------
                # tick_begin
                if deferred:
                    msgs = deferred.pop(cycle, None)
                    if msgs:
                        for message in msgs:
                            queues[message[1]].append(message)
                        queued += len(msgs)
                if nl_compl:
                    fills = nl_compl.pop(cycle, None)
                    if fills:
                        for fill in fills:
                            if fill is not None:
                                handle_fill(fill[0], fill[1], cycle)
                if nl_queue and nl_ports:
                    nl_accept(cycle)
                if in_flight:
                    arrivals = in_flight.pop(cycle, None)
                    if arrivals:
                        deliver(arrivals, cycle)
                pending = (
                    outstanding + queued
                    + sum(len(v) for v in in_flight.values())
                    + len(nl_queue)
                    + sum(len(v) for v in nl_compl.values())
                    + sum(len(v) for v in deferred.values())
                )
                if pending < drain_low_water:
                    drain_low_water = pending
                    drain_anchor = cycle
                # tick_end
                if queued:
                    inject(cycle)
                elif bus_min <= cycle:
                    rr_start = (rr_start + 1) % num_clusters
                cycle += 1
                if cycle - drain_anchor > watchdog:
                    raise SimulationError(
                        f"memory system failed to drain: no progress "
                        f"for {watchdog} cycles after the last issue"
                    )
                if not (outstanding or queued or in_flight or nl_queue
                        or nl_compl or deferred):
                    continue
                # next_event_cycle(cycle)
                if nl_queue or (queued and bus_min <= cycle):
                    event = cycle
                else:
                    event = bus_min if queued else None
                    if in_flight:
                        c = next(iter(in_flight))
                        if event is None or c < event:
                            event = c
                    if nl_compl:
                        c = next(iter(nl_compl))
                        if event is None or c < event:
                            event = c
                    if deferred:
                        c = next(iter(deferred))
                        if event is None or c < event:
                            event = c
                    if event is not None and event < cycle:
                        event = cycle
                if event is None:
                    raise SimulationError(
                        f"memory system cannot drain: in-flight work "
                        f"remains but no event is pending at cycle {cycle}"
                    )
                limit = drain_anchor + watchdog
                if event > limit:
                    event = limit
                if event > cycle:
                    jump = event - cycle
                    ff_acc += jump
                    skip_window(cycle, event)
                    cycle = event
                    if jump >= PARK_MIN_JUMP:
                        soa_cycles[run_id] = cycle
                        soa_indexes[run_id] = index
                        yield cycle
                continue

            if steady_lo <= index < steady_hi:
                q_round, slot = divmod(index, ii)
                # ---- bulk fast path: memory-free kernel-index runs ---
                if all_clean:
                    k = steady_hi - index
                else:
                    k = run_len[slot]
                    if k:
                        bound = steady_hi - index
                        if k > bound:
                            k = bound
                if k and not (outstanding or queued or in_flight
                              or nl_queue or nl_compl or deferred):
                    if all_clean:
                        whole, rem = divmod(k, ii)
                        issued_acc += whole * ops_per_ii + (
                            count_prefix[slot + rem] - count_prefix[slot]
                        )
                    else:
                        issued_acc += (
                            count_prefix[slot + k] - count_prefix[slot]
                        )
                    compute_acc += k
                    fr_acc += k
                    skip_window(cycle, cycle + k)
                    index += k
                    cycle += k
                    stall_streak = 0
                    if index >= next_prune:
                        prune(completions, index, ii, length)
                        next_prune = _next_prune_after(index)
                    continue

                # ---- one steady-state kernel index -------------------
                # tick_begin
                if deferred:
                    msgs = deferred.pop(cycle, None)
                    if msgs:
                        for message in msgs:
                            queues[message[1]].append(message)
                        queued += len(msgs)
                if nl_compl:
                    fills = nl_compl.pop(cycle, None)
                    if fills:
                        for fill in fills:
                            if fill is not None:
                                handle_fill(fill[0], fill[1], cycle)
                if nl_queue and nl_ports:
                    nl_accept(cycle)
                if in_flight:
                    arrivals = in_flight.pop(cycle, None)
                    if arrivals:
                        deliver(arrivals, cycle)

                preds = pred_slots[slot]
                for per_load, kqd in preds:
                    j = q_round - kqd
                    if j >= 0:
                        done = per_load.get(j, 0)
                        if done is None or done > cycle:
                            waits = [
                                (pl, q_round - kq)
                                for pl, kq in preds
                                if q_round - kq >= 0
                            ]
                            cycle, stall_streak = yield from _stall(
                                waits, cycle, stall_streak, index
                            )
                            break

                for (kind, iid, per_load, cluster, addrs, seq, replica,
                     kq) in flat_slots[slot]:
                    it = q_round - kq
                    if kind == 1:
                        per_load[it] = None
                        flat_load(cluster, addrs[it], iid, it, per_load,
                                  cycle)
                    else:
                        flat_store(cluster, addrs[it], it, seq, replica,
                                   cycle)
                issued_acc += slot_counts[slot]
            else:
                # ---- prologue/epilogue ramp index (generic path) -----
                # tick_begin
                if deferred:
                    msgs = deferred.pop(cycle, None)
                    if msgs:
                        for message in msgs:
                            queues[message[1]].append(message)
                        queued += len(msgs)
                if nl_compl:
                    fills = nl_compl.pop(cycle, None)
                    if fills:
                        for fill in fills:
                            if fill is not None:
                                handle_fill(fill[0], fill[1], cycle)
                if nl_queue and nl_ports:
                    nl_accept(cycle)
                if in_flight:
                    arrivals = in_flight.pop(cycle, None)
                    if arrivals:
                        deliver(arrivals, cycle)

                due = _due_ops(ops_by_slot, index, ii, n_iter)
                if not _all_ready(due, completions, cycle):
                    waits = [
                        (completions[load_iid], iteration - distance)
                        for info, iteration in due
                        for load_iid, distance in info.load_preds
                        if iteration - distance >= 0
                    ]
                    cycle, stall_streak = yield from _stall(
                        waits, cycle, stall_streak, index
                    )
                for info, iteration in due:
                    issued_acc += 1
                    if info.is_load:
                        per_load = completions[info.iid]
                        per_load[iteration] = None
                        flat_load(info.cluster,
                                  addr_tabs[info.iid][iteration],
                                  info.iid, iteration, per_load, cycle)
                    elif info.is_store:
                        flat_store(info.cluster,
                                   addr_tabs[info.iid][iteration],
                                   iteration, info.seq, info.replica,
                                   cycle)

            index += 1
            compute_acc += 1
            stall_streak = 0
            # tick_end
            if queued:
                inject(cycle)
            elif bus_min <= cycle:
                rr_start = (rr_start + 1) % num_clusters
            cycle += 1
            if index >= next_prune:
                prune(completions, index, ii, length)
                next_prune = _next_prune_after(index)

        # ---- loop-boundary Attraction-Buffer flush -------------------
        # simulate() flushes after the engine returns; doing it here
        # (still before the stats flush below) is observation-identical
        # and keeps the flat AB state private to this frame.
        if use_abs and flush_abs:
            for cluster_sets in ab_sets:
                for abset in cluster_sets:
                    for key, entry in abset.items():
                        if entry[1]:
                            for a, v in entry[0].items():
                                apply_store(key, a, v)
                            ab_flushed_acc += 1
                    abset.clear()
    finally:
        stats.compute_cycles += compute_acc
        stats.stall_cycles += stall_acc
        stats.issued_ops += issued_acc
        stats.fast_forwarded_cycles += ff_acc
        stats.fast_retired_indexes += fr_acc
        accesses = stats.accesses
        accesses[AccessType.LOCAL_HIT] += acc_local_hit
        accesses[AccessType.REMOTE_HIT] += acc_remote_hit
        accesses[AccessType.LOCAL_MISS] += acc_local_miss
        accesses[AccessType.REMOTE_MISS] += acc_remote_miss
        accesses[AccessType.COMBINED] += acc_combined
        stats.coherence_violations += viol_acc
        stats.nullified_stores += nullified_acc
        stats.ab_hits = ab_hits_total
        stats.ab_fills = ab_fills_total
        stats.ab_overflows = ab_overflows_total
        stats.ab_flushed_dirty += ab_flushed_acc
        stats.bus_transfers = transfers
        stats.bus_transfer_kinds = {
            kind: count
            for kind, count in zip(
                ("req_load", "req_store", "resp"), transfers_by_kind
            )
            if count
        }
        stats.bus_queued_cycles = bus_queued_cycles
        stats.next_level_requests = nl_requests
        out["busy_cycles"] = busy_cycles
        soa_cycles[run_id] = cycle
        soa_indexes[run_id] = index
