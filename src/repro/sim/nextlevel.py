"""The next memory level: 4 ports, fixed total latency, always hits
(paper Table 2).

Requests are accepted FIFO, at most ``ports`` per cycle; an accepted
request completes ``latency`` cycles later, invoking its callback.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List

from repro.arch.config import NextLevelConfig


@dataclass
class NextLevelRequest:
    on_fill: Callable[[int], None]
    enqueued_at: int = 0


class NextLevel:
    """Always-hit backing store behind every cache module."""

    def __init__(self, config: NextLevelConfig) -> None:
        self.config = config
        self._queue: Deque[NextLevelRequest] = deque()
        self._completions: Dict[int, List[NextLevelRequest]] = {}
        self.requests = 0
        self.queued_cycles = 0

    def request(self, req: NextLevelRequest) -> None:
        self._queue.append(req)
        self.requests += 1

    def pending(self) -> int:
        return len(self._queue) + sum(len(v) for v in self._completions.values())

    def tick(self, cycle: int) -> None:
        """Complete due fills, then accept up to ``ports`` new requests."""
        if self._completions:
            for req in self._completions.pop(cycle, ()):
                req.on_fill(cycle)
        if self._queue:
            accepted = 0
            while self._queue and accepted < self.config.ports:
                req = self._queue.popleft()
                done = cycle + self.config.latency
                self._completions.setdefault(done, []).append(req)
                accepted += 1
            self.queued_cycles += len(self._queue)
