"""DLS: directoryless shared last-level cache.

Every cache block lives in exactly one *home slice*, chosen by a
multiplicative hash of the block number — there are no per-cluster
copies, so there is nothing to invalidate and no broadcast.  A load or
store is local exactly when its cluster is the block's home slice;
otherwise it travels there as an ordinary request and is served at the
slice's serialization point.  The protocol skeleton (request/response,
home-side MSHR combining) is the snooping one — only the placement map
differs — which is why :class:`DLSMemorySystem` overrides a single
routing hook.

Because a block has exactly one resident copy, Attraction Buffers (which
cache *extra* copies) are meaningless here and are rejected at build
time.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.config import MachineConfig
from repro.sim.coherence import CoherenceChecker
from repro.sim.memory import MemorySystem, SubblockKey, TraceCallback
from repro.sim.models import MemoryModel, register_model
from repro.sim.stats import SimStats

#: Knuth's multiplicative constant; spreads consecutive blocks across
#: slices without the modulo-striding artifacts of ``block % N``.
_HASH_MULTIPLIER = 2654435761


def dls_home(block: int, num_clusters: int) -> int:
    """The hashed home slice of ``block`` (shared with the check model)."""
    return ((block * _HASH_MULTIPLIER) >> 8) % num_clusters


class DLSMemorySystem(MemorySystem):
    """Snooping flows over block-granular, hash-placed subblocks."""

    def _route(self, addr: int) -> Tuple[int, SubblockKey]:
        block = addr // self.machine.cache.block_bytes
        home = dls_home(block, self.machine.num_clusters)
        return home, (block, home)


class DLSModel(MemoryModel):
    name = "dls"
    description = (
        "directoryless shared LLC: blocks hash to a single home slice; "
        "no copies, no invalidation broadcast"
    )
    flat_stepper_capable = False
    supports_attraction = False

    def build(
        self,
        machine: MachineConfig,
        stats: SimStats,
        checker: Optional[CoherenceChecker] = None,
        trace: Optional[TraceCallback] = None,
    ) -> MemorySystem:
        self._reject_attraction(machine)
        return DLSMemorySystem(machine, stats, checker, trace)


MODEL = register_model(DLSModel())
