"""The paper's protocol as the default registered memory model.

Word-interleaved homes (:mod:`repro.sim.interleave`), remote requests
over the snooping bus fabric, home-side MSHR combining, optional
Attraction Buffers.  ``build()`` returns the plain
:class:`~repro.sim.memory.MemorySystem` — the registry wrapper adds no
behaviour, which is what keeps the refactor byte-identical to the
goldens.
"""

from __future__ import annotations

from typing import Optional

from repro.arch.config import MachineConfig
from repro.sim.coherence import CoherenceChecker
from repro.sim.memory import MemorySystem, TraceCallback
from repro.sim.models import MemoryModel, register_model
from repro.sim.stats import SimStats


class SnoopingModel(MemoryModel):
    name = "snooping"
    description = (
        "paper baseline: word-interleaved homes, snooping bus, "
        "remote-request buffers (+ optional Attraction Buffers)"
    )
    flat_stepper_capable = True
    supports_attraction = True

    def build(
        self,
        machine: MachineConfig,
        stats: SimStats,
        checker: Optional[CoherenceChecker] = None,
        trace: Optional[TraceCallback] = None,
    ) -> MemorySystem:
        return MemorySystem(machine, stats, checker, trace)

    def conformance_address(self, machine: MachineConfig, sb: int) -> int:
        # Distinct blocks whose interleaved home is ``sb % clusters`` —
        # the check model's home map for this protocol.
        return (sb * machine.cache.block_bytes
                + (sb % machine.num_clusters) * machine.interleave_bytes)


MODEL = register_model(SnoopingModel())
