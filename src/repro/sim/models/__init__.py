"""Pluggable memory-system models.

The paper's memory system — word-interleaved homes on a snooping bus
with remote-request buffers — used to be hard-coded in three places (the
object engine, the flattened batch stepper and the checker's transition
table).  This package turns the protocol into a first-class axis: a
:class:`MemoryModel` names one protocol + placement scheme, owns the
construction of its :class:`~repro.sim.memory.MemorySystem` subclass,
and points at the matching exhaustive-check model and conformance
address scheme.  Registered models:

``snooping``
    The paper's protocol, unchanged (the default; byte-identical to the
    pre-registry simulator — the goldens pin this).
``dls``
    Directoryless shared last-level cache: every block lives in exactly
    one address-hashed home slice; no per-cluster copies, hence no
    invalidation broadcast and no Attraction Buffers.
``directory``
    Distributed directory: a per-block *home* answers where the block
    lives and forwards the request to the *owner* slice, with every hop
    (request -> home -> owner -> requester) accounted as its own bus
    message kind.

``named_model()`` resolves a registry name; the name rides in
:class:`~repro.api.spec.RunSpec` (and the ``-mm<model>`` machine-name
suffix), so content hashes distinguish models.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.arch.config import MachineConfig
from repro.errors import ConfigError
from repro.sim.coherence import CoherenceChecker
from repro.sim.memory import MemorySystem, TraceCallback
from repro.sim.stats import SimStats

#: The model every entry point defaults to; its behaviour is pinned by
#: the goldens and the events<->batch differential tests.
DEFAULT_MODEL = "snooping"


class MemoryModel:
    """One memory-system model: protocol + placement + check mapping.

    Subclasses define the class attributes and override :meth:`build`
    (and, for a non-interleaved placement, :meth:`conformance_address`).
    """

    #: registry key; also the ``--model`` / ``-mm`` spelling
    name: str = ""
    #: one-line human description for ``repro list``
    description: str = ""
    #: True when the flattened batch stepper implements this model, so
    #: ``engine="batch"`` may take the tuple-message fast path
    flat_stepper_capable: bool = False
    #: True when the model keeps per-cluster copies that Attraction
    #: Buffers can extend (only the snooping protocol does)
    supports_attraction: bool = True

    def build(
        self,
        machine: MachineConfig,
        stats: SimStats,
        checker: Optional[CoherenceChecker] = None,
        trace: Optional[TraceCallback] = None,
    ) -> MemorySystem:
        """Construct this model's memory system for one run."""
        raise NotImplementedError

    def check_model(self) -> type:
        """The matching :mod:`repro.check` protocol-model class.

        Imported lazily: the check layer depends on the sim layer, not
        the other way around.
        """
        from repro.check.variants import named_check_model

        return named_check_model(self.name)

    def conformance_address(self, machine: MachineConfig, sb: int) -> int:
        """An address whose block id is ``sb`` and whose serving cluster
        matches the check model's ``home(sb)`` under ``machine``."""
        return sb * machine.cache.block_bytes

    def _reject_attraction(self, machine: MachineConfig) -> None:
        if machine.attraction_buffer is not None:
            raise ConfigError(
                f"memory model {self.name!r} keeps no per-cluster copies; "
                f"Attraction Buffers are not supported"
            )


#: name -> registered model instance
MODELS: Dict[str, MemoryModel] = {}


def register_model(model: MemoryModel) -> MemoryModel:
    if not model.name:
        raise ConfigError("memory model needs a non-empty name")
    if model.name in MODELS:
        raise ConfigError(f"memory model {model.name!r} already registered")
    MODELS[model.name] = model
    return model


def model_names() -> Tuple[str, ...]:
    return tuple(sorted(MODELS))


def named_model(name: str) -> MemoryModel:
    try:
        return MODELS[name]
    except KeyError:
        raise ConfigError(
            f"unknown memory model {name!r}; registered: "
            + ", ".join(model_names())
        ) from None


# Registration happens at import time; the submodules call
# register_model() themselves.
from repro.sim.models import snooping as _snooping  # noqa: E402,F401
from repro.sim.models import dls as _dls  # noqa: E402,F401
from repro.sim.models import directory as _directory  # noqa: E402,F401

__all__ = [
    "DEFAULT_MODEL",
    "MODELS",
    "MemoryModel",
    "model_names",
    "named_model",
    "register_model",
]
