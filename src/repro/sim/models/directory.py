"""Distributed-directory memory model with per-hop message accounting.

Each block has a static *directory home* (``block % N``) that knows
where the block lives, and a static *owner* slice (``(block // N) % N``)
that actually holds the data.  An access from cluster ``c`` to block
``b`` takes one of three paths:

* ``c == home == owner`` — served locally (the snooping local flow);
* ``c == home != owner`` — the directory lookup is local and free; the
  access is forwarded straight to the owner (one ``fwd_*`` hop);
* ``c != home`` — a ``req_*`` hop to the directory home, which either
  serves the request itself (``home == owner``) or forwards it to the
  owner (a second, ``fwd_*`` hop).

The owner is the serialization point: loads observe there and responses
travel back as an explicit ``resp`` hop (request -> home -> owner ->
requester), so the per-kind traffic breakdown in
``SimStats.bus_transfer_kinds`` exposes exactly how many messages each
hop of the directory protocol cost.  Aliasing accesses from one cluster
always take the same path and every hop is a per-source FIFO, so the
issue-order delivery guarantee the MDC/DDGT solutions rely on holds
hop by hop.

Like DLS there is a single resident copy per block, so Attraction
Buffers are rejected at build time.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.arch.config import MachineConfig
from repro.sim.bus import BusMessage
from repro.sim.coherence import CoherenceChecker
from repro.sim.memory import (
    LoadCallback,
    MemorySystem,
    SubblockKey,
    TraceCallback,
    Version,
    _HomeWaiter,
    _PendingLoad,
)
from repro.sim.models import MemoryModel, register_model
from repro.sim.stats import AccessType, SimStats


def directory_home(block: int, num_clusters: int) -> int:
    """The cluster holding ``block``'s directory entry."""
    return block % num_clusters


def directory_owner(block: int, num_clusters: int) -> int:
    """The slice holding ``block``'s data (decoupled from the home so
    both the forwarded and the home-owned paths occur)."""
    return (block // num_clusters) % num_clusters


class DirectoryMemorySystem(MemorySystem):
    """Request -> home -> owner -> requester, each hop a bus message."""

    def _route(self, addr: int) -> Tuple[int, SubblockKey]:
        block = addr // self.machine.cache.block_bytes
        owner = directory_owner(block, self.machine.num_clusters)
        return owner, (block, owner)

    # ------------------------------------------------------------------
    # Access API: three-way path split
    # ------------------------------------------------------------------
    def load(
        self,
        cluster: int,
        addr: int,
        width: int,
        iid: int,
        iteration: int,
        on_complete: LoadCallback,
        cycle: int,
    ) -> None:
        self._check_alignment(addr, width)
        block = addr // self.machine.cache.block_bytes
        n = self.machine.num_clusters
        home = directory_home(block, n)
        owner = directory_owner(block, n)
        key = (block, owner)
        pending = _PendingLoad(iid, iteration, addr, on_complete)
        if cluster == home:
            if owner == cluster:
                self._local_load(cluster, key, pending, cycle)
                return
            self._forward_issue_load(cluster, owner, key, pending, cycle)
            return
        self._remote_load(cluster, home, key, pending, cycle)

    def store(
        self,
        cluster: int,
        addr: int,
        width: int,
        iid: int,
        iteration: int,
        version: Version,
        replica: bool,
        cycle: int,
    ) -> None:
        self._check_alignment(addr, width)
        block = addr // self.machine.cache.block_bytes
        n = self.machine.num_clusters
        home = directory_home(block, n)
        owner = directory_owner(block, n)
        key = (block, owner)
        if replica and cluster != home:
            # Exactly one replicated instance executes: the one at the
            # directory home (section 3.3 semantics under this routing).
            self.stats.nullified_stores += 1
            return
        if cluster == home:
            if owner == cluster:
                self._local_store(cluster, key, addr, version, cycle)
                return
            self._forward_issue_store(cluster, owner, key, addr, version,
                                      cycle)
            return
        self._remote_store(cluster, home, key, addr, version, cycle)

    # ------------------------------------------------------------------
    # Direct forwards (requester is the directory home; lookup is free)
    # ------------------------------------------------------------------
    def _forward_issue_load(
        self, cluster: int, owner: int, key: SubblockKey,
        pending: _PendingLoad, cycle: int,
    ) -> None:
        self._outstanding += 1
        if self._trace is not None:
            self._trace(("forward_issue", cluster, key[0], "load",
                         pending.iid))

        def at_owner(arrival: int) -> None:
            self._owner_load_request(cluster, owner, key, pending, arrival)

        self.fabric.send(
            BusMessage(src=cluster, dst=owner, on_deliver=at_owner,
                       enqueued_at=cycle, kind="fwd_load")
        )

    def _forward_issue_store(
        self, cluster: int, owner: int, key: SubblockKey, addr: int,
        version: Version, cycle: int,
    ) -> None:
        self._outstanding += 1
        if self._trace is not None:
            self._trace(("forward_issue", cluster, key[0], "store", version))

        def at_owner(arrival: int) -> None:
            self._owner_store_request(owner, key, addr, version, src=cluster)
            self._outstanding -= 1

        self.fabric.send(
            BusMessage(src=cluster, dst=owner, on_deliver=at_owner,
                       enqueued_at=cycle, kind="fwd_store")
        )

    # ------------------------------------------------------------------
    # Home side: serve in place or forward to the owner
    # ------------------------------------------------------------------
    def _home_load_request(
        self, requester: int, home: int, key: SubblockKey,
        pending: _PendingLoad, arrival: int,
    ) -> None:
        owner = key[1]
        if owner == home:
            super()._home_load_request(requester, home, key, pending, arrival)
            return
        if self._trace is not None:
            self._trace(("forward", home, owner, requester, key[0], "load",
                         pending.iid))

        def at_owner(arrival2: int) -> None:
            self._owner_load_request(requester, owner, key, pending, arrival2)

        self.fabric.send(
            BusMessage(src=home, dst=owner, on_deliver=at_owner,
                       enqueued_at=arrival, kind="fwd_load")
        )

    def _home_store_request(
        self, home: int, key: SubblockKey, addr: int, version: Version,
        src: Optional[int] = None,
    ) -> None:
        owner = key[1]
        if owner == home:
            super()._home_store_request(home, key, addr, version, src=src)
            return
        if self._trace is not None:
            self._trace(("forward", home, owner, src, key[0], "store",
                         version))
        # The caller decrements its in-flight count right after this
        # call; keep the access outstanding across the forwarded hop.
        self._outstanding += 1

        def at_owner(arrival: int) -> None:
            self._owner_store_request(owner, key, addr, version, src=src)
            self._outstanding -= 1

        self.fabric.send(
            BusMessage(src=home, dst=owner, on_deliver=at_owner,
                       kind="fwd_store")
        )

    # ------------------------------------------------------------------
    # Owner side: the serialization point (mirrors the home flows of the
    # base protocol, with its own trace vocabulary)
    # ------------------------------------------------------------------
    def _owner_load_request(
        self, requester: int, owner: int, key: SubblockKey,
        pending: _PendingLoad, arrival: int,
    ) -> None:
        block = key[0]
        module = self.modules[owner]
        if module.probe(block):
            self.stats.record_access(AccessType.REMOTE_HIT)
            if self._trace is not None:
                self._trace(("owner_request", owner, requester, block,
                             "load", pending.iid, "hit"))
            self._send_response(
                owner, requester, key, pending,
                send_at=arrival + self.machine.cache.hit_latency,
                now=arrival,
            )
            return
        waiter = self._home_mshr[owner].get(block)
        if waiter is not None:
            self.stats.record_access(AccessType.COMBINED)
            if self._trace is not None:
                self._trace(("owner_request", owner, requester, block,
                             "load", pending.iid, "combine"))
            waiter.defer_response(requester, pending)
            self._outstanding += 1
            return
        self.stats.record_access(AccessType.REMOTE_MISS)
        if self._trace is not None:
            self._trace(("owner_request", owner, requester, block, "load",
                         pending.iid, "miss"))
        waiter = _HomeWaiter()
        waiter.defer_response(requester, pending)
        self._home_mshr[owner][block] = waiter
        self._outstanding += 1
        self._fetch(owner, block)

    def _owner_store_request(
        self, owner: int, key: SubblockKey, addr: int, version: Version,
        src: Optional[int] = None,
    ) -> None:
        block = key[0]
        module = self.modules[owner]
        if module.probe(block):
            self.stats.record_access(AccessType.REMOTE_HIT)
            if self._trace is not None:
                self._trace(("owner_request", owner, src, block, "store",
                             version, "hit"))
            module.mark_dirty(block)
            self._apply_store(key, addr, version)
            return
        waiter = self._home_mshr[owner].get(block)
        if waiter is not None:
            self.stats.record_access(AccessType.COMBINED)
            if self._trace is not None:
                self._trace(("owner_request", owner, src, block, "store",
                             version, "combine"))
            waiter.defer_store(addr, version)
            self._outstanding += 1
            return
        self.stats.record_access(AccessType.REMOTE_MISS)
        if self._trace is not None:
            self._trace(("owner_request", owner, src, block, "store",
                         version, "miss"))
        waiter = _HomeWaiter()
        waiter.defer_store(addr, version)
        self._home_mshr[owner][block] = waiter
        self._outstanding += 1
        self._fetch(owner, block)


class DirectoryModel(MemoryModel):
    name = "directory"
    description = (
        "distributed directory: per-block home forwards to the owner "
        "slice; per-hop req/fwd/resp traffic accounting"
    )
    flat_stepper_capable = False
    supports_attraction = False

    def build(
        self,
        machine: MachineConfig,
        stats: SimStats,
        checker: Optional[CoherenceChecker] = None,
        trace: Optional[TraceCallback] = None,
    ) -> MemorySystem:
        self._reject_attraction(machine)
        return DirectoryMemorySystem(machine, stats, checker, trace)


MODEL = register_model(DirectoryModel())
