"""Word-interleaved address mapping (paper section 2.1, Figure 1).

A cache block of ``block_bytes`` is split across the ``N`` clusters in
``interleave_bytes`` units: unit ``k`` of a block belongs to cluster
``k mod N``.  The words of one block owned by one cluster form that
cluster's *subblock* of the block.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.arch.config import MachineConfig


def home_cluster(machine: MachineConfig, address: int) -> int:
    """The cluster whose cache module owns ``address``."""
    return (address // machine.interleave_bytes) % machine.num_clusters


def block_id(machine: MachineConfig, address: int) -> int:
    """Cache-block number of ``address``."""
    return address // machine.cache.block_bytes


def subblock_id(machine: MachineConfig, address: int) -> Tuple[int, int]:
    """Identifier of the subblock containing ``address``:
    ``(block id, home cluster)``."""
    return block_id(machine, address), home_cluster(machine, address)


def subblock_addresses(machine: MachineConfig, block: int, cluster: int) -> List[int]:
    """Start addresses of the interleave units of ``block`` owned by
    ``cluster`` (e.g. words 0 and 4 of an 8-word block for cluster 1 of 4,
    as in the paper's Figure 1 example)."""
    base = block * machine.cache.block_bytes
    step = machine.interleave_bytes * machine.num_clusters
    first_unit = base // machine.interleave_bytes
    # Align to the first unit of this block owned by `cluster`.
    offset_units = (cluster - first_unit) % machine.num_clusters
    start = base + offset_units * machine.interleave_bytes
    end = base + machine.cache.block_bytes
    return list(range(start, end, step))


def spans_clusters(machine: MachineConfig, address: int, width: int) -> bool:
    """Whether an access crosses an interleave-unit boundary (and therefore
    touches more than one cluster).  The workloads keep accesses aligned so
    this never happens, mirroring the paper's aligned media kernels; the
    memory system asserts it."""
    first = address // machine.interleave_bytes
    last = (address + width - 1) // machine.interleave_bytes
    return first != last
