"""Coherence violation detection.

The simulation is trace-driven, so — like the paper's (section 4.1,
footnote) — values are always "correct"; what we detect is every event
where real hardware would *not* have been: a load observing a memory
version different from the one sequential program order prescribes, or a
store application inverting program order at its home module.

Versions are ``(iteration, seq)`` pairs stamped by stores; for any single
address they are totally ordered by program order.  Before simulation the
checker walks the whole access stream in sequential order and records, for
every load instance, the version of the last store instance that wrote its
address — the *expected* version.  At run time the memory system reports
what each load actually observed.

Observation points are *untimed*: the memory system reports each load at
its serialization point and each write inversion at store application,
as side effects of access flows and event deliveries.  Where that
serialization point sits depends on the memory model
(:mod:`repro.sim.models`) — a local/attracted probe, a home-slice
response or a fill replay under snooping and DLS, the owner slice's
service of a possibly-forwarded request under the distributed
directory — but the checker itself is model-agnostic: it compares
versions, not routes.  The event-skipping executor only fast-forwards
cycles on which no flow advances, so the sequence of observations — and
hence every violation count — is identical under both simulation
engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.alias.profiles import TraceLike
from repro.ir.ddg import Ddg

Version = Tuple[int, int]


def classify_observation(
    expected: Optional[Version], observed: Optional[Version]
) -> Optional[str]:
    """Classify one load observation against its oracle.

    Returns ``None`` when the load saw exactly the prescribed version,
    ``"stale"`` when it saw an older one (a missed store — the hazard of
    the paper's Figure 2) and ``"future"`` when it saw a younger one (a
    broken memory-anti dependence).  ``None`` versions mean the initial
    memory contents, older than every store.  Pure and total — shared by
    :class:`CoherenceChecker` and the conformance bridge
    (:mod:`repro.check.conformance`).
    """
    if observed == expected:
        return None
    if expected is None or (observed is not None and observed > expected):
        return "future"
    return "stale"


@dataclass
class ViolationCounts:
    stale_reads: int = 0      # load observed an older version than expected
    future_reads: int = 0     # load observed a younger version (MA broken)
    write_inversions: int = 0  # stores applied out of program order

    @property
    def total(self) -> int:
        return self.stale_reads + self.future_reads + self.write_inversions


class CoherenceChecker:
    """Oracle for sequential memory semantics over one simulated loop.

    Granularity note: versions are tracked per exact access address; the
    workload catalog only aliases accesses of identical address and width,
    mirroring the aligned media kernels of the paper's benchmarks.
    """

    def __init__(
        self,
        ddg: Ddg,
        trace: TraceLike,
        iterations: int,
    ) -> None:
        self.counts = ViolationCounts()
        self._expected: Dict[Tuple[int, int], Optional[Version]] = {}
        self._precompute(ddg, trace, iterations)

    # ------------------------------------------------------------------
    def _precompute(self, ddg: Ddg, trace: TraceLike, iterations: int) -> None:
        """Sequential walk of all memory instances in program order.

        Replicated store instances stand for a single logical store; only
        the original (``iid == replica_group``) participates in the walk.
        """
        ops = [
            v
            for v in ddg.memory_instructions()
            if v.replica_group is None or v.replica_group == v.iid
        ]
        ops.sort(key=lambda v: (v.seq, v.iid))
        last_writer: Dict[int, Version] = {}
        for iteration in range(iterations):
            for op in ops:
                addr = trace.address(op.iid, iteration)
                if op.is_store:
                    last_writer[addr] = (iteration, op.seq)
                else:
                    self._expected[(op.iid, iteration)] = last_writer.get(addr)

    # ------------------------------------------------------------------
    def expected(self, load_iid: int, iteration: int) -> Optional[Version]:
        return self._expected.get((load_iid, iteration))

    def observe_load(
        self, load_iid: int, iteration: int, observed: Optional[Version]
    ) -> bool:
        """Report what a load actually saw; returns True on violation.

        For replicated graphs callers pass the *original* iid (loads are
        never replicated, so this is only a documentation point).
        """
        verdict = classify_observation(
            self._expected.get((load_iid, iteration)), observed
        )
        if verdict is None:
            return False
        if verdict == "future":
            self.counts.future_reads += 1
        else:
            self.counts.stale_reads += 1
        return True

    def observe_write_inversion(self) -> None:
        """The memory system saw a store apply under a younger version."""
        self.counts.write_inversions += 1

    @property
    def total_violations(self) -> int:
        return self.counts.total
