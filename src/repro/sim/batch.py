"""Batched lockstep simulation: many independent runs per process.

:class:`BatchSimulator` co-schedules N compiled runs in one process.
Each run is driven by a *stepper* — a generator that executes the run's
modulo schedule against its own :class:`~repro.sim.memory.MemorySystem`
and yields (parks) whenever it fast-forwards across a long stalled or
drain window.  A single shared event heap keyed by
``(next_event_cycle, run_id)`` always resumes the run with the nearest
pending event, so the batch advances in lockstep over *simulated* time
and every Python-level step goes to whichever run has work.

Cross-run scheduler state is struct-of-arrays: per-run cycle counters,
kernel indexes and step counts live in parallel arrays indexed by run
id (see :meth:`BatchSimulator.snapshot`), while each run's micro-state
(in-flight load maps, bus queues) stays inside its stepper frame — a
generator resumption restores all of it in one C-level jump with no
explicit state save/load.

Where the speedup comes from
----------------------------

The runs are independent, so lockstep alone wins nothing; the batch
engine's ≥3x aggregate throughput over per-run ``engine="events"``
(``benchmarks/bench_sim_batch.py``) comes from the flattened per-run
stepper of :mod:`repro.sim.flatmem`.  Profiling mixed scenario batches
shows ~80% of the events engine's wall time inside the memory
subsystem's object protocol — dataclass message allocation, delivery
closures, and deep method chains on every access — so the flat stepper
executes the identical protocol over tuple messages and plain
containers held in generator locals: steady-state dispatch tables
replace the per-index due-op build, tick pairs reduce to truthiness
checks on flat dicts/deques, and all stat counters accumulate in local
integers flushed once per run.

Everything with observable semantics — issue order inside a slot, bus
arbitration and delivery order, MSHR action replay, the stall loop's
event-to-event jumps, watchdog bounds and error strings, drain
low-water anchoring, completion-map pruning — replicates
``_run_event_skipping`` + ``MemorySystem`` exactly, so each run's
serialized record stays byte-identical to ``engine="events"`` (pinned
by the golden suite and the differential cross in
``tests/test_sim_batch.py``).  When the executor's ``MemorySystem``
has been substituted (fault-injecting test doubles), a compatibility
stepper that mirrors the events engine verbatim — same method calls on
the real memory object — is used instead, so the equivalence holds by
construction there too.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.alias.profiles import TraceLike
from repro.errors import SimulationError
from repro.obs import metrics, trace
from repro.sched.pipeline import CompilationResult
from repro.sim import executor as _executor
from repro.sim.coherence import CoherenceChecker
from repro.sim.executor import (
    SimulationResult,
    _all_ready,
    _due_ops,
    _fastpath_tables,
    _issue,
    _next_prune_after,
    _prepare,
)
from repro.sim.flatmem import PARK_MIN_JUMP, flat_stepper
from repro.sim.memory import MemorySystem
from repro.sim.models import named_model
from repro.sim.stats import SimStats

#: Default number of runs co-scheduled per process.
DEFAULT_BATCH_SIZE = 64

_DRAIN_ERROR = (
    "memory system failed to drain: no progress for "
    "{watchdog} cycles after the last issue"
)


def _stepper_compat(
    schedule, n_iter, total_indexes, ops_by_slot, completions,
    trc, memory, stats, soa_cycles, soa_indexes, run_id,
):
    """Events-engine-verbatim stepper for subclassed memory systems.

    Used when the memory system overrides any of the driving methods
    (test doubles like the watchdog fault injectors) or carries a
    protocol trace hook: the fast stepper's inlined tick pairs would
    bypass the overrides.  This is ``_run_event_skipping`` line for
    line, plus parks at the same fast-forward points as the fast
    stepper, so the observable behavior is trivially identical.
    """
    ii = schedule.ii
    length = schedule.length
    watchdog = _executor.STALL_WATCHDOG
    prune_interval = _executor._PRUNE_INTERVAL
    prune = _executor._prune
    index = 0
    cycle = 0
    stall_streak = 0
    drain_low_water = float("inf")
    drain_anchor = 0
    next_prune = prune_interval

    (
        run_len, all_clean, count_prefix, ops_per_ii, steady_lo, steady_hi,
    ) = _fastpath_tables(ops_by_slot, ii, n_iter, total_indexes)

    while index < total_indexes or not memory.quiescent():
        if index >= total_indexes:
            memory.tick_begin(cycle)
            pending = memory.pending_work()
            if pending < drain_low_water:
                drain_low_water = pending
                drain_anchor = cycle
            memory.tick_end(cycle)
            cycle += 1
            if cycle - drain_anchor > watchdog:
                raise SimulationError(_DRAIN_ERROR.format(watchdog=watchdog))
            if memory.quiescent():
                continue
            event = memory.next_event_cycle(cycle)
            if event is None:
                raise SimulationError(
                    f"memory system cannot drain: in-flight work remains "
                    f"but no event is pending at cycle {cycle}"
                )
            limit = drain_anchor + watchdog
            if event > limit:
                event = limit
            if event > cycle:
                jump = event - cycle
                stats.fast_forwarded_cycles += jump
                memory.advance(cycle, event)
                cycle = event
                if jump >= PARK_MIN_JUMP:
                    soa_cycles[run_id] = cycle
                    soa_indexes[run_id] = index
                    yield cycle
            continue

        if steady_lo <= index < steady_hi:
            slot = index % ii
            if all_clean:
                k = steady_hi - index
            else:
                k = run_len[slot]
                if k:
                    bound = steady_hi - index
                    if k > bound:
                        k = bound
            if k and memory.quiescent():
                if all_clean:
                    whole, rem = divmod(k, ii)
                    issued = whole * ops_per_ii + (
                        count_prefix[slot + rem] - count_prefix[slot]
                    )
                else:
                    issued = count_prefix[slot + k] - count_prefix[slot]
                stats.issued_ops += issued
                stats.compute_cycles += k
                stats.fast_retired_indexes += k
                memory.advance(cycle, cycle + k)
                index += k
                cycle += k
                stall_streak = 0
                if index >= next_prune:
                    prune(completions, index, ii, length)
                    next_prune = _next_prune_after(index)
                continue

        memory.tick_begin(cycle)
        due = _due_ops(ops_by_slot, index, ii, n_iter)
        if not _all_ready(due, completions, cycle):
            waits = [
                (completions[load_iid], iteration - distance)
                for info, iteration in due
                for load_iid, distance in info.load_preds
                if iteration - distance >= 0
            ]
            while True:
                stats.stall_cycles += 1
                stall_streak += 1
                if stall_streak > watchdog:
                    raise SimulationError(
                        f"machine stalled for {stall_streak} cycles at "
                        f"kernel index {index}"
                    )
                memory.tick_end(cycle)
                cycle += 1

                event = memory.next_event_cycle(cycle)
                if event is None or event > cycle:
                    wake = 0
                    for per_load, j in waits:
                        done = per_load.get(j, 0)
                        if done is None:
                            wake = None
                            break
                        if done > wake:
                            wake = done
                    if wake is None and event is None:
                        _executor._raise_watchdog(stats, stall_streak, index)
                    if wake is None:
                        target = event
                    elif event is None:
                        target = wake
                    else:
                        target = event if event < wake else wake
                    if target > cycle:
                        skipped = target - cycle
                        if stall_streak + skipped > watchdog:
                            _executor._raise_watchdog(
                                stats, stall_streak, index
                            )
                        stats.stall_cycles += skipped
                        stats.fast_forwarded_cycles += skipped
                        stall_streak += skipped
                        memory.advance(cycle, target)
                        cycle = target
                        if skipped >= prune_interval:
                            prune(completions, index, ii, length)
                            if index >= next_prune:
                                next_prune = _next_prune_after(index)
                        if skipped >= PARK_MIN_JUMP:
                            soa_cycles[run_id] = cycle
                            soa_indexes[run_id] = index
                            yield cycle
                memory.tick_begin(cycle)
                if _executor._waits_ready(waits, cycle):
                    break

        for info, iteration in due:
            _issue(info, iteration, cycle, trc, memory, completions, stats)
        index += 1
        stats.compute_cycles += 1
        stall_streak = 0
        memory.tick_end(cycle)
        cycle += 1
        if index >= next_prune:
            prune(completions, index, ii, length)
            next_prune = _next_prune_after(index)

    soa_cycles[run_id] = cycle
    soa_indexes[run_id] = index


class _Run:
    """Per-run context the scheduler holds outside the stepper frame."""

    __slots__ = ("gen", "memory", "stats", "checker", "schedule",
                 "n_iter", "flush_abs", "steps", "out", "model")

    def __init__(self, gen, memory, stats, checker, schedule, n_iter,
                 flush_abs, out, model="snooping"):
        self.gen = gen
        #: the compat stepper's MemorySystem; None under the flat stepper
        self.memory = memory
        self.stats = stats
        self.checker = checker
        self.schedule = schedule
        self.n_iter = n_iter
        self.flush_abs = flush_abs
        self.steps = 0
        #: flat-stepper exit diagnostics (per-bus busy cycles)
        self.out = out
        self.model = model


class BatchSimulator:
    """Co-schedule many independent compiled runs in one process.

    Usage::

        batch = BatchSimulator(batch_size=64)
        for compiled, trace in work:
            batch.submit(compiled, trace, iterations=n)
        results = batch.run()   # SimulationResults, in submit order

    At most ``batch_size`` runs are co-resident; further submissions
    stream in as runs retire, so an arbitrarily large workload runs at
    bounded memory.  Each run's observable behavior — serialized stats,
    violation counts, error messages — is byte-identical to
    ``simulate(..., engine="events")``; scheduling order can never leak
    between runs because each run owns its memory system and stats.

    ``run(capture_errors=True)`` maps a failing run to its exception
    object (in that run's result slot) instead of aborting the batch —
    the :class:`~repro.api.runner.Runner` integration uses this so one
    poisoned spec cannot kill its batch siblings.
    """

    def __init__(self, batch_size: int = DEFAULT_BATCH_SIZE) -> None:
        if batch_size < 1:
            raise SimulationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self.batch_size = int(batch_size)
        self._items: List[tuple] = []
        #: Struct-of-arrays progress state, indexed by run id; updated
        #: by the steppers at every park and at retirement.
        self.cycles: List[int] = []
        self.indexes: List[int] = []
        self.steps: List[int] = []
        #: Aggregate report of the last :meth:`run` (occupancy, steps).
        self.last_report: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    def submit(
        self,
        compilation: CompilationResult,
        trc: TraceLike,
        iterations: Optional[int] = None,
        *,
        check_coherence: bool = True,
        flush_abs: bool = True,
        model: str = "snooping",
    ) -> int:
        """Queue one run; returns its run id (= result index)."""
        n_iter = trc.num_iterations if iterations is None else iterations
        if n_iter < 1:
            raise SimulationError("need at least one iteration")
        if n_iter > trc.num_iterations:
            raise SimulationError(
                f"trace provides {trc.num_iterations} iterations, "
                f"{n_iter} requested"
            )
        named_model(model)  # fail fast on unknown names
        self._items.append(
            (compilation, trc, n_iter, check_coherence, flush_abs, model)
        )
        self.cycles.append(0)
        self.indexes.append(0)
        self.steps.append(0)
        return len(self._items) - 1

    def __len__(self) -> int:
        return len(self._items)

    def snapshot(self) -> Dict[str, List[int]]:
        """The SoA progress arrays (cycle, kernel index, steps per run)."""
        return {
            "cycles": list(self.cycles),
            "indexes": list(self.indexes),
            "steps": list(self.steps),
        }

    # ------------------------------------------------------------------
    def _start(self, run_id: int) -> _Run:
        compilation, trc, n_iter, check_coherence, flush_abs, model = (
            self._items[run_id]
        )
        schedule = compilation.schedule
        ddg = compilation.ddg
        checker = (
            CoherenceChecker(ddg, trc, n_iter) if check_coherence else None
        )
        stats = SimStats()
        ops_by_slot = _prepare(compilation)
        total_indexes = schedule.length + (n_iter - 1) * schedule.ii
        completions: Dict[int, Dict[int, Optional[int]]] = {
            instr.iid: {} for instr in ddg.loads()
        }
        out: Dict[str, Any] = {}
        model_impl = named_model(model)
        if (model_impl.flat_stepper_capable
                and _executor.MemorySystem is MemorySystem):
            memory = None
            gen = flat_stepper(
                compilation.machine, schedule, n_iter, total_indexes,
                ops_by_slot, completions, trc, stats, checker, flush_abs,
                self.cycles, self.indexes, run_id, out,
            )
        else:
            # Either a non-default memory model (driven through its own
            # MemorySystem subclass) or a test double patched over the
            # executor's MemorySystem (watchdog fault injectors): drive
            # the object protocol method-faithfully so the override
            # semantics are preserved under batch too.
            if _executor.MemorySystem is not MemorySystem:
                memory = _executor.MemorySystem(
                    compilation.machine, stats, checker
                )
            else:
                memory = model_impl.build(compilation.machine, stats, checker)
            gen = _stepper_compat(
                schedule, n_iter, total_indexes, ops_by_slot, completions,
                trc, memory, stats, self.cycles, self.indexes, run_id,
            )
        return _Run(gen, memory, stats, checker, schedule, n_iter,
                    flush_abs, out, model)

    def _finish(self, run: _Run, width: int) -> SimulationResult:
        if run.memory is not None:
            # The flat stepper flushes its Attraction Buffers itself.
            if run.flush_abs:
                run.memory.flush_attraction_buffers()
            busy_cycles = run.memory.fabric.busy_cycles
        else:
            busy_cycles = run.out.get("busy_cycles", ())
        stats = run.stats
        stats.batch_size = width
        stats.batch_steps = run.steps
        if metrics.enabled():
            stats.publish("batch", model=run.model)
            for bus, busy in enumerate(busy_cycles):
                metrics.inc("sim.bus_busy_cycles", busy,
                            engine="batch", bus=bus)
        return SimulationResult(
            stats=stats,
            ii=run.schedule.ii,
            stage_count=run.schedule.stage_count,
            iterations=run.n_iter,
            violations=run.checker.counts if run.checker else None,
        )

    def run(
        self, *, capture_errors: bool = False
    ) -> List[Union[SimulationResult, BaseException]]:
        """Advance every submitted run to completion.

        Returns one entry per submission, in submit order.  By default
        the first failing run raises (matching ``simulate()``); with
        ``capture_errors=True`` a failure occupies its run's result
        slot as the exception object and the remaining runs complete.
        """
        items = self._items
        total = len(items)
        results: List[Union[SimulationResult, BaseException, None]] = (
            [None] * total
        )
        if not total:
            self._items = []
            return []
        width = min(self.batch_size, total)
        pending = deque(range(total))
        heap: List[Tuple[int, int, Any]] = []
        runs: Dict[int, _Run] = {}
        scheduler_steps = 0
        occupancy_sum = 0
        max_occupancy = 0
        retired = 0
        observe = metrics.enabled()

        def admit() -> None:
            while pending and len(heap) < self.batch_size:
                rid = pending.popleft()
                try:
                    runs[rid] = self._start(rid)
                except Exception as exc:
                    # Setup failures (bad trace, checker rejection) get
                    # the same isolation as mid-run failures.
                    if not capture_errors:
                        for _w, _r, other in heap:
                            other.close()
                        raise
                    results[rid] = exc
                    continue
                heappush(heap, (0, rid, runs[rid].gen))
                if observe:
                    metrics.observe("sim.batch_occupancy", len(heap))

        with trace.span("sim.batch", cat="sim", runs=total,
                        batch_size=self.batch_size):
            admit()
            while heap:
                wake, rid, gen = heappop(heap)
                run = runs[rid]
                scheduler_steps += 1
                run.steps += 1
                self.steps[rid] += 1
                occ = len(heap) + 1
                occupancy_sum += occ
                if occ > max_occupancy:
                    max_occupancy = occ
                try:
                    wake = next(gen)
                except StopIteration:
                    del runs[rid]
                    results[rid] = self._finish(run, width)
                    retired += 1
                    if observe:
                        metrics.observe("sim.batch_occupancy", len(heap))
                    admit()
                except Exception as exc:
                    del runs[rid]
                    if not capture_errors:
                        for _w, _r, other in heap:
                            other.close()
                        raise
                    results[rid] = exc
                    admit()
                else:
                    heappush(heap, (wake, rid, gen))

        self.last_report = {
            "runs": total,
            "batch_size": self.batch_size,
            "width": width,
            "steps": scheduler_steps,
            "retired": retired,
            "max_occupancy": max_occupancy,
            "mean_occupancy": (
                occupancy_sum / scheduler_steps if scheduler_steps else 0.0
            ),
            "retired_per_step": (
                retired / scheduler_steps if scheduler_steps else 0.0
            ),
        }
        if observe:
            metrics.inc("sim.batch_batches")
            metrics.inc("sim.batch_runs", total)
            metrics.inc("sim.batch_steps", scheduler_steps)
            metrics.set_gauge("sim.batch_retired_per_step",
                              self.last_report["retired_per_step"])
        self._items = []
        return results  # type: ignore[return-value]


def simulate_batch(
    items,
    *,
    iterations: Optional[int] = None,
    check_coherence: bool = True,
    flush_abs: bool = True,
    batch_size: int = DEFAULT_BATCH_SIZE,
    model: str = "snooping",
) -> List[SimulationResult]:
    """Convenience wrapper: co-simulate ``(compilation, trace)`` pairs.

    Shared ``iterations``/``check_coherence``/``flush_abs`` apply to
    every run; use :class:`BatchSimulator` directly for per-run
    control or error capture.  Results come back in input order.
    """
    batch = BatchSimulator(batch_size=batch_size)
    for compilation, trc in items:
        batch.submit(
            compilation, trc, iterations=iterations,
            check_coherence=check_coherence, flush_abs=flush_abs,
            model=model,
        )
    return batch.run()  # type: ignore[return-value]
