"""Inter-cluster memory-bus fabric.

The memory buses carry remote requests and responses between clusters.
Their occupancy depends on run-time traffic, which is why the compiler
cannot rely on their latency (section 2.3, footnote 2) — the root cause of
the coherence problem.

Model:

* ``count`` identical buses; a transfer occupies one bus for ``latency``
  consecutive cycles and is delivered when it completes;
* per-source FIFO queues with at most one injection per source per cycle,
  and round-robin arbitration across sources for free buses.

Those two properties make same-source messages arrive in injection order
(equal transit times, staggered starts), which is the hardware property
the MDC solution relies on: requests issued by one cluster reach any home
cluster in issue order.  Nothing orders messages from *different* sources
— exactly the paper's Figure 2 hazard.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional

from repro.arch.config import BusConfig


@dataclass
class BusMessage:
    """One transfer.  ``on_deliver(cycle)`` runs when it reaches ``dst``."""

    src: int
    dst: int
    on_deliver: Callable[[int], None]
    enqueued_at: int = 0


class BusFabric:
    """The shared memory buses."""

    def __init__(self, config: BusConfig, num_clusters: int) -> None:
        self.config = config
        self.num_clusters = num_clusters
        self._queues: List[Deque[BusMessage]] = [
            deque() for _ in range(num_clusters)
        ]
        self._bus_free_at: List[int] = [0] * config.count
        #: delivery cycle -> messages landing then
        self._in_flight: Dict[int, List[BusMessage]] = {}
        self._rr_start = 0
        self.transfers = 0
        self.queued_cycles = 0  # total cycles messages spent waiting

    # ------------------------------------------------------------------
    def send(self, message: BusMessage) -> None:
        """Enqueue a transfer at its source cluster."""
        self._queues[message.src].append(message)

    def pending(self) -> int:
        return sum(len(q) for q in self._queues) + sum(
            len(v) for v in self._in_flight.values()
        )

    # ------------------------------------------------------------------
    def deliver(self, cycle: int) -> None:
        """Hand over every message whose transfer completes this cycle."""
        for message in self._in_flight.pop(cycle, []):
            message.on_deliver(cycle)

    def inject(self, cycle: int) -> None:
        """Assign queued messages to free buses (round-robin over sources,
        at most one injection per source per cycle)."""
        free = [b for b, t in enumerate(self._bus_free_at) if t <= cycle]
        if not free:
            self._account_waiting(cycle)
            return
        order = [
            (self._rr_start + k) % self.num_clusters
            for k in range(self.num_clusters)
        ]
        self._rr_start = (self._rr_start + 1) % self.num_clusters
        for src in order:
            if not free:
                break
            queue = self._queues[src]
            if not queue:
                continue
            message = queue.popleft()
            bus = free.pop()
            self._bus_free_at[bus] = cycle + self.config.latency
            arrival = cycle + self.config.latency
            self._in_flight.setdefault(arrival, []).append(message)
            self.transfers += 1
        self._account_waiting(cycle)

    def _account_waiting(self, cycle: int) -> None:
        self.queued_cycles += sum(len(q) for q in self._queues)
