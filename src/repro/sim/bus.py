"""Inter-cluster memory-bus fabric.

The memory buses carry remote requests and responses between clusters.
Their occupancy depends on run-time traffic, which is why the compiler
cannot rely on their latency (section 2.3, footnote 2) — the root cause of
the coherence problem.

Model:

* ``count`` identical buses; a transfer occupies one bus for ``latency``
  consecutive cycles and is delivered when it completes;
* per-source FIFO queues with at most one injection per source per cycle,
  and round-robin arbitration across sources for free buses.

Those two properties make same-source messages arrive in injection order
(equal transit times, staggered starts), which is the hardware property
the MDC solution relies on: requests issued by one cluster reach any home
cluster in issue order.  Nothing orders messages from *different* sources
— exactly the paper's Figure 2 hazard.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

from repro.arch.config import BusConfig


@dataclass
class BusMessage:
    """One transfer.  ``on_deliver(cycle)`` runs when it reaches ``dst``.

    ``tag`` is optional opaque metadata for observers (the conformance
    trace of :mod:`repro.check.conformance`); the fabric never reads it.
    ``kind`` labels the message for per-hop traffic accounting
    (``req_load``/``req_store``/``fwd_load``/``fwd_store``/``resp``) —
    it feeds :attr:`BusFabric.transfers_by_kind` and never affects
    routing or timing.
    """

    src: int
    dst: int
    on_deliver: Callable[[int], None]
    enqueued_at: int = 0
    tag: Optional[tuple] = None
    kind: str = "data"


class BusFabric:
    """The shared memory buses."""

    def __init__(self, config: BusConfig, num_clusters: int) -> None:
        self.config = config
        self.num_clusters = num_clusters
        self._queues: List[Deque[BusMessage]] = [
            deque() for _ in range(num_clusters)
        ]
        self._bus_free_at: List[int] = [0] * config.count
        #: delivery cycle -> messages landing then
        self._in_flight: Dict[int, List[BusMessage]] = {}
        self._queued = 0  # messages currently waiting in source queues
        self._rr_start = 0
        self.transfers = 0
        #: per-message-kind transfer counts; always sums to ``transfers``
        #: (diagnostic; the serialized scalar stays the sum)
        self.transfers_by_kind: Dict[str, int] = {}
        self.queued_cycles = 0  # total cycles messages spent waiting
        #: cycles each physical bus spent occupied by a transfer —
        #: per-bus occupancy for the observability layer (diagnostic;
        #: never serialized into run records)
        self.busy_cycles: List[int] = [0] * config.count

    # ------------------------------------------------------------------
    def send(self, message: BusMessage) -> None:
        """Enqueue a transfer at its source cluster."""
        self._queues[message.src].append(message)
        self._queued += 1

    def pending(self) -> int:
        return self._queued + sum(len(v) for v in self._in_flight.values())

    # ------------------------------------------------------------------
    # Event-skipping support (see ``docs/architecture.md``)
    # ------------------------------------------------------------------
    def next_free_bus(self) -> int:
        """Earliest cycle at which at least one bus is (or becomes)
        free — the first cycle a queued message could inject."""
        return min(self._bus_free_at)

    def skip_window(self, start: int, stop: int) -> None:
        """Advance per-cycle fabric state across cycles ``[start, stop)``
        during which :meth:`inject` provably moves no message.

        Two such window kinds exist, and they replay differently:

        * *stuck* — messages are queued but every bus stays occupied for
          the whole window (``stop <= next_free_bus()``).  ``inject``
          bails out before touching the round-robin pointer and only
          accounts wait cycles, so the window collapses to one bulk
          ``queued_cycles`` update;
        * *idle* — no messages queued, no deliveries due.  The only
          per-cycle state touched is the round-robin pointer, which
          rotates exactly on the cycles where at least one bus is free.

        Replaying arbitration state exactly keeps later injection
        decisions — and therefore every downstream stat — identical to a
        per-cycle run.
        """
        if self._queued:
            self.queued_cycles += self._queued * (stop - start)
            return
        free_from = min(self._bus_free_at)
        begin = start if start > free_from else free_from
        if stop > begin:
            self._rr_start = (
                self._rr_start + (stop - begin)
            ) % self.num_clusters

    # ------------------------------------------------------------------
    def deliver(self, cycle: int) -> None:
        """Hand over every message whose transfer completes this cycle."""
        if not self._in_flight:
            return
        for message in self._in_flight.pop(cycle, ()):
            message.on_deliver(cycle)

    def inject(self, cycle: int) -> None:
        """Assign queued messages to free buses (round-robin over sources,
        at most one injection per source per cycle)."""
        if not self._queued:
            # Nothing to move: arbitration still rotates whenever a bus
            # is free (the state later injections depend on).
            for t in self._bus_free_at:
                if t <= cycle:
                    self._rr_start = (self._rr_start + 1) % self.num_clusters
                    return
            return
        free = [b for b, t in enumerate(self._bus_free_at) if t <= cycle]
        if not free:
            self.queued_cycles += self._queued
            return
        order = [
            (self._rr_start + k) % self.num_clusters
            for k in range(self.num_clusters)
        ]
        self._rr_start = (self._rr_start + 1) % self.num_clusters
        for src in order:
            if not free:
                break
            queue = self._queues[src]
            if not queue:
                continue
            message = queue.popleft()
            self._queued -= 1
            bus = free.pop()
            self._bus_free_at[bus] = cycle + self.config.latency
            self.busy_cycles[bus] += self.config.latency
            arrival = cycle + self.config.latency
            self._in_flight.setdefault(arrival, []).append(message)
            self.transfers += 1
            kinds = self.transfers_by_kind
            kinds[message.kind] = kinds.get(message.kind, 0) + 1
        self.queued_cycles += self._queued
