"""Simulation statistics.

The two headline decompositions the paper reports:

* **memory access classification** (Figure 6): every access is exactly one
  of local hit / remote hit / local miss / remote miss / combined (the
  second access to an already-requested, still-pending subblock);
* **cycle split** (Figures 7 and 9): compute cycles (the machine issued a
  kernel slot) vs stall cycles (issue blocked on a not-yet-arrived load
  value).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict

from repro.obs import metrics


class AccessType(enum.Enum):
    LOCAL_HIT = "local_hit"
    REMOTE_HIT = "remote_hit"
    LOCAL_MISS = "local_miss"
    REMOTE_MISS = "remote_miss"
    COMBINED = "combined"


#: Scalar counters of :class:`SimStats` (everything but ``accesses``).
_COUNTER_FIELDS = (
    "compute_cycles",
    "stall_cycles",
    "issued_ops",
    "nullified_stores",
    "coherence_violations",
    "ab_hits",
    "ab_fills",
    "ab_overflows",
    "ab_flushed_dirty",
    "bus_transfers",
    "bus_queued_cycles",
    "next_level_requests",
)

#: Engine-internal diagnostics of the event-skipping executor.  These are
#: deliberately *excluded* from ``to_dict``/``from_dict``: the serialized
#: form of a run is engine-independent and byte-identical to the captured
#: goldens (``tests/test_golden_equivalence.py``), while these counters
#: describe how the run was executed, not what it observed.
_DIAGNOSTIC_FIELDS = (
    "fast_forwarded_cycles",
    "fast_retired_indexes",
    "batch_size",
    "batch_steps",
)


@dataclass
class SimStats:
    """Counters collected by one simulation run."""

    accesses: Dict[AccessType, int] = field(
        default_factory=lambda: {t: 0 for t in AccessType}
    )
    compute_cycles: int = 0
    stall_cycles: int = 0
    #: instances actually executed (nullified store replicas excluded)
    issued_ops: int = 0
    nullified_stores: int = 0
    coherence_violations: int = 0
    ab_hits: int = 0
    ab_fills: int = 0
    ab_overflows: int = 0
    ab_flushed_dirty: int = 0
    bus_transfers: int = 0
    bus_queued_cycles: int = 0
    next_level_requests: int = 0
    #: stalled/drain cycles the event-skipping engine jumped over in bulk
    #: (diagnostic; not serialized — see ``_DIAGNOSTIC_FIELDS``)
    fast_forwarded_cycles: int = 0
    #: kernel indexes retired by the "no loads in flight, none due" bulk
    #: fast path (diagnostic; not serialized)
    fast_retired_indexes: int = 0
    #: co-schedule width of the batch engine's run (0 for the per-run
    #: engines; diagnostic; not serialized)
    batch_size: int = 0
    #: scheduler resumptions this run consumed under the batch engine
    #: (diagnostic; not serialized)
    batch_steps: int = 0
    #: per-message-kind split of ``bus_transfers`` (``req_load``,
    #: ``req_store``, ``fwd_load``, ``fwd_store``, ``resp``).  The
    #: serialized form keeps the backward-compatible scalar — which is
    #: always the sum of this breakdown — so run records and goldens
    #: are unchanged; the split is surfaced through :meth:`publish`
    #: (per-hop traffic metrics, one series per kind and memory model).
    bus_transfer_kinds: Dict[str, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    def record_access(self, kind: AccessType) -> None:
        self.accesses[kind] += 1

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def total_accesses(self) -> int:
        return sum(self.accesses.values())

    @property
    def local_hit_ratio(self) -> float:
        """Share of all memory accesses that were local hits (Figure 6's
        headline metric)."""
        total = self.total_accesses
        if not total:
            return 0.0
        return self.accesses[AccessType.LOCAL_HIT] / total

    def access_fractions(self) -> Dict[AccessType, float]:
        total = self.total_accesses
        if not total:
            return {t: 0.0 for t in AccessType}
        return {t: n / total for t, n in self.accesses.items()}

    def merged_with(self, other: "SimStats") -> "SimStats":
        """Aggregate two runs (used to combine a benchmark's loops)."""
        merged = SimStats()
        for kind in AccessType:
            merged.accesses[kind] = self.accesses[kind] + other.accesses[kind]
        for name in _COUNTER_FIELDS + _DIAGNOSTIC_FIELDS:
            setattr(merged, name, getattr(self, name) + getattr(other, name))
        for kinds in (self.bus_transfer_kinds, other.bus_transfer_kinds):
            for kind, count in kinds.items():
                merged.bus_transfer_kinds[kind] = (
                    merged.bus_transfer_kinds.get(kind, 0) + count
                )
        return merged

    def publish(self, engine: str, model: str = "snooping") -> None:
        """Surface this run's counters through the metrics registry.

        Called once per :func:`~repro.sim.executor.simulate` run — never
        inside the cycle loop — so the simulator's contribution to the
        observability layer is O(runs), not O(cycles).  Unlike
        :meth:`to_dict`, this *does* include the event-skipping engine's
        diagnostic counters (``_DIAGNOSTIC_FIELDS``): the registry is
        labeled by engine, so engine-dependent numbers are fine here
        even though they must stay out of serialized records.
        """
        reg = metrics.registry()
        if not reg.enabled:
            return
        reg.inc("sim.runs", engine=engine)
        reg.inc("sim.cycles", self.compute_cycles,
                engine=engine, kind="compute")
        reg.inc("sim.cycles", self.stall_cycles,
                engine=engine, kind="stall")
        for kind, count in self.accesses.items():
            if count:
                reg.inc("sim.accesses", count, engine=engine,
                        type=kind.value)
        for name in _COUNTER_FIELDS[2:] + _DIAGNOSTIC_FIELDS:
            value = getattr(self, name)
            if value:
                reg.inc(f"sim.{name}", value, engine=engine)
        # Per-hop traffic: one labeled series per message kind and
        # memory model (the distributed-directory model's extra
        # forwarding hops show up here, not in the scalar).
        for kind in sorted(self.bus_transfer_kinds):
            count = self.bus_transfer_kinds[kind]
            if count:
                reg.inc("sim.bus_transfer_kinds", count,
                        engine=engine, kind=kind, model=model)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (used by the ``repro.api`` ResultStore)."""
        data: Dict[str, object] = {
            "accesses": {t.value: n for t, n in self.accesses.items()},
        }
        for name in _COUNTER_FIELDS:
            data[name] = getattr(self, name)
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimStats":
        stats = cls()
        for raw, count in data.get("accesses", {}).items():
            stats.accesses[AccessType(raw)] = int(count)
        for name in _COUNTER_FIELDS:
            setattr(stats, name, int(data.get(name, 0)))
        return stats

    def describe(self) -> str:
        frac = self.access_fractions()
        lines = [
            f"cycles: {self.total_cycles} "
            f"(compute {self.compute_cycles}, stall {self.stall_cycles})",
            "accesses: "
            + ", ".join(
                f"{t.value} {self.accesses[t]} ({frac[t]:.1%})" for t in AccessType
            ),
            f"coherence violations: {self.coherence_violations}",
        ]
        return "\n".join(lines)
