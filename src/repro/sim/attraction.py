"""Attraction Buffers (paper section 5).

An Attraction Buffer is a small set-associative buffer, one per cluster,
that caches *remote subblocks*: when a cluster issues a remote load, the
whole remote subblock comes back and is kept locally, so subsequent
accesses to it are satisfied with local latency.

Coherence discipline (sections 5.2/5.3):

* under MDC, an aliased datum is only ever modified from its chain's single
  cluster, so copies elsewhere are read-only; a store whose target sits in
  the local AB updates the AB copy (marking it dirty);
* under DDGT, the nullified remote instances of a replicated store update
  their cluster's AB copy if present, keeping copies consistent;
* buffers are *flushed* at loop boundaries, writing dirty versions back to
  the home cluster.

Entries carry a version snapshot (address -> store version) standing in
for the subblock data, so the coherence checker can detect stale reads out
of an AB exactly as it does out of a cache module.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.arch.config import AttractionBufferConfig

#: A store version: (iteration, sequence index) — monotonic in program
#: order for any single address.
Version = Tuple[int, int]
#: Subblock identifier: (block id, home cluster).
SubblockKey = Tuple[int, int]


@dataclass
class AbEntry:
    key: SubblockKey
    versions: Dict[int, Version] = field(default_factory=dict)
    dirty: bool = False


class AttractionBuffer:
    """One cluster's Attraction Buffer."""

    def __init__(self, config: AttractionBufferConfig) -> None:
        self.config = config
        self._sets: Tuple[OrderedDict, ...] = tuple(
            OrderedDict() for _ in range(config.num_sets)
        )
        self.hits = 0
        self.fills = 0
        self.overflows = 0  # fills that evicted a live entry

    def _set_of(self, key: SubblockKey) -> OrderedDict:
        return self._sets[key[0] % self.config.num_sets]

    # ------------------------------------------------------------------
    def lookup(self, key: SubblockKey, touch: bool = True) -> Optional[AbEntry]:
        entries = self._set_of(key)
        entry = entries.get(key)
        if entry is not None:
            if touch:
                entries.move_to_end(key)
            self.hits += 1
        return entry

    def peek(self, key: SubblockKey) -> Optional[AbEntry]:
        """Presence check with no statistics or LRU side effects."""
        return self._set_of(key).get(key)

    def fill(
        self, key: SubblockKey, versions: Dict[int, Version]
    ) -> Optional[AbEntry]:
        """Install a subblock snapshot; returns the evicted entry if any."""
        entries = self._set_of(key)
        if key in entries:
            entry = entries[key]
            entry.versions.update(versions)
            entries.move_to_end(key)
            return None
        victim: Optional[AbEntry] = None
        if len(entries) >= self.config.associativity:
            _victim_key, victim = next(iter(entries.items()))
            del entries[_victim_key]
            self.overflows += 1
        entries[key] = AbEntry(key=key, versions=dict(versions))
        self.fills += 1
        return victim

    def update(self, key: SubblockKey, address: int, version: Version) -> bool:
        """Write a new version into a resident copy (store hit / DDGT
        remote-instance update).  Returns False when not resident."""
        entry = self.peek(key)
        if entry is None:
            return False
        entry.versions[address] = version
        entry.dirty = True
        return True

    def flush(self) -> List[AbEntry]:
        """Drop every entry, returning the dirty ones for write-back."""
        dirty: List[AbEntry] = []
        for entries in self._sets:
            for entry in entries.values():
                if entry.dirty:
                    dirty.append(entry)
            entries.clear()
        return dirty

    @property
    def resident(self) -> int:
        return sum(len(entries) for entries in self._sets)
