"""The stall-on-use VLIW core: executes a modulo schedule cycle by cycle.

Execution model (section 2.1 + modulo semantics):

* the machine is a single flow of control in lockstep across clusters;
  instance ``i`` of operation ``v`` issues at kernel index
  ``t(v) + i * II``; one kernel index is retired per non-stalled cycle;
* *stall-on-use*: issue blocks — for the whole machine — when any operation
  due this cycle consumes a load value that has not arrived yet; the memory
  system keeps advancing during stalls;
* only loads have non-deterministic completion times, so only direct
  register consumers of loads can stall (every fixed-latency producer is
  separated from its consumers by at least its latency in kernel indexes,
  and stalls can only widen the real-time gap).

Cycle accounting matches Figures 7/9: ``compute_cycles`` counts retired
kernel indexes, ``stall_cycles`` counts blocked cycles.  The drain of
in-flight memory traffic after the last issue is not charged to either.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.alias.profiles import TraceLike
from repro.errors import SimulationError
from repro.ir.edges import DepKind
from repro.sched.pipeline import CompilationResult
from repro.sim.coherence import CoherenceChecker, ViolationCounts
from repro.sim.interleave import home_cluster
from repro.sim.memory import MemorySystem
from repro.sim.stats import SimStats

#: Consecutive stalled cycles after which the simulation is declared hung.
STALL_WATCHDOG = 100_000


@dataclass
class SimulationResult:
    """Statistics plus context for one simulated loop execution."""

    stats: SimStats
    ii: int
    stage_count: int
    iterations: int
    violations: Optional[ViolationCounts] = None

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles

    @property
    def compute_cycles(self) -> int:
        return self.stats.compute_cycles

    @property
    def stall_cycles(self) -> int:
        return self.stats.stall_cycles


@dataclass
class _OpInfo:
    """Pre-resolved per-operation execution info."""

    iid: int
    cluster: int
    time: int
    is_load: bool = False
    is_store: bool = False
    width: int = 4
    replica: bool = False
    seq: int = 0
    #: (load iid, distance) pairs this op must wait for (stall-on-use)
    load_preds: Tuple[Tuple[int, int], ...] = ()


def simulate(
    compilation: CompilationResult,
    trace: TraceLike,
    iterations: Optional[int] = None,
    check_coherence: bool = True,
    flush_abs: bool = True,
) -> SimulationResult:
    """Run a compiled loop against an execution address trace."""
    schedule = compilation.schedule
    machine = compilation.machine
    ddg = compilation.ddg
    ii = schedule.ii

    n_iter = trace.num_iterations if iterations is None else iterations
    if n_iter < 1:
        raise SimulationError("need at least one iteration")
    if n_iter > trace.num_iterations:
        raise SimulationError(
            f"trace provides {trace.num_iterations} iterations, "
            f"{n_iter} requested"
        )

    checker = (
        CoherenceChecker(ddg, trace, n_iter) if check_coherence else None
    )
    stats = SimStats()
    memory = MemorySystem(machine, stats, checker)

    ops_by_slot = _prepare(compilation)
    total_indexes = schedule.length + (n_iter - 1) * ii

    #: load completions: iid -> {iteration: cycle or None while in flight}
    completions: Dict[int, Dict[int, Optional[int]]] = {
        instr.iid: {} for instr in ddg.loads()
    }

    index = 0
    cycle = 0
    stall_streak = 0
    while index < total_indexes or not memory.quiescent():
        memory.tick_begin(cycle)
        if index < total_indexes:
            due = _due_ops(ops_by_slot, index, ii, n_iter)
            if _all_ready(due, completions, cycle):
                for info, iteration in due:
                    _issue(
                        info, iteration, cycle, trace, memory, completions, stats
                    )
                index += 1
                stats.compute_cycles += 1
                stall_streak = 0
                if index % 4096 == 0:
                    _prune(completions, index, ii, schedule.length)
            else:
                stats.stall_cycles += 1
                stall_streak += 1
                if stall_streak > STALL_WATCHDOG:
                    raise SimulationError(
                        f"machine stalled for {stall_streak} cycles at "
                        f"kernel index {index}"
                    )
        memory.tick_end(cycle)
        cycle += 1

    if flush_abs:
        memory.flush_attraction_buffers()

    return SimulationResult(
        stats=stats,
        ii=ii,
        stage_count=schedule.stage_count,
        iterations=n_iter,
        violations=checker.counts if checker else None,
    )


# ----------------------------------------------------------------------
def _prepare(compilation: CompilationResult) -> List[List[_OpInfo]]:
    """Bucket scheduled ops by modulo slot with pre-resolved issue info."""
    schedule = compilation.schedule
    ddg = compilation.ddg
    buckets: List[List[_OpInfo]] = [[] for _ in range(schedule.ii)]
    for op in schedule.ops.values():
        instr = ddg.node(op.iid)
        load_preds = tuple(
            (e.src, e.distance)
            for e in ddg.preds(op.iid)
            if e.kind is DepKind.RF and ddg.node(e.src).is_load
        )
        info = _OpInfo(
            iid=op.iid,
            cluster=op.cluster,
            time=op.time,
            is_load=instr.is_load,
            is_store=instr.is_store,
            width=instr.mem.width if instr.mem is not None else 4,
            replica=instr.replica_group is not None,
            seq=instr.seq,
            load_preds=load_preds,
        )
        buckets[op.time % schedule.ii].append(info)
    for bucket in buckets:
        # Within one cycle, reads happen before writes (an MA-dependent
        # store scheduled in the same cycle as the load must not clobber
        # the value first — the paper's "at the same time" case).
        bucket.sort(key=lambda info: (info.is_store, info.iid))
    return buckets


def _due_ops(
    ops_by_slot: List[List[_OpInfo]], index: int, ii: int, n_iter: int
) -> List[Tuple[_OpInfo, int]]:
    due = []
    for info in ops_by_slot[index % ii]:
        iteration, rem = divmod(index - info.time, ii)
        if rem == 0 and 0 <= iteration < n_iter:
            due.append((info, iteration))
    return due


def _all_ready(
    due: List[Tuple[_OpInfo, int]],
    completions: Dict[int, Dict[int, Optional[int]]],
    cycle: int,
) -> bool:
    for info, iteration in due:
        for load_iid, distance in info.load_preds:
            j = iteration - distance
            if j < 0:
                continue
            done = completions[load_iid].get(j, 0)
            if done is None or done > cycle:
                return False
    return True


def _issue(
    info: _OpInfo,
    iteration: int,
    cycle: int,
    trace: TraceLike,
    memory: MemorySystem,
    completions: Dict[int, Dict[int, Optional[int]]],
    stats: SimStats,
) -> None:
    stats.issued_ops += 1
    if info.is_load:
        addr = trace.address(info.iid, iteration)
        slot = completions[info.iid]
        slot[iteration] = None

        def on_complete(done: int, _slot=slot, _it=iteration) -> None:
            _slot[_it] = done

        memory.load(
            info.cluster, addr, info.width, info.iid, iteration, on_complete, cycle
        )
    elif info.is_store:
        addr = trace.address(info.iid, iteration)
        memory.store(
            info.cluster,
            addr,
            info.width,
            info.iid,
            iteration,
            (iteration, info.seq),
            info.replica,
            cycle,
        )


def _prune(
    completions: Dict[int, Dict[int, Optional[int]]],
    index: int,
    ii: int,
    length: int,
) -> None:
    """Drop completion records no consumer can still reference."""
    horizon = (index - length) // ii - 8
    if horizon <= 0:
        return
    for per_load in completions.values():
        stale = [it for it, done in per_load.items() if it < horizon and done is not None]
        for it in stale:
            del per_load[it]
