"""The stall-on-use VLIW core: executes a modulo schedule against the
distributed memory system.

Execution model (section 2.1 + modulo semantics):

* the machine is a single flow of control in lockstep across clusters;
  instance ``i`` of operation ``v`` issues at kernel index
  ``t(v) + i * II``; one kernel index is retired per non-stalled cycle;
* *stall-on-use*: issue blocks — for the whole machine — when any operation
  due this cycle consumes a load value that has not arrived yet; the memory
  system keeps advancing during stalls;
* only loads have non-deterministic completion times, so only direct
  register consumers of loads can stall (every fixed-latency producer is
  separated from its consumers by at least its latency in kernel indexes,
  and stalls can only widen the real-time gap).

Cycle accounting matches Figures 7/9: ``compute_cycles`` counts retired
kernel indexes, ``stall_cycles`` counts blocked cycles.  The drain of
in-flight memory traffic after the last issue is not charged to either.

Two engines share this model:

* ``engine="events"`` (the default) — an event-skipping engine.  A cycle
  only needs processing when the core issues or the memory system does
  work; during stalled windows and the post-issue drain, the engine asks
  the memory system for its :meth:`~repro.sim.memory.MemorySystem.
  next_event_cycle` (earliest pending bus arrival, deferred home
  response, or next-level fill) and jumps there in one step, advancing
  stall accounting and arbitration state in bulk.  A "no loads in
  flight, none due" fast path additionally retires whole runs of
  memory-free kernel indexes at once.  The engine is observation-
  equivalent to the per-cycle reference — the golden fixtures under
  ``tests/goldens/`` pin this byte for byte.
* ``engine="cycles"`` — the per-cycle reference: one Python iteration
  per machine cycle, ``tick_begin``/``tick_end`` every cycle.  Kept as
  the semantic baseline for equivalence tests and the speedup benchmark
  (``benchmarks/bench_sim_fastpath.py``).
* ``engine="batch"`` — the batched lockstep engine
  (:mod:`repro.sim.batch`): a specialized stepper with the same
  observable behavior as ``"events"``, designed to co-schedule many
  independent runs per process.  ``simulate(..., engine="batch")`` runs
  a batch of one; :class:`~repro.sim.batch.BatchSimulator` amortizes
  dispatch across hundreds of runs (``benchmarks/bench_sim_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.alias.profiles import TraceLike
from repro.errors import SimulationError
from repro.ir.edges import DepKind
from repro.obs import metrics
from repro.sched.pipeline import CompilationResult
from repro.sim.coherence import CoherenceChecker, ViolationCounts
from repro.sim.memory import MemorySystem
from repro.sim.stats import SimStats

#: Consecutive stalled cycles after which the simulation is declared
#: hung.  The same bound guards the post-issue drain: a memory system
#: that fails to quiesce within this many cycles after the last issue
#: raises instead of spinning forever.
STALL_WATCHDOG = 100_000

#: Kernel indexes between prunes of the load-completion map.
_PRUNE_INTERVAL = 4096

#: The available simulation engines (see module docstring).
ENGINES = ("events", "cycles", "batch")


@dataclass
class SimulationResult:
    """Statistics plus context for one simulated loop execution."""

    stats: SimStats
    ii: int
    stage_count: int
    iterations: int
    violations: Optional[ViolationCounts] = None

    @property
    def total_cycles(self) -> int:
        return self.stats.total_cycles

    @property
    def compute_cycles(self) -> int:
        return self.stats.compute_cycles

    @property
    def stall_cycles(self) -> int:
        return self.stats.stall_cycles


@dataclass
class _OpInfo:
    """Pre-resolved per-operation execution info."""

    iid: int
    cluster: int
    time: int
    is_load: bool = False
    is_store: bool = False
    width: int = 4
    replica: bool = False
    seq: int = 0
    #: (load iid, distance) pairs this op must wait for (stall-on-use)
    load_preds: Tuple[Tuple[int, int], ...] = ()


def simulate(
    compilation: CompilationResult,
    trace: TraceLike,
    iterations: Optional[int] = None,
    check_coherence: bool = True,
    flush_abs: bool = True,
    engine: str = "events",
    model: str = "snooping",
) -> SimulationResult:
    """Run a compiled loop against an execution address trace.

    ``engine`` selects the execution strategy: ``"events"`` (default)
    fast-forwards stalled and drain windows to the next memory event,
    ``"cycles"`` is the one-iteration-per-cycle reference, ``"batch"``
    routes through :class:`~repro.sim.batch.BatchSimulator` as a batch
    of one.  All produce identical :class:`~repro.sim.stats.SimStats`
    and violation counts.

    ``model`` names the registered memory model
    (:mod:`repro.sim.models`) the run simulates; every engine supports
    every model.
    """
    if engine not in ENGINES:
        raise SimulationError(
            f"unknown simulation engine {engine!r}; expected one of {ENGINES}"
        )
    from repro.sim import models as _models  # local: avoid cycle

    model_impl = _models.named_model(model)
    if engine == "batch":
        from repro.sim.batch import BatchSimulator  # local: avoid cycle

        batch = BatchSimulator(batch_size=1)
        batch.submit(
            compilation, trace, iterations=iterations,
            check_coherence=check_coherence, flush_abs=flush_abs,
            model=model,
        )
        return batch.run()[0]
    schedule = compilation.schedule
    machine = compilation.machine
    ddg = compilation.ddg

    n_iter = trace.num_iterations if iterations is None else iterations
    if n_iter < 1:
        raise SimulationError("need at least one iteration")
    if n_iter > trace.num_iterations:
        raise SimulationError(
            f"trace provides {trace.num_iterations} iterations, "
            f"{n_iter} requested"
        )

    checker = (
        CoherenceChecker(ddg, trace, n_iter) if check_coherence else None
    )
    stats = SimStats()
    if model == _models.DEFAULT_MODEL:
        # Construct through the module global so tests monkeypatching
        # ``executor.MemorySystem`` keep intercepting the default path.
        memory = MemorySystem(machine, stats, checker)
    else:
        memory = model_impl.build(machine, stats, checker)

    ops_by_slot = _prepare(compilation)
    total_indexes = schedule.length + (n_iter - 1) * schedule.ii

    #: load completions: iid -> {iteration: cycle or None while in flight}
    completions: Dict[int, Dict[int, Optional[int]]] = {
        instr.iid: {} for instr in ddg.loads()
    }

    run = _run_event_skipping if engine == "events" else _run_per_cycle
    run(
        schedule, n_iter, total_indexes, ops_by_slot, completions,
        trace, memory, stats,
    )

    if flush_abs:
        memory.flush_attraction_buffers()

    # One registry publication per run (never per cycle): engine counters
    # incl. the event-skipping diagnostics, plus per-bus occupancy.
    if metrics.enabled():
        stats.publish(engine, model=model)
        for bus, busy in enumerate(memory.fabric.busy_cycles):
            metrics.inc("sim.bus_busy_cycles", busy, engine=engine, bus=bus)

    return SimulationResult(
        stats=stats,
        ii=schedule.ii,
        stage_count=schedule.stage_count,
        iterations=n_iter,
        violations=checker.counts if checker else None,
    )


# ----------------------------------------------------------------------
# Engine: per-cycle reference
# ----------------------------------------------------------------------
def _run_per_cycle(
    schedule, n_iter, total_indexes, ops_by_slot, completions,
    trace, memory, stats,
) -> None:
    """One Python iteration per machine cycle (the semantic baseline)."""
    ii = schedule.ii
    index = 0
    cycle = 0
    stall_streak = 0
    drain_streak = 0
    drain_low_water = float("inf")
    while index < total_indexes or not memory.quiescent():
        memory.tick_begin(cycle)
        if index < total_indexes:
            due = _due_ops(ops_by_slot, index, ii, n_iter)
            if _all_ready(due, completions, cycle):
                for info, iteration in due:
                    _issue(
                        info, iteration, cycle, trace, memory, completions, stats
                    )
                index += 1
                stats.compute_cycles += 1
                stall_streak = 0
                if index % _PRUNE_INTERVAL == 0:
                    _prune(completions, index, ii, schedule.length)
            else:
                stats.stall_cycles += 1
                stall_streak += 1
                if stall_streak > STALL_WATCHDOG:
                    raise SimulationError(
                        f"machine stalled for {stall_streak} cycles at "
                        f"kernel index {index}"
                    )
        else:
            # Post-issue drain: nothing issues, the memory system empties
            # its in-flight traffic.  A memory bug that never quiesces
            # must raise, not spin forever.  The watchdog bounds
            # *progress-free* windows — the low-water mark of pending
            # work must keep falling — so a legitimately large backlog
            # may take arbitrarily long, but a stuck or self-rescheduling
            # memory system cannot.
            pending = memory.pending_work()
            if pending < drain_low_water:
                drain_low_water = pending
                drain_streak = 0
            drain_streak += 1
            if drain_streak > STALL_WATCHDOG:
                raise SimulationError(
                    f"memory system failed to drain: no progress for "
                    f"{STALL_WATCHDOG} cycles after the last issue"
                )
        memory.tick_end(cycle)
        cycle += 1


# ----------------------------------------------------------------------
# Engine: event skipping
# ----------------------------------------------------------------------
def _run_event_skipping(
    schedule, n_iter, total_indexes, ops_by_slot, completions,
    trace, memory, stats,
) -> None:
    """Jump stalled and drain windows to the next memory event.

    Observation-equivalence argument, window by window:

    * a *stalled* cycle does exactly: no-op tick pair (plus bus
      round-robin rotation), ``stall_cycles += 1``.  Readiness can only
      change when a blocking load completes — at a memory event, or at
      its already-known completion cycle — so every cycle strictly
      before ``min(next event, known wake)`` is a stall, and the whole
      window collapses to one bulk accounting step plus
      :meth:`~repro.sim.memory.MemorySystem.advance`;
    * a *drain* cycle does exactly: no-op tick pair.  Jump straight from
      event to event until quiescent;
    * a run of kernel indexes whose slots contain no memory operation
      and no load consumer, entered with the memory system quiescent
      (no loads in flight, none due), issues unconditionally and leaves
      memory untouched — the run retires in one step.
    """
    ii = schedule.ii
    length = schedule.length
    index = 0
    cycle = 0
    stall_streak = 0
    drain_low_water = float("inf")
    drain_anchor = 0
    next_prune = _PRUNE_INTERVAL

    (
        run_len, all_clean, count_prefix, ops_per_ii, steady_lo, steady_hi,
    ) = _fastpath_tables(ops_by_slot, ii, n_iter, total_indexes)

    while index < total_indexes or not memory.quiescent():
        if index >= total_indexes:
            # ---- post-issue drain ------------------------------------
            # Same watchdog policy as the reference: bound windows in
            # which the low-water mark of pending work stops falling,
            # not the total drain length of a large (healthy) backlog.
            # Sampled after tick_begin, exactly like the reference, so
            # progress delivered *this* cycle re-anchors immediately and
            # both engines agree on the cycle a drain is declared hung.
            memory.tick_begin(cycle)
            pending = memory.pending_work()
            if pending < drain_low_water:
                drain_low_water = pending
                drain_anchor = cycle
            memory.tick_end(cycle)
            cycle += 1
            if cycle - drain_anchor > STALL_WATCHDOG:
                raise SimulationError(
                    f"memory system failed to drain: no progress for "
                    f"{STALL_WATCHDOG} cycles after the last issue"
                )
            if memory.quiescent():
                continue
            event = memory.next_event_cycle(cycle)
            if event is None:
                raise SimulationError(
                    f"memory system cannot drain: in-flight work remains "
                    f"but no event is pending at cycle {cycle}"
                )
            # Never jump past the cycle on which the reference would
            # declare the drain hung: clamp so that cycle still gets
            # processed and the watchdog fires at the same point.
            limit = drain_anchor + STALL_WATCHDOG
            if event > limit:
                event = limit
            if event > cycle:
                stats.fast_forwarded_cycles += event - cycle
                memory.advance(cycle, event)
                cycle = event
            continue

        # ---- bulk fast path: memory-free kernel-index runs -----------
        if steady_lo <= index < steady_hi:
            slot = index % ii
            if all_clean:
                k = steady_hi - index
            else:
                k = run_len[slot]
                if k:
                    bound = steady_hi - index
                    if k > bound:
                        k = bound
            # k <= total_indexes - index always: steady_hi is capped at
            # total_indexes and both branches bound k by steady_hi.
            if k and memory.quiescent():
                if all_clean:
                    whole, rem = divmod(k, ii)
                    issued = whole * ops_per_ii + (
                        count_prefix[slot + rem] - count_prefix[slot]
                    )
                else:
                    issued = count_prefix[slot + k] - count_prefix[slot]
                stats.issued_ops += issued
                stats.compute_cycles += k
                stats.fast_retired_indexes += k
                memory.advance(cycle, cycle + k)
                index += k
                cycle += k
                stall_streak = 0
                if index >= next_prune:
                    _prune(completions, index, ii, length)
                    next_prune = _next_prune_after(index)
                continue

        # ---- one kernel index: stall (fast-forwarding) until ready ---
        memory.tick_begin(cycle)
        due = _due_ops(ops_by_slot, index, ii, n_iter)
        if not _all_ready(due, completions, cycle):
            # The due set is frozen while the index stalls; resolve its
            # load waits once and loop event-to-event until they clear.
            waits = [
                (completions[load_iid], iteration - distance)
                for info, iteration in due
                for load_iid, distance in info.load_preds
                if iteration - distance >= 0
            ]
            while True:
                stats.stall_cycles += 1
                stall_streak += 1
                if stall_streak > STALL_WATCHDOG:
                    raise SimulationError(
                        f"machine stalled for {stall_streak} cycles at "
                        f"kernel index {index}"
                    )
                memory.tick_end(cycle)
                cycle += 1

                event = memory.next_event_cycle(cycle)
                if event is None or event > cycle:
                    # No event this very cycle: a jump may be possible,
                    # bounded by the earliest known load-completion wake.
                    wake = _waits_wake(waits)
                    if wake is None and event is None:
                        # A blocking load is in flight but the memory
                        # system has nothing scheduled: the machine can
                        # never unblock.  The per-cycle reference spins
                        # up to the watchdog; charge the same window and
                        # raise its exact error.
                        _raise_watchdog(stats, stall_streak, index)
                    if wake is None:
                        target = event
                    elif event is None:
                        target = wake
                    else:
                        target = event if event < wake else wake
                    if target > cycle:
                        skipped = target - cycle
                        if stall_streak + skipped > STALL_WATCHDOG:
                            _raise_watchdog(stats, stall_streak, index)
                        stats.stall_cycles += skipped
                        stats.fast_forwarded_cycles += skipped
                        stall_streak += skipped
                        memory.advance(cycle, target)
                        cycle = target
                        if skipped >= _PRUNE_INTERVAL:
                            # A fast-forwarded stall window as long as a
                            # whole prune interval: drop stale
                            # completions now, not after the streak.
                            _prune(completions, index, ii, length)
                            if index >= next_prune:
                                next_prune = _next_prune_after(index)
                memory.tick_begin(cycle)
                if _waits_ready(waits, cycle):
                    break

        for info, iteration in due:
            _issue(info, iteration, cycle, trace, memory, completions, stats)
        index += 1
        stats.compute_cycles += 1
        stall_streak = 0
        memory.tick_end(cycle)
        cycle += 1
        if index >= next_prune:
            _prune(completions, index, ii, length)
            next_prune = _next_prune_after(index)


def _raise_watchdog(stats: SimStats, stall_streak: int, index: int) -> None:
    """Charge the stall window up to the watchdog bound and raise exactly
    the error the per-cycle reference would have raised."""
    over = STALL_WATCHDOG + 1 - stall_streak
    stats.stall_cycles += over
    raise SimulationError(
        f"machine stalled for {STALL_WATCHDOG + 1} cycles at "
        f"kernel index {index}"
    )


def _waits_ready(
    waits: List[Tuple[Dict[int, Optional[int]], int]], cycle: int
) -> bool:
    """Same predicate as :func:`_all_ready`, over pre-resolved waits."""
    for per_load, j in waits:
        done = per_load.get(j, 0)
        if done is None or done > cycle:
            return False
    return True


def _waits_wake(
    waits: List[Tuple[Dict[int, Optional[int]], int]]
) -> Optional[int]:
    """The cycle the current stall provably ends, or None.

    When every blocking load has already completed with a known (future)
    completion cycle, issue resumes exactly at the latest of them.  A
    load still in flight (completion unknown) returns None — only a
    memory event can change anything then.
    """
    wake = 0
    for per_load, j in waits:
        done = per_load.get(j, 0)
        if done is None:
            return None
        if done > wake:
            wake = done
    return wake


def _next_prune_after(index: int) -> int:
    """The next prune threshold at or above ``index`` — robust to the
    bulk fast path jumping over several interval multiples at once."""
    return index - index % _PRUNE_INTERVAL + _PRUNE_INTERVAL


def _fastpath_tables(
    ops_by_slot: List[List[_OpInfo]], ii: int, n_iter: int, total_indexes: int
):
    """Precomputed tables for the bulk (memory-free run) fast path.

    A modulo slot is *clean* when none of its ops touch memory or consume
    a load value; a run of clean slots entered with the memory system
    quiescent retires without per-cycle processing.  ``run_len[s]`` is the
    clean-run length starting at slot ``s`` (wrapping, capped at II);
    ``count_prefix`` gives O(1) issued-op counts over any wrapped slot
    window.  The run bounds [steady_lo, steady_hi) are the indexes where
    every matching op instance is live (past the prologue ramp, before
    the epilogue ramp), so due-op sets equal whole slot buckets.
    """
    clean = [
        all(
            not (op.is_load or op.is_store or op.load_preds)
            for op in bucket
        )
        for bucket in ops_by_slot
    ]
    counts = [len(bucket) for bucket in ops_by_slot]
    doubled = counts + counts
    count_prefix = [0]
    for count in doubled:
        count_prefix.append(count_prefix[-1] + count)
    ops_per_ii = sum(counts)

    all_clean = all(clean)
    run_len = [0] * ii
    if not all_clean:
        doubled_clean = clean + clean
        lens = [0] * (2 * ii)
        run = 0
        for i in range(2 * ii - 1, -1, -1):
            run = run + 1 if doubled_clean[i] else 0
            lens[i] = run
        run_len = [lens[s] if lens[s] < ii else ii for s in range(ii)]

    times = [op.time for bucket in ops_by_slot for op in bucket]
    if times:
        steady_lo = max(times)
        steady_hi = min(times) + n_iter * ii
    else:
        steady_lo = 0
        steady_hi = total_indexes
    if steady_hi > total_indexes:
        steady_hi = total_indexes
    return run_len, all_clean, count_prefix, ops_per_ii, steady_lo, steady_hi


# ----------------------------------------------------------------------
def _prepare(compilation: CompilationResult) -> List[List[_OpInfo]]:
    """Bucket scheduled ops by modulo slot with pre-resolved issue info."""
    schedule = compilation.schedule
    ddg = compilation.ddg
    buckets: List[List[_OpInfo]] = [[] for _ in range(schedule.ii)]
    for op in schedule.ops.values():
        instr = ddg.node(op.iid)
        load_preds = tuple(
            (e.src, e.distance)
            for e in ddg.preds(op.iid)
            if e.kind is DepKind.RF and ddg.node(e.src).is_load
        )
        info = _OpInfo(
            iid=op.iid,
            cluster=op.cluster,
            time=op.time,
            is_load=instr.is_load,
            is_store=instr.is_store,
            width=instr.mem.width if instr.mem is not None else 4,
            replica=instr.replica_group is not None,
            seq=instr.seq,
            load_preds=load_preds,
        )
        buckets[op.time % schedule.ii].append(info)
    for bucket in buckets:
        # Within one cycle, reads happen before writes (an MA-dependent
        # store scheduled in the same cycle as the load must not clobber
        # the value first — the paper's "at the same time" case).
        bucket.sort(key=lambda info: (info.is_store, info.iid))
    return buckets


def _due_ops(
    ops_by_slot: List[List[_OpInfo]], index: int, ii: int, n_iter: int
) -> List[Tuple[_OpInfo, int]]:
    due = []
    for info in ops_by_slot[index % ii]:
        iteration, rem = divmod(index - info.time, ii)
        if rem == 0 and 0 <= iteration < n_iter:
            due.append((info, iteration))
    return due


def _all_ready(
    due: List[Tuple[_OpInfo, int]],
    completions: Dict[int, Dict[int, Optional[int]]],
    cycle: int,
) -> bool:
    for info, iteration in due:
        for load_iid, distance in info.load_preds:
            j = iteration - distance
            if j < 0:
                continue
            done = completions[load_iid].get(j, 0)
            if done is None or done > cycle:
                return False
    return True


def _issue(
    info: _OpInfo,
    iteration: int,
    cycle: int,
    trace: TraceLike,
    memory: MemorySystem,
    completions: Dict[int, Dict[int, Optional[int]]],
    stats: SimStats,
) -> None:
    stats.issued_ops += 1
    if info.is_load:
        addr = trace.address(info.iid, iteration)
        slot = completions[info.iid]
        slot[iteration] = None

        def on_complete(done: int, _slot=slot, _it=iteration) -> None:
            _slot[_it] = done

        memory.load(
            info.cluster, addr, info.width, info.iid, iteration, on_complete, cycle
        )
    elif info.is_store:
        addr = trace.address(info.iid, iteration)
        memory.store(
            info.cluster,
            addr,
            info.width,
            info.iid,
            iteration,
            (iteration, info.seq),
            info.replica,
            cycle,
        )


def _prune(
    completions: Dict[int, Dict[int, Optional[int]]],
    index: int,
    ii: int,
    length: int,
) -> None:
    """Drop completion records no consumer can still reference."""
    horizon = (index - length) // ii - 8
    if horizon <= 0:
        return
    for per_load in completions.values():
        stale = [it for it, done in per_load.items() if it < horizon and done is not None]
        for it in stale:
            del per_load[it]
