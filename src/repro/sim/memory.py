"""The distributed memory system.

Glues together the per-cluster cache modules, the memory-bus fabric, the
next memory level and (optionally) the Attraction Buffers, and implements
the four access flows of section 2.1 — local hit, remote hit, local miss,
remote miss — plus combined accesses (merged into a pending subblock
request) and the store-replication / Attraction-Buffer semantics of
sections 3.3 and 5.

Values are modeled as store *versions* (see :mod:`repro.sim.coherence`):
each home cluster keeps, per subblock, the map address -> last applied
version.  That is enough to detect every ordering violation while staying
trace-driven.

Timing recipe (matching :meth:`MachineConfig.memory_latencies`):

* local hit:    complete at ``issue + hit``;
* local miss:   next-level request at ``issue + hit``, fill +``latency``;
* remote —      request bus transfer, probe at home (+``hit``), optional
  next-level round trip, response bus transfer.

Per cycle the executor calls :meth:`tick_begin` (deliver bus messages and
next-level fills), lets the core issue, then :meth:`tick_end` (inject
queued transfers).  A request issued at cycle ``c`` therefore first
contends for a bus at ``c``.

The event-skipping executor (the default engine of
:func:`repro.sim.executor.simulate`) replaces long runs of no-op tick
pairs with one :meth:`advance` interval: :meth:`next_event_cycle`
names the earliest cycle at which a tick pair would do anything (a bus
arrival, a deferred home response becoming sendable, a next-level fill —
or the very next cycle while any injection/acceptance queue is busy,
since arbitration and wait accounting happen per cycle), and every cycle
strictly before it is provably inert.  Skipped intervals replay the one
piece of per-cycle state that still moves — bus round-robin arbitration
— in bulk, so an event-skipped run is observation-equivalent, stat for
stat, to a per-cycle run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.arch.config import MachineConfig
from repro.errors import SimulationError
from repro.sim.attraction import AttractionBuffer
from repro.sim.bus import BusFabric, BusMessage
from repro.sim.cache import CacheModule
from repro.sim.coherence import CoherenceChecker
from repro.sim.interleave import home_cluster, subblock_id
from repro.sim.nextlevel import NextLevel, NextLevelRequest
from repro.sim.stats import AccessType, SimStats

Version = Tuple[int, int]
SubblockKey = Tuple[int, int]
LoadCallback = Callable[[int], None]  # completion cycle
#: Structured protocol events (see the class docstring of
#: :class:`MemorySystem` for the vocabulary); consumed by the
#: conformance bridge in :mod:`repro.check.conformance`.
TraceCallback = Callable[[tuple], None]


@dataclass
class _PendingLoad:
    """A load waiting for a subblock (local fill or remote response)."""

    iid: int
    iteration: int
    addr: int
    on_complete: LoadCallback


@dataclass
class _HomeWaiter:
    """Work deferred at a home module until its next-level fill arrives.

    Actions replay *in arrival order* at fill time: a load that reached
    the module before a later store must not observe that store's value
    (they merged into one MSHR entry, but the module still serializes
    them as they arrived).  Each action is one of::

        ("store", addr, version)              apply a write
        ("load", _PendingLoad)                complete a local load
        ("respond", requester, _PendingLoad)  answer a remote read request
    """

    actions: List[tuple] = field(default_factory=list)

    def defer_store(self, addr: int, version: Version) -> None:
        self.actions.append(("store", addr, version))

    def defer_load(self, pending: "_PendingLoad") -> None:
        self.actions.append(("load", pending))

    def defer_response(self, requester: int, pending: "_PendingLoad") -> None:
        self.actions.append(("respond", requester, pending))


class MemorySystem:
    """All clusters' cache modules plus the interconnect.

    ``trace``, when given, receives one tuple per protocol step — pure
    observation, no behavioural effect.  The vocabulary (``block`` is
    the cache-block id, ``ref`` a load's iid or a store's version)::

        ("local", cluster, block, kind, ref, disposition)
        ("remote_issue", cluster, home, block, kind, ref)
        ("home_request", home, src, block, kind, ref, disposition)
        ("send_response", home, block, iids, deferred)
        ("deliver_response", requester, block, iids)
        ("fill", cluster, block)
        ("observe", iid, iteration, observed_version)
        ("apply", block, home, addr, version, inverted)

    with ``kind`` in ``load``/``store`` and ``disposition`` in
    ``hit``/``miss``/``combine``.  The conformance bridge
    (:mod:`repro.check.conformance`) replays these through the protocol
    model transition by transition.
    """

    def __init__(
        self,
        machine: MachineConfig,
        stats: SimStats,
        checker: Optional[CoherenceChecker] = None,
        trace: Optional[TraceCallback] = None,
    ) -> None:
        self.machine = machine
        self.stats = stats
        self.checker = checker
        self._trace = trace
        self.modules = [
            CacheModule(machine.cache) for _ in machine.clusters
        ]
        self.abs: Optional[List[AttractionBuffer]] = None
        if machine.attraction_buffer is not None:
            self.abs = [
                AttractionBuffer(machine.attraction_buffer)
                for _ in machine.clusters
            ]
        self.fabric = BusFabric(machine.memory_buses, machine.num_clusters)
        self.next_level = NextLevel(machine.next_level)
        #: ground truth: (block, home) -> {addr: version}
        self._versions: Dict[SubblockKey, Dict[int, Version]] = {}
        #: home-side MSHRs: per cluster, block -> deferred work
        self._home_mshr: List[Dict[int, _HomeWaiter]] = [
            {} for _ in machine.clusters
        ]
        #: responses waiting for their earliest send cycle
        self._deferred_sends: Dict[int, List[BusMessage]] = {}
        self._outstanding = 0  # accesses not yet fully resolved

    # ------------------------------------------------------------------
    # Cycle driving
    # ------------------------------------------------------------------
    def tick_begin(self, cycle: int) -> None:
        if self._deferred_sends:
            for message in self._deferred_sends.pop(cycle, ()):
                if self._trace is not None and message.tag is not None:
                    self._trace(("send_response",) + message.tag + (True,))
                self.fabric.send(message)
        self.next_level.tick(cycle)
        self.fabric.deliver(cycle)

    def tick_end(self, cycle: int) -> None:
        self.fabric.inject(cycle)
        self.sync_stats()

    def sync_stats(self) -> None:
        """Mirror fabric/next-level counters into :class:`SimStats`.

        Pure absolute copies of monotonic counters, so calling this once
        at end of run (as the batch engine's steppers do) yields the
        same final stats as calling it every ``tick_end``.
        """
        self.stats.bus_transfers = self.fabric.transfers
        self.stats.bus_queued_cycles = self.fabric.queued_cycles
        self.stats.next_level_requests = self.next_level.requests
        # The fabric mutates its per-kind dict in place and each run owns
        # its own fabric, so sharing the reference is safe and keeps this
        # per-tick call allocation-free.
        self.stats.bus_transfer_kinds = self.fabric.transfers_by_kind

    def quiescent(self) -> bool:
        return (
            self._outstanding == 0
            and self.fabric.pending() == 0
            and self.next_level.pending() == 0
            and not self._deferred_sends
        )

    def pending_work(self) -> int:
        """How much in-flight work remains (accesses, messages, fills).

        The post-issue drain watchdog tracks this as a low-water mark: a
        healthy drain shrinks it within any watchdog-sized window (every
        message completes within a bus/next-level latency), while a
        memory bug that perpetually reschedules itself does not — so the
        watchdog bounds *progress-free* windows, never the total drain
        length of a legitimately large backlog.
        """
        return (
            self._outstanding
            + self.fabric.pending()
            + self.next_level.pending()
            + sum(len(v) for v in self._deferred_sends.values())
        )

    # ------------------------------------------------------------------
    # Interval advancing (event-skipping executor support)
    # ------------------------------------------------------------------
    def next_event_cycle(self, after: int) -> Optional[int]:
        """Earliest cycle ``>= after`` at which a tick pair does work.

        The timed event sources: in-flight bus transfers, deferred home
        responses (probe/fill data waiting for its earliest send cycle),
        next-level fills, and — when messages are queued but every bus is
        occupied — the first cycle a bus frees up.  While the next level
        has queued requests, or a queued bus message could inject *now*,
        every cycle does work (port acceptance, arbitration) and
        ``after`` itself is returned.  Returns ``None`` when nothing is
        pending at all: no tick pair will ever do anything again.
        (Attraction-Buffer actions are synchronous side effects of loads,
        stores and response deliveries, so they never add event cycles of
        their own.)

        This deliberately reads its components' internal queues rather
        than going through accessor methods: it runs once per processed
        stall/drain cycle, and the three structures probed here are the
        complete set of timed state in the subsystem (the engine
        equivalence tests pin that completeness).
        """
        fabric = self.fabric
        if self.next_level._queue:
            return after
        best: Optional[int] = None
        if fabric._queued:
            free_at = fabric.next_free_bus()
            if free_at <= after:
                return after
            best = free_at
        if fabric._in_flight:
            candidate = min(fabric._in_flight)
            if best is None or candidate < best:
                best = candidate
        completions = self.next_level._completions
        if completions:
            candidate = min(completions)
            if best is None or candidate < best:
                best = candidate
        if self._deferred_sends:
            candidate = min(self._deferred_sends)
            if best is None or candidate < best:
                best = candidate
        if best is None:
            return None
        return best if best > after else after

    def advance(self, start: int, stop: int) -> None:
        """Replay cycles ``[start, stop)`` in one jump.

        Only legal when :meth:`next_event_cycle` proved the window inert
        (``stop <= next_event_cycle(start)``): no deliveries, fills,
        deferred sends, injections or port acceptances can occur, so the
        whole window collapses to the bus fabric's bulk replay (wait
        accounting for stuck queues, round-robin rotation otherwise).
        Semantically identical to ``stop - start`` tick pairs with no
        core issue in between.
        """
        if stop <= start:
            return
        self.fabric.skip_window(start, stop)

    # ------------------------------------------------------------------
    # Version bookkeeping
    # ------------------------------------------------------------------
    def _bucket(self, key: SubblockKey) -> Dict[int, Version]:
        return self._versions.setdefault(key, {})

    def _apply_store(self, key: SubblockKey, addr: int, version: Version) -> None:
        bucket = self._bucket(key)
        current = bucket.get(addr)
        inverted = current is not None and current > version
        if self._trace is not None:
            self._trace(("apply", key[0], key[1], addr, version, inverted))
        if inverted:
            # A younger store already applied: program order inverted.
            if self.checker is not None:
                self.checker.observe_write_inversion()
            self.stats.coherence_violations += 1
            return  # keep the younger (trace-correct) version
        bucket[addr] = version

    def _observe(self, load: _PendingLoad, observed: Optional[Version]) -> None:
        if self._trace is not None:
            self._trace(("observe", load.iid, load.iteration, observed))
        if self.checker is not None:
            if self.checker.observe_load(load.iid, load.iteration, observed):
                self.stats.coherence_violations += 1

    # ------------------------------------------------------------------
    # Public access API
    # ------------------------------------------------------------------
    def _route(self, addr: int) -> Tuple[int, SubblockKey]:
        """Map an address to ``(serving cluster, subblock key)``.

        The snooping default is the paper's word-interleaved home map;
        memory models with a different placement (e.g. the hashed
        last-level slices of the DLS model) override only this hook and
        inherit every protocol flow unchanged.
        """
        return home_cluster(self.machine, addr), subblock_id(self.machine, addr)

    def load(
        self,
        cluster: int,
        addr: int,
        width: int,
        iid: int,
        iteration: int,
        on_complete: LoadCallback,
        cycle: int,
    ) -> None:
        self._check_alignment(addr, width)
        home, key = self._route(addr)
        pending = _PendingLoad(iid, iteration, addr, on_complete)

        if home == cluster:
            self._local_load(cluster, key, pending, cycle)
            return

        # Attraction Buffer: a cached copy of the remote subblock makes the
        # access local (section 5.1).
        if self.abs is not None:
            entry = self.abs[cluster].lookup(key)
            if entry is not None:
                self.stats.record_access(AccessType.LOCAL_HIT)
                self.stats.ab_hits = sum(ab.hits for ab in self.abs)
                self._observe(pending, entry.versions.get(addr))
                on_complete(cycle + self.machine.cache.hit_latency)
                return

        self._remote_load(cluster, home, key, pending, cycle)

    def store(
        self,
        cluster: int,
        addr: int,
        width: int,
        iid: int,
        iteration: int,
        version: Version,
        replica: bool,
        cycle: int,
    ) -> None:
        self._check_alignment(addr, width)
        home, key = self._route(addr)

        if replica and home != cluster:
            # Nullified instance (section 3.3) — but it still refreshes an
            # Attraction Buffer copy if one exists (section 5.3).
            self.stats.nullified_stores += 1
            if self.abs is not None:
                self.abs[cluster].update(key, addr, version)
            return

        if home == cluster:
            self._local_store(cluster, key, addr, version, cycle)
            return

        # Remote store with a locally attracted copy: update it in place;
        # the dirty data goes home at the loop-boundary flush (section 5.2).
        if self.abs is not None:
            if self.abs[cluster].update(key, addr, version):
                self.stats.record_access(AccessType.LOCAL_HIT)
                return

        self._remote_store(cluster, home, key, addr, version, cycle)

    # ------------------------------------------------------------------
    # Local flows
    # ------------------------------------------------------------------
    def _local_load(
        self, cluster: int, key: SubblockKey, pending: _PendingLoad, cycle: int
    ) -> None:
        block = key[0]
        module = self.modules[cluster]
        if module.probe(block):
            self.stats.record_access(AccessType.LOCAL_HIT)
            if self._trace is not None:
                self._trace(("local", cluster, block, "load", pending.iid,
                             "hit"))
            self._observe(pending, self._bucket(key).get(pending.addr))
            pending.on_complete(cycle + self.machine.cache.hit_latency)
            return
        waiter = self._home_mshr[cluster].get(block)
        if waiter is not None:
            self.stats.record_access(AccessType.COMBINED)
            if self._trace is not None:
                self._trace(("local", cluster, block, "load", pending.iid,
                             "combine"))
            waiter.defer_load(pending)
            self._outstanding += 1
            return
        self.stats.record_access(AccessType.LOCAL_MISS)
        if self._trace is not None:
            self._trace(("local", cluster, block, "load", pending.iid,
                         "miss"))
        waiter = _HomeWaiter()
        waiter.defer_load(pending)
        self._home_mshr[cluster][block] = waiter
        self._outstanding += 1
        self._fetch(cluster, block)

    def _local_store(
        self, cluster: int, key: SubblockKey, addr: int, version: Version,
        cycle: int,
    ) -> None:
        block = key[0]
        module = self.modules[cluster]
        if module.probe(block):
            self.stats.record_access(AccessType.LOCAL_HIT)
            if self._trace is not None:
                self._trace(("local", cluster, block, "store", version,
                             "hit"))
            module.mark_dirty(block)
            self._apply_store(key, addr, version)
            return
        waiter = self._home_mshr[cluster].get(block)
        if waiter is not None:
            self.stats.record_access(AccessType.COMBINED)
            if self._trace is not None:
                self._trace(("local", cluster, block, "store", version,
                             "combine"))
            waiter.defer_store(addr, version)
            self._outstanding += 1
            return
        self.stats.record_access(AccessType.LOCAL_MISS)
        if self._trace is not None:
            self._trace(("local", cluster, block, "store", version, "miss"))
        waiter = _HomeWaiter()
        waiter.defer_store(addr, version)
        self._home_mshr[cluster][block] = waiter
        self._outstanding += 1
        self._fetch(cluster, block)

    def _fetch(self, cluster: int, block: int) -> None:
        """Issue the next-level fill for a missing subblock.

        The next level accepts requests at the tick following enqueue, so
        the probe latency is naturally folded into the acceptance delay:
        a miss detected at cycle ``c`` fills at ``c + 1 + latency``, which
        matches the local-miss rung of the latency ladder.
        """

        def on_fill(fill_cycle: int) -> None:
            self._handle_fill(cluster, block, fill_cycle)

        self.next_level.request(NextLevelRequest(on_fill=on_fill))

    def _handle_fill(self, cluster: int, block: int, cycle: int) -> None:
        if self._trace is not None:
            self._trace(("fill", cluster, block))
        module = self.modules[cluster]
        victim = module.install(block, dirty=False)
        if victim is not None and victim.dirty:
            # Write-back of the victim consumes a next-level port.
            self.next_level.request(
                NextLevelRequest(on_fill=lambda c: None, enqueued_at=cycle)
            )
        waiter = self._home_mshr[cluster].pop(block, None)
        if waiter is None:
            raise SimulationError(f"fill for block {block} without waiter")
        key = (block, cluster)
        for action in waiter.actions:
            if action[0] == "store":
                _tag, addr, version = action
                self._apply_store(key, addr, version)
                module.mark_dirty(block)
            elif action[0] == "load":
                pending = action[1]
                self._observe(pending, self._bucket(key).get(pending.addr))
                pending.on_complete(cycle)
            else:  # respond
                self._send_response(
                    cluster, action[1], key, action[2],
                    send_at=cycle, now=cycle,
                )
            self._outstanding -= 1

    # ------------------------------------------------------------------
    # Remote flows
    # ------------------------------------------------------------------
    def _remote_load(
        self,
        cluster: int,
        home: int,
        key: SubblockKey,
        pending: _PendingLoad,
        cycle: int,
    ) -> None:
        """Every remote load travels to its home as its own request.

        There is deliberately no requester-side combining onto an
        in-flight request for the same subblock: a merged load would be
        served at the *older* request's serialization point at the home,
        where it can miss a store that program order placed before it
        (stale read) or observe one placed after it (broken MA).  The
        per-source FIFO buses deliver same-cluster messages in issue
        order, so serving each load where its own request arrives at the
        home — the point of coherence — preserves exactly the ordering
        the MDC/DDGT solutions rely on.  (Requests that find a next-level
        fill in progress still merge into the home MSHR below, which
        replays its actions in arrival order.)
        """
        self._outstanding += 1
        if self._trace is not None:
            self._trace(("remote_issue", cluster, home, key[0], "load",
                         pending.iid))

        def at_home(arrival: int) -> None:
            self._home_load_request(cluster, home, key, pending, arrival)

        self.fabric.send(
            BusMessage(src=cluster, dst=home, on_deliver=at_home,
                       enqueued_at=cycle, kind="req_load")
        )

    def _home_load_request(
        self, requester: int, home: int, key: SubblockKey,
        pending: _PendingLoad, arrival: int,
    ) -> None:
        block = key[0]
        module = self.modules[home]
        if module.probe(block):
            self.stats.record_access(AccessType.REMOTE_HIT)
            if self._trace is not None:
                self._trace(("home_request", home, requester, block, "load",
                             pending.iid, "hit"))
            self._send_response(
                home,
                requester,
                key,
                pending,
                send_at=arrival + self.machine.cache.hit_latency,
                now=arrival,
            )
            return
        waiter = self._home_mshr[home].get(block)
        if waiter is not None:
            self.stats.record_access(AccessType.COMBINED)
            if self._trace is not None:
                self._trace(("home_request", home, requester, block, "load",
                             pending.iid, "combine"))
            waiter.defer_response(requester, pending)
            self._outstanding += 1
            return
        self.stats.record_access(AccessType.REMOTE_MISS)
        if self._trace is not None:
            self._trace(("home_request", home, requester, block, "load",
                         pending.iid, "miss"))
        waiter = _HomeWaiter()
        waiter.defer_response(requester, pending)
        self._home_mshr[home][block] = waiter
        self._outstanding += 1
        self._fetch(home, block)

    def _send_response(
        self, home: int, requester: int, key: SubblockKey,
        pending: _PendingLoad, send_at: int, now: int,
    ) -> None:
        """Serve one read request and queue its response.

        The load observes the subblock *here*, at its serialization point
        at the home module; the response only models the transfer back.
        ``send_at`` is the cycle the response data is ready at the home
        module (probe latency after the request's arrival, or the fill
        cycle itself); messages ready now enter the bus queue directly so
        they contend for a bus this very cycle.
        """
        snapshot = dict(self._bucket(key))
        self._observe(pending, snapshot.get(pending.addr))

        def at_requester(arrival: int) -> None:
            if self._trace is not None:
                self._trace(("deliver_response", requester, key[0],
                             (pending.iid,)))
            pending.on_complete(arrival)
            self._outstanding -= 1
            if self.abs is not None:
                self._ab_fill(requester, key, snapshot)

        message = BusMessage(
            src=home, dst=requester, on_deliver=at_requester,
            enqueued_at=send_at, tag=(home, key[0], (pending.iid,)),
            kind="resp",
        )
        if send_at <= now:
            if self._trace is not None:
                self._trace(("send_response", home, key[0], (pending.iid,),
                             False))
            self.fabric.send(message)
        else:
            self._deferred_sends.setdefault(send_at, []).append(message)

    def _remote_store(
        self,
        cluster: int,
        home: int,
        key: SubblockKey,
        addr: int,
        version: Version,
        cycle: int,
    ) -> None:
        self._outstanding += 1
        if self._trace is not None:
            self._trace(("remote_issue", cluster, home, key[0], "store",
                         version))

        def at_home(arrival: int) -> None:
            self._home_store_request(home, key, addr, version, src=cluster)
            self._outstanding -= 1

        self.fabric.send(
            BusMessage(src=cluster, dst=home, on_deliver=at_home,
                       enqueued_at=cycle, kind="req_store")
        )

    def _home_store_request(
        self, home: int, key: SubblockKey, addr: int, version: Version,
        src: Optional[int] = None,
    ) -> None:
        block = key[0]
        module = self.modules[home]
        if module.probe(block):
            self.stats.record_access(AccessType.REMOTE_HIT)
            if self._trace is not None:
                self._trace(("home_request", home, src, block, "store",
                             version, "hit"))
            module.mark_dirty(block)
            self._apply_store(key, addr, version)
            return
        waiter = self._home_mshr[home].get(block)
        if waiter is not None:
            self.stats.record_access(AccessType.COMBINED)
            if self._trace is not None:
                self._trace(("home_request", home, src, block, "store",
                             version, "combine"))
            waiter.defer_store(addr, version)
            self._outstanding += 1
            return
        self.stats.record_access(AccessType.REMOTE_MISS)
        if self._trace is not None:
            self._trace(("home_request", home, src, block, "store",
                         version, "miss"))
        waiter = _HomeWaiter()
        waiter.defer_store(addr, version)
        self._home_mshr[home][block] = waiter
        self._outstanding += 1
        self._fetch(home, block)

    # ------------------------------------------------------------------
    # Attraction Buffers
    # ------------------------------------------------------------------
    def _ab_fill(
        self, cluster: int, key: SubblockKey, snapshot: Dict[int, Version]
    ) -> None:
        assert self.abs is not None
        victim = self.abs[cluster].fill(key, snapshot)
        if victim is not None and victim.dirty:
            self._write_back_ab_entry(victim)
        self.stats.ab_fills = sum(ab.fills for ab in self.abs)
        self.stats.ab_overflows = sum(ab.overflows for ab in self.abs)

    def _write_back_ab_entry(self, entry) -> None:
        for addr, version in entry.versions.items():
            self._apply_store(entry.key, addr, version)

    def flush_attraction_buffers(self) -> None:
        """Loop-boundary flush (sections 5.2/5.3): every dirty attracted
        copy is written back to its home cluster and all entries drop."""
        if self.abs is None:
            return
        for ab in self.abs:
            for entry in ab.flush():
                self._write_back_ab_entry(entry)
                self.stats.ab_flushed_dirty += 1

    # ------------------------------------------------------------------
    def _check_alignment(self, addr: int, width: int) -> None:
        """Accesses wider than the interleave unit (e.g. mpeg2dec's 8-byte
        data over a 4-byte interleave, Table 1) are modeled as touching the
        *leading* unit's home cluster; versions are tracked at the exact
        access address, so coherence checking is unaffected."""
        if width < 1:
            raise SimulationError(f"access width must be positive, got {width}")
