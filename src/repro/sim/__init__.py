"""Cycle-level simulator of the word-interleaved cache clustered VLIW.

The executor (:func:`repro.sim.executor.simulate`) runs a compiled modulo
schedule the way the hardware would: operation instances issue at
``t(op) + i * II`` in lockstep across clusters, the whole machine stalls on
use of a load value that has not arrived, and the distributed memory system
(cache modules, memory buses, next level, optional Attraction Buffers)
advances every cycle, including stalled ones.

Two observation-equivalent engines drive that model: the default
event-skipping engine jumps stalled windows and the post-issue drain to
the next memory event (and bulk-retires memory-free kernel-index runs),
while ``engine="cycles"`` is the one-Python-iteration-per-cycle
reference.  See the "Event-skipping simulation" section of
``docs/architecture.md``.

A :class:`~repro.sim.coherence.CoherenceChecker` tracks, per access, the
store version each load *should* observe under sequential semantics and
counts the violations an unconstrained schedule would have turned into
data corruption (the simulation itself stays trace-driven and correct,
like the paper's — footnote in section 4.1).
"""

from repro.sim.interleave import home_cluster, subblock_addresses, subblock_id
from repro.sim.stats import AccessType, SimStats
from repro.sim.coherence import CoherenceChecker
from repro.sim.memory import MemorySystem
from repro.sim.executor import ENGINES, SimulationResult, simulate
from repro.sim.batch import (
    DEFAULT_BATCH_SIZE,
    BatchSimulator,
    simulate_batch,
)

__all__ = [
    "home_cluster",
    "subblock_addresses",
    "subblock_id",
    "AccessType",
    "SimStats",
    "CoherenceChecker",
    "MemorySystem",
    "ENGINES",
    "SimulationResult",
    "simulate",
    "DEFAULT_BATCH_SIZE",
    "BatchSimulator",
    "simulate_batch",
]
