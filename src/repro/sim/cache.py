"""Per-cluster cache modules.

Each cluster owns a small set-associative module that stores, for every
cached block, only that cluster's *subblock* (the paper's Figure 1: a 2KB
module with 32-byte blocks holds 8-byte subblocks of 256 blocks at 4-way
interleaving).  Presence is tracked per block id; true LRU within a set.

The module stores no data — values are modeled as store *versions* kept by
the :class:`~repro.sim.memory.MemorySystem` — so the cache tracks only
presence and dirtiness.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.arch.config import CacheConfig


@dataclass
class Eviction:
    """A victim subblock pushed out by an install."""

    block: int
    dirty: bool


class CacheModule:
    """One cluster's slice of the distributed L1."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.num_sets = config.num_sets
        # set index -> OrderedDict[block_id -> dirty]; ordered by recency
        # (last = most recently used).
        self._sets: Tuple[OrderedDict, ...] = tuple(
            OrderedDict() for _ in range(self.num_sets)
        )
        self.hits = 0
        self.misses = 0

    def _set_of(self, block: int) -> OrderedDict:
        return self._sets[block % self.num_sets]

    # ------------------------------------------------------------------
    def probe(self, block: int, touch: bool = True) -> bool:
        """Is the subblock of ``block`` present?  Updates LRU on hit."""
        entries = self._set_of(block)
        if block in entries:
            if touch:
                entries.move_to_end(block)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def contains(self, block: int) -> bool:
        """Presence check with no statistics or LRU side effects."""
        return block in self._set_of(block)

    def install(self, block: int, dirty: bool = False) -> Optional[Eviction]:
        """Insert a subblock, evicting the LRU victim when the set is full.

        Re-installing a present block merges dirtiness and refreshes LRU.
        """
        entries = self._set_of(block)
        if block in entries:
            entries[block] = entries[block] or dirty
            entries.move_to_end(block)
            return None
        victim: Optional[Eviction] = None
        if len(entries) >= self.config.associativity:
            victim_block, victim_dirty = next(iter(entries.items()))
            del entries[victim_block]
            victim = Eviction(victim_block, victim_dirty)
        entries[block] = dirty
        return victim

    def mark_dirty(self, block: int) -> None:
        entries = self._set_of(block)
        if block in entries:
            entries[block] = True
            entries.move_to_end(block)

    def invalidate(self, block: int) -> bool:
        entries = self._set_of(block)
        if block in entries:
            del entries[block]
            return True
        return False

    @property
    def resident_blocks(self) -> int:
        return sum(len(entries) for entries in self._sets)
