"""Symbolic memory references.

A :class:`MemRef` describes, per memory instruction, the address stream the
instruction produces across loop iterations.  It plays two roles:

* the *disambiguator* compares two MemRefs to decide whether the compiler
  could prove independence (otherwise a conservative memory-dependence edge
  is added, exactly like the paper's section 3.1 notes: unresolved
  may-aliases become edges too);
* the *trace generators* evaluate a MemRef against a base-address map and a
  seeded RNG to produce the concrete per-iteration addresses fed to the
  cycle-level simulator.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Optional

from repro.errors import ConfigError


class AccessPattern(enum.Enum):
    """How the address evolves across iterations."""

    #: address = base(space) + offset + stride * iteration
    AFFINE = "affine"
    #: address = base(space) + offset + width * U(0, spread/width) — models
    #: table lookups / pointer chasing the compiler cannot analyze.
    INDIRECT = "indirect"


@dataclass(frozen=True)
class MemRef:
    """Symbolic description of one memory instruction's address stream.

    Parameters
    ----------
    space:
        Name of the memory object (array / buffer) being accessed.  Two
        references to different spaces never alias (the compiler can always
        distinguish distinct objects); two references to the same space may.
    offset:
        Byte offset of the iteration-0 access within the space.
    stride:
        Bytes the address advances per loop iteration (0 for invariant or
        indirect references).
    width:
        Access size in bytes (1, 2, 4 or 8 — Table 1's dominant data sizes).
    pattern:
        Affine (analyzable) or indirect (unanalyzable) address stream.
    spread:
        For indirect references, size in bytes of the window addresses are
        drawn from.
    ambiguous:
        When true, the compiler must treat this reference as possibly
        aliasing *anything* in the same space even if the affine footprints
        are provably disjoint — this models unresolved may-aliases (e.g.
        pointers the compiler could not disambiguate) and is what code
        specialization (section 6) later removes.
    salt:
        Decorrelates the pseudo-random streams of *indirect* references.
        Loop unrolling bumps the salt of each copy (different original
        iterations touch different addresses) while store replication keeps
        it (all instances of a store must compute the same address).
    """

    space: str
    offset: int = 0
    stride: int = 0
    width: int = 4
    pattern: AccessPattern = AccessPattern.AFFINE
    spread: int = 0
    ambiguous: bool = False
    salt: int = 0

    def __post_init__(self) -> None:
        if self.width not in (1, 2, 4, 8):
            raise ConfigError(f"unsupported access width: {self.width}")
        if self.offset < 0:
            raise ConfigError("negative MemRef offset")
        if self.pattern is AccessPattern.INDIRECT and self.spread < self.width:
            raise ConfigError("indirect MemRef needs spread >= width")

    def address(self, base: int, iteration: int) -> int:
        """Concrete byte address of this reference at ``iteration``.

        Indirect references are resolved by the trace generator (which owns
        the RNG); calling this on an indirect reference returns the window
        start, which is only meaningful for footprint reasoning.
        """
        if self.pattern is AccessPattern.AFFINE:
            return base + self.offset + self.stride * iteration
        return base + self.offset

    def shifted(self, extra_offset: int, stride_scale: int = 1) -> "MemRef":
        """A copy advanced by ``extra_offset`` bytes with the stride scaled.

        Used by loop unrolling: copy ``k`` of an unrolled reference starts
        ``stride * k`` bytes later and advances ``stride * factor`` per new
        iteration.
        """
        return replace(
            self,
            offset=self.offset + extra_offset,
            stride=self.stride * stride_scale,
        )

    def footprint(self, iterations: int) -> Optional[range]:
        """Byte range [start, stop) touched over ``iterations`` iterations,
        relative to the space base; ``None`` if unanalyzable."""
        if self.pattern is AccessPattern.INDIRECT:
            return range(self.offset, self.offset + max(self.spread, self.width))
        if iterations <= 0:
            return range(self.offset, self.offset)
        lo = self.offset + min(0, self.stride * (iterations - 1))
        hi = self.offset + max(0, self.stride * (iterations - 1)) + self.width
        return range(lo, hi)
