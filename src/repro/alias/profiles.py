"""Preferred-cluster profiling.

The PrefClus heuristic schedules each memory instruction in the cluster it
accesses most, "computed through profiling" (section 2.2, footnote 1) — on
the *profile* data set, which differs from the execution data set
(Table 1).  This module measures, for each memory instruction, the
histogram of home clusters its addresses map to over a trace.

A *trace* is any object exposing::

    num_iterations : int
    address(iid: int, iteration: int) -> int

(the workload trace generators satisfy this protocol).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Protocol, Tuple

from repro.arch.config import MachineConfig
from repro.errors import WorkloadError
from repro.ir.ddg import Ddg


class TraceLike(Protocol):
    """Protocol for address traces (see module docstring)."""

    num_iterations: int

    def address(self, iid: int, iteration: int) -> int: ...


@dataclass(frozen=True)
class ClusterProfile:
    """Home-cluster access histogram of one memory instruction."""

    counts: Tuple[int, ...]

    @property
    def total(self) -> int:
        return sum(self.counts)

    @property
    def preferred(self) -> int:
        """The most-visited cluster (lowest index wins ties)."""
        best = max(self.counts)
        return self.counts.index(best)

    def fraction(self, cluster: int) -> float:
        """Share of accesses that hit ``cluster`` (0.0 on an empty profile)."""
        return self.counts[cluster] / self.total if self.total else 0.0

    @staticmethod
    def combine(profiles: Iterable["ClusterProfile"]) -> "ClusterProfile":
        """Element-wise sum — the 'average preferred cluster of the whole
        chain' of section 3.2 is the argmax of this combination."""
        summed: Optional[list] = None
        for profile in profiles:
            if summed is None:
                summed = list(profile.counts)
            else:
                if len(profile.counts) != len(summed):
                    raise WorkloadError("profiles span different cluster counts")
                for i, c in enumerate(profile.counts):
                    summed[i] += c
        if summed is None:
            raise WorkloadError("cannot combine zero profiles")
        return ClusterProfile(tuple(summed))


def profile_preferred_clusters(
    ddg: Ddg,
    trace: TraceLike,
    machine: MachineConfig,
    max_iterations: Optional[int] = None,
) -> Dict[int, ClusterProfile]:
    """Measure per-memory-instruction home-cluster histograms over a trace.

    Instructions created by transformations (replicated stores, copies)
    inherit no profile here; profiling runs on the pre-transformation graph
    exactly like the paper profiles the original program.
    """
    iterations = trace.num_iterations
    if max_iterations is not None:
        iterations = min(iterations, max_iterations)
    profiles: Dict[int, ClusterProfile] = {}
    for instr in ddg.memory_instructions():
        counts = [0] * machine.num_clusters
        for i in range(iterations):
            addr = trace.address(instr.iid, i)
            counts[machine.home_cluster(addr)] += 1
        profiles[instr.iid] = ClusterProfile(tuple(counts))
    return profiles


def preferred_cluster_map(
    profiles: Dict[int, ClusterProfile]
) -> Dict[int, int]:
    """Collapse profiles to their argmax cluster."""
    return {iid: profile.preferred for iid, profile in profiles.items()}
