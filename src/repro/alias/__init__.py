"""Memory model: symbolic references, disambiguation and profiling.

The paper's compiler (IMPACT) attaches memory-dependence edges to the loop
DDG after memory disambiguation, and computes each memory instruction's
*preferred cluster* by profiling.  This subpackage provides both:

* :class:`~repro.alias.memref.MemRef` — a symbolic description of what a
  memory instruction touches (space, offset, stride, width, pattern);
* :func:`~repro.alias.disambiguation.add_memory_dependences` — conservative
  insertion of MF/MA/MO edges between may-aliasing instructions;
* :func:`~repro.alias.profiles.profile_preferred_clusters` — per-instruction
  home-cluster histograms measured on a (profile) address trace.
"""

from repro.alias.memref import AccessPattern, MemRef
from repro.alias.disambiguation import (
    add_memory_dependences,
    may_alias,
    remove_memory_dependences,
)
from repro.alias.profiles import ClusterProfile, profile_preferred_clusters

__all__ = [
    "AccessPattern",
    "MemRef",
    "add_memory_dependences",
    "may_alias",
    "remove_memory_dependences",
    "ClusterProfile",
    "profile_preferred_clusters",
]
