"""Conservative memory disambiguation.

The paper (section 3.1) assumes the compiler runs memory disambiguation
and then adds MF/MA/MO edges between every pair of memory instructions it
cannot prove independent — "the compiler always stays on the conservative
side".  This module reproduces that pass over :class:`MemRef` symbolism,
per memory space:

* affine, unambiguous references are analyzed precisely: equal-stride
  pairs get exact dependence distances (interval overlap per iteration
  delta); stride-mismatched pairs that may overlap are serialized
  pairwise;
* an *ambiguous or indirect* reference may touch anything in its space,
  so it is fully serialized against every other reference of the space
  (and against itself across iterations — the ``d=1`` self MO edges of
  the paper's Figure 3): a distance-0 edge in program order plus a
  distance-1 back edge per pair.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.alias.memref import AccessPattern, MemRef
from repro.ir.ddg import Ddg
from repro.ir.edges import DepKind
from repro.ir.instructions import Instruction

#: Loop-carried dependence distances farther than this are dropped: they do
#: not constrain a modulo schedule in practice and only bloat the graph.
DEFAULT_HORIZON = 4


def _dep_kind(src: Instruction, dst: Instruction) -> Optional[DepKind]:
    """Memory-dependence kind for an ordered pair, or None for load-load."""
    if src.is_store and dst.is_load:
        return DepKind.MF
    if src.is_load and dst.is_store:
        return DepKind.MA
    if src.is_store and dst.is_store:
        return DepKind.MO
    return None


def _analyzable(mem: MemRef) -> bool:
    return mem.pattern is AccessPattern.AFFINE and not mem.ambiguous


def may_alias(a: MemRef, b: MemRef) -> bool:
    """Whether the compiler must assume ``a`` and ``b`` can touch the same
    bytes in *some* pair of iterations."""
    if a.space != b.space:
        return False
    if not (_analyzable(a) and _analyzable(b)):
        return True
    if a.stride == b.stride:
        return bool(_affine_distances(a, b, DEFAULT_HORIZON))
    # Different strides: the GCD test can still prove independence.
    return _strides_may_overlap(a, b)


def _affine_distances(a: MemRef, b: MemRef, horizon: int) -> Optional[List[int]]:
    """Iteration deltas ``k`` at which equal-stride affine references
    collide: the ``a`` access of iteration ``j + k`` overlaps the ``b``
    access of iteration ``j``.  ``None`` when not analyzable."""
    if not (_analyzable(a) and _analyzable(b)):
        return None
    if a.stride != b.stride:
        return None
    s = a.stride
    delta = b.offset - a.offset  # address(b) - address(a) at equal iteration
    if s == 0:
        # Invariant references that overlap do so in *every* pair of
        # iterations: dependences at all distances (capped at the horizon;
        # farther instances are ordered transitively through the store's
        # d=1 self output dependence).
        if _intervals_overlap(0, a.width, delta, b.width):
            return list(range(-horizon, horizon + 1))
        return []
    hits = []
    for k in range(-horizon, horizon + 1):
        if _intervals_overlap(s * k, a.width, delta, b.width):
            hits.append(k)
    return hits


def _strides_may_overlap(a: MemRef, b: MemRef) -> bool:
    """GCD (ZIV/SIV-style) independence test for stride-mismatched affine
    references: the address gap changes by multiples of gcd(s1, s2), so an
    overlap requires the initial gap to be congruent to a value inside the
    overlap window."""
    s1, s2 = abs(a.stride), abs(b.stride)
    delta = b.offset - a.offset
    if s1 == 0 and s2 == 0:
        return _intervals_overlap(0, a.width, delta, b.width)
    g = math.gcd(s1, s2)
    return any((delta - t) % g == 0 for t in range(-a.width + 1, b.width))


def _intervals_overlap(a_start: int, a_width: int, b_start: int, b_width: int) -> bool:
    return a_start < b_start + b_width and b_start < a_start + a_width


# ----------------------------------------------------------------------
def add_memory_dependences(ddg: Ddg, horizon: int = DEFAULT_HORIZON) -> int:
    """Insert MF/MA/MO edges between every may-aliasing pair.

    Returns the number of edges added.
    """
    by_space: Dict[str, List[Instruction]] = {}
    for instr in sorted(ddg.memory_instructions(), key=lambda v: (v.seq, v.iid)):
        by_space.setdefault(instr.mem.space, []).append(instr)

    added = 0
    for ops in by_space.values():
        precise = [op for op in ops if _analyzable(op.mem)]
        fuzzy = [op for op in ops if not _analyzable(op.mem)]
        added += _affine_group(ddg, precise, horizon)
        added += _ambiguous_pairs(ddg, fuzzy, ops)
    return added


def _ambiguous_pairs(
    ddg: Ddg, fuzzy: List[Instruction], ops: List[Instruction]
) -> int:
    """Serialize every ambiguous/indirect reference against its space.

    Each pair involving at least one unanalyzable member gets the
    conservative treatment: a distance-0 edge in program order and a
    distance-1 back edge.  Ambiguous stores also get the distance-1 self
    output dependence (they may re-touch their own bytes next iteration).
    """
    if not fuzzy:
        return 0
    added = 0

    def add(src: Instruction, dst: Instruction, kind: Optional[DepKind],
            d: int) -> None:
        nonlocal added
        if kind is None:
            return
        if ddg.add_edge(src.iid, dst.iid, kind, d) is not None:
            added += 1

    for amb in fuzzy:
        if amb.is_store:
            add(amb, amb, DepKind.MO, 1)
    seen_pairs = set()
    for amb in fuzzy:
        for other in ops:
            if other.iid == amb.iid:
                continue
            pair = (min(amb.iid, other.iid), max(amb.iid, other.iid))
            if pair in seen_pairs:
                continue
            seen_pairs.add(pair)
            if not (amb.is_store or other.is_store):
                continue
            first, second = (
                (amb, other) if (amb.seq, amb.iid) < (other.seq, other.iid)
                else (other, amb)
            )
            add(first, second, _dep_kind(first, second), 0)
            add(second, first, _dep_kind(second, first), 1)
    return added


def _affine_group(ddg: Ddg, ops: List[Instruction], horizon: int) -> int:
    """Precise pairwise analysis of an all-affine, unambiguous group."""
    added = 0
    for i, first in enumerate(ops):
        if first.is_store and first.mem.stride == 0:
            # An invariant store re-touches its location every iteration.
            if ddg.add_edge(first.iid, first.iid, DepKind.MO, 1) is not None:
                added += 1
        for second in ops[i + 1 :]:
            if not (first.is_store or second.is_store):
                continue
            added += _add_pair_edges(ddg, first, second, horizon)
    return added


def _add_pair_edges(
    ddg: Ddg, first: Instruction, second: Instruction, horizon: int
) -> int:
    """Dependence edges for one affine ordered pair (program order:
    ``first`` before ``second``)."""
    added = 0
    distances = _affine_distances(first.mem, second.mem, horizon)
    if distances is None:
        if not _strides_may_overlap(first.mem, second.mem):
            return 0  # GCD test proved the streams disjoint
        # Stride mismatch that may collide: conservative serialization.
        kind_fwd = _dep_kind(first, second)
        kind_bwd = _dep_kind(second, first)
        if kind_fwd is not None:
            if ddg.add_edge(first.iid, second.iid, kind_fwd, 0) is not None:
                added += 1
        if kind_bwd is not None:
            if ddg.add_edge(second.iid, first.iid, kind_bwd, 1) is not None:
                added += 1
        return added

    for k in distances:
        # k = iter(first) - iter(second) at collision time: instance
        # ``first @ (j + k)`` touches the bytes of ``second @ j``.
        if k < 0:
            # first's colliding instance lives in an *earlier* iteration:
            # first happens first; second depends on it at distance -k.
            kind = _dep_kind(first, second)
            if kind is not None and -k <= horizon:
                if ddg.add_edge(first.iid, second.iid, kind, -k) is not None:
                    added += 1
        elif k == 0:
            kind = _dep_kind(first, second)
            if kind is not None:
                if ddg.add_edge(first.iid, second.iid, kind, 0) is not None:
                    added += 1
        else:
            # second's instance comes first in time: first of iteration
            # j + k depends on second of iteration j, distance k.
            kind = _dep_kind(second, first)
            if kind is not None and k <= horizon:
                if ddg.add_edge(second.iid, first.iid, kind, k) is not None:
                    added += 1
    return added


def remove_memory_dependences(ddg: Ddg, only_ambiguous: bool = False) -> int:
    """Strip memory-dependence edges (MF/MA/MO) from the graph.

    With ``only_ambiguous=True`` only edges whose endpoints involve an
    ``ambiguous`` reference are removed — the graph-level effect of code
    specialization (section 6): the run-time check proves the ambiguous
    pairs disjoint, so the aggressive loop version drops exactly those
    edges.  Returns the number of edges removed.
    """

    def doomed(edge) -> bool:
        if not edge.is_memory:
            return False
        if not only_ambiguous:
            return True
        src = ddg.node(edge.src)
        dst = ddg.node(edge.dst)
        return bool(
            (src.mem is not None and src.mem.ambiguous)
            or (dst.mem is not None and dst.mem.ambiguous)
        )

    return len(ddg.remove_edges(doomed))
