"""Seeded synthetic kernel generator.

Emits valid loop :class:`~repro.ir.ddg.Ddg` bodies across six
access-pattern families, each parameterized by size, memory-op fraction,
recurrence depth and may-alias density:

* ``stream``  — strided input/output streams with rng-varied strides;
* ``stencil`` — in-place neighborhood updates (genuine short memory
  chains through the line buffer);
* ``reduce``  — load + multiply + carried accumulation, with the
  recurrence knob setting the carried chain depth;
* ``gather``  — indirect gather (and optionally scatter) over a table,
  the unanalyzable-access stressor;
* ``chase``   — a pointer-chase: each load's address register is produced
  by the previous load, the latency-bound serial pattern;
* ``alias``   — engineered must/may/no-alias load-store pairs over one
  buffer at controlled densities.

Scenario identity is the *name*: every generation knob is encoded in it
(``scn-<family>-n<size>-m<mem%>-r<rec>-a<alias%>-s<seed>``), and the
generator is a pure function of the name, so any process — a CLI, a
``multiprocessing`` sweep worker, a warm-cache re-run — reconstructs the
identical benchmark from the string alone.  Determinism is testable via
:meth:`Ddg.fingerprint`.

Address discipline: within a scenario every affine offset and stride is a
multiple of the (uniform) access width, so two same-space accesses either
coincide exactly or are disjoint — the granularity the
:class:`~repro.sim.coherence.CoherenceChecker` tracks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.alias.memref import AccessPattern, MemRef
from repro.errors import WorkloadError
from repro.ir.builder import DdgBuilder
from repro.ir.ddg import Ddg
from repro.scenarios.rng import ScenarioRng, stable_hash64
from repro.workloads.catalog import Benchmark, LoopSpec

#: The access-pattern families the generator knows, in canonical order.
FAMILIES: Tuple[str, ...] = (
    "stream", "stencil", "reduce", "gather", "chase", "alias",
)

#: Every scenario benchmark name starts with this.
SCENARIO_PREFIX = "scn-"

_NAME_RE = re.compile(
    r"^scn-(?P<family>[a-z]+)-n(?P<size>\d+)-m(?P<mem>\d+)"
    r"-r(?P<rec>\d+)-a(?P<alias>\d+)-s(?P<seed>\d+)$"
)


def is_scenario_name(name: str) -> bool:
    return name.startswith(SCENARIO_PREFIX)


@dataclass(frozen=True)
class ScenarioParams:
    """The complete recipe for one synthetic scenario.

    ``size`` is the target instruction count per iteration, ``mem_pct``
    the target percentage of memory operations, ``recurrence`` the
    loop-carried dependence depth knob, ``alias_pct`` the density of
    may-alias (ambiguous) references, and ``seed`` decorrelates scenarios
    that share every other knob.
    """

    family: str
    size: int = 24
    mem_pct: int = 40
    recurrence: int = 1
    alias_pct: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.family not in FAMILIES:
            raise WorkloadError(
                f"unknown scenario family {self.family!r}; known: {FAMILIES}"
            )
        if not 4 <= self.size <= 96:
            raise WorkloadError(f"scenario size {self.size} outside [4, 96]")
        if not 5 <= self.mem_pct <= 80:
            raise WorkloadError(
                f"memory fraction {self.mem_pct}% outside [5, 80]"
            )
        if not 0 <= self.recurrence <= 4:
            raise WorkloadError(
                f"recurrence depth {self.recurrence} outside [0, 4]"
            )
        if not 0 <= self.alias_pct <= 100:
            raise WorkloadError(
                f"alias density {self.alias_pct}% outside [0, 100]"
            )
        if self.seed < 0:
            raise WorkloadError("scenario seed must be non-negative")

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return (
            f"scn-{self.family}-n{self.size}-m{self.mem_pct}"
            f"-r{self.recurrence}-a{self.alias_pct}-s{self.seed}"
        )

    @classmethod
    def parse(cls, name: str) -> "ScenarioParams":
        match = _NAME_RE.match(name)
        if match is None:
            raise WorkloadError(
                f"malformed scenario name {name!r}; expected "
                f"'scn-<family>-n<size>-m<mem%>-r<rec>-a<alias%>-s<seed>'"
            )
        return cls(
            family=match.group("family"),
            size=int(match.group("size")),
            mem_pct=int(match.group("mem")),
            recurrence=int(match.group("rec")),
            alias_pct=int(match.group("alias")),
            seed=int(match.group("seed")),
        )


# ----------------------------------------------------------------------
# Shared building blocks
# ----------------------------------------------------------------------
def _add_agen(b: DdgBuilder) -> str:
    b.ialu("i", b.carried("i", 1), name="agen")
    return "i"


def _add_filler(b: DdgBuilder, count: int, seed_reg: str) -> None:
    """Alternating INT/FP compute in short dependent runs of four (the
    same idiom as the calibrated catalog kernels)."""
    prev = seed_reg
    for j in range(count):
        dest = f"f{j}"
        if j % 2:
            b.falu(dest, prev, name=f"fill{j}")
        else:
            b.ialu(dest, prev, name=f"fill{j}")
        prev = dest if (j + 1) % 4 else seed_reg


def _combine(b: DdgBuilder, regs: Sequence[str], prefix: str = "v") -> str:
    """Fold registers into one value with alternating INT/FP ops."""
    value = regs[0]
    for d, reg in enumerate(regs[1:]):
        dest = f"{prefix}{d}"
        if d % 2:
            b.falu(dest, value, reg, name=f"{prefix}op{d}")
        else:
            b.ialu(dest, value, reg, name=f"{prefix}op{d}")
        value = dest
    return value


def _carried_chain(b: DdgBuilder, value: str, depth: int, distance: int = 1,
                   reg: str = "acc") -> str:
    """A loop-carried dependent chain of ``depth`` FP ops — the recurrence
    cycle that bounds the achievable II."""
    if depth <= 0:
        return value
    link = value
    for j in range(depth):
        dest = reg if j == depth - 1 else f"{reg}c{j}"
        if j == 0:
            b.falu(dest, link, b.carried(reg, distance), name=f"{reg}{j}")
        else:
            b.falu(dest, link, name=f"{reg}{j}")
        link = dest
    return reg


# ----------------------------------------------------------------------
# Family builders.  Each emits its memory skeleton plus minimal compute
# and returns the live value register filler compute hangs off.
# ----------------------------------------------------------------------
def _build_stream(b: DdgBuilder, rng: ScenarioRng, params: ScenarioParams,
                  width: int, mem_target: int, agen: str) -> str:
    n_stores = max(1, mem_target // 4)
    n_loads = max(1, mem_target - n_stores)
    may_alias = params.alias_pct / 100.0
    regs: List[str] = []
    for k in range(n_loads):
        shared = rng.chance(may_alias)
        mem = MemRef(
            "shared" if shared else f"src{k}",
            offset=width * rng.randint(0, 15),
            stride=width * rng.randint(1, 4),
            width=width,
            ambiguous=shared and rng.chance(0.5),
        )
        b.load(f"in{k}", agen, mem=mem, name=f"ld{k}")
        regs.append(f"in{k}")
    value = _combine(b, regs)
    value = _carried_chain(b, value, params.recurrence)
    for k in range(n_stores):
        shared = rng.chance(may_alias)
        mem = MemRef(
            "shared" if shared else f"dst{k}",
            offset=width * rng.randint(0, 15),
            stride=width * rng.randint(1, 4),
            width=width,
            ambiguous=shared and rng.chance(0.5),
        )
        b.store(value, agen, mem=mem, name=f"st{k}")
    return value


def _build_stencil(b: DdgBuilder, rng: ScenarioRng, params: ScenarioParams,
                   width: int, mem_target: int, agen: str) -> str:
    taps = min(max(2, mem_target - 1), 9)
    write_pos = rng.randint(0, max(0, taps - 2))
    regs: List[str] = []
    for k in range(taps):
        mem = MemRef(
            "line",
            offset=k * width,
            stride=width,
            width=width,
            ambiguous=k == 0 and rng.chance(params.alias_pct / 100.0),
        )
        b.load(f"a{k}", agen, mem=mem, name=f"tap{k}")
        regs.append(f"a{k}")
    value = _combine(b, regs, prefix="s")
    value = _carried_chain(b, value, params.recurrence)
    b.store(value, agen,
            mem=MemRef("line", offset=write_pos * width, stride=width,
                       width=width),
            name="stc")
    return value


def _build_reduce(b: DdgBuilder, rng: ScenarioRng, params: ScenarioParams,
                  width: int, mem_target: int, agen: str) -> str:
    regs: List[str] = []
    for k in range(mem_target):
        mem = MemRef(f"vec{k}", offset=width * rng.randint(0, 7),
                     stride=width * rng.randint(1, 2), width=width)
        b.load(f"in{k}", agen, mem=mem, name=f"ld{k}")
        regs.append(f"in{k}")
    if len(regs) > 1:
        b.fmul("prod", regs[0], regs[1], name="mul")
        value = _combine(b, ["prod"] + regs[2:])
    else:
        value = regs[0]
    return _carried_chain(b, value, max(1, params.recurrence))


def _build_gather(b: DdgBuilder, rng: ScenarioRng, params: ScenarioParams,
                  width: int, mem_target: int, agen: str) -> str:
    spread = width * (2 ** rng.randint(4, 8))
    b.load("idx", agen,
           mem=MemRef("indices", stride=width, width=width), name="ldidx")
    n_refs = max(1, mem_target - 1)
    n_scatter = n_refs // 3
    value = "idx"
    for k in range(n_refs - n_scatter):
        mem = MemRef("table", width=width, pattern=AccessPattern.INDIRECT,
                     spread=spread, salt=k)
        b.load(f"t{k}", "idx", mem=mem, name=f"gat{k}")
        b.ialu(f"c{k}", f"t{k}", value, name=f"use{k}")
        value = f"c{k}"
    value = _carried_chain(b, value, params.recurrence)
    for k in range(n_scatter):
        # Scatters into the gathered table form read-modify-write chains;
        # at low alias density they land in a separate output table and
        # leave the gather chain-free.
        shared = rng.chance(params.alias_pct / 100.0)
        mem = MemRef("table" if shared else "outtab", width=width,
                     pattern=AccessPattern.INDIRECT, spread=spread,
                     salt=100 + k)
        b.store(value, "idx", mem=mem, name=f"sca{k}")
    return value


def _build_chase(b: DdgBuilder, rng: ScenarioRng, params: ScenarioParams,
                 width: int, mem_target: int, agen: str) -> str:
    depth = min(max(2, mem_target), 12)
    spread = width * (2 ** rng.randint(5, 9))
    carry = max(1, params.recurrence)
    prev: Union[str, object] = b.carried(f"p{depth - 1}", carry)
    for k in range(depth):
        mem = MemRef("heap", width=width, pattern=AccessPattern.INDIRECT,
                     spread=spread, salt=k,
                     ambiguous=rng.chance(params.alias_pct / 100.0))
        b.load(f"p{k}", prev, mem=mem, name=f"hop{k}")
        prev = f"p{k}"
    value = b.ialu("vp", f"p{depth - 1}", agen, name="usep").dest
    if rng.chance(0.3 + params.alias_pct / 200.0):
        # A store back into the chased heap serializes against every hop.
        b.store(value, agen,
                mem=MemRef("heap", width=width,
                           pattern=AccessPattern.INDIRECT, spread=spread,
                           salt=depth),
                name="stheap")
    else:
        b.store(value, agen,
                mem=MemRef("out", stride=width, width=width), name="stout")
    return value


def _build_alias(b: DdgBuilder, rng: ScenarioRng, params: ScenarioParams,
                 width: int, mem_target: int, agen: str) -> str:
    """Load/store pairs over one buffer with engineered alias relations.

    Each pair is *hot* (an invariant shared scalar updated and re-read
    every iteration — the paper's Figure 2 hazard), *must* (store feeds
    the load ``d`` iterations later: exact flow dependence), *may* (the
    store is an ambiguous pointer the compiler serializes against the
    space), or *no* (the pair runs in disjoint word lanes) — densities
    set by ``alias_pct``.
    """
    n_pairs = max(1, mem_target // 2)
    lane = 64 * width  # pairs live far apart: inter-pair streams disjoint
    may_alias = params.alias_pct / 100.0
    value = agen
    for k in range(n_pairs):
        base = k * lane
        roll = rng.random()
        if rng.chance(0.25):
            # hot variable: invariant store + load of one shared scalar.
            # Free scheduling can split the pair across clusters, where
            # the store's bus transit races the load (stale reads).
            hot = MemRef("buf", offset=base, stride=0, width=width,
                         ambiguous=rng.chance(may_alias))
            b.store(value, agen, mem=hot, name=f"st{k}")
            b.load(f"in{k}", agen, mem=hot, name=f"ld{k}")
            value = b.ialu(f"v{k}", f"in{k}", value, name=f"use{k}").dest
            continue
        if roll < may_alias:
            stride = width * rng.choice((1, 2))
            load_mem = MemRef("buf", offset=base, stride=stride, width=width)
            store_mem = MemRef("buf", offset=base, stride=stride,
                               width=width, ambiguous=True)
        elif rng.chance(0.5):
            # must-alias: the store of iteration j writes the address the
            # load of iteration j + d reads (flow dependence, distance d).
            stride = width * rng.choice((1, 2))
            d = rng.randint(1, 3)
            load_mem = MemRef("buf", offset=base, stride=stride, width=width)
            store_mem = MemRef("buf", offset=base + d * stride, stride=stride,
                               width=width)
        else:
            # no-alias: same stride, offsets one word apart — the streams
            # interleave through disjoint word lanes and never collide.
            stride = 2 * width
            load_mem = MemRef("buf", offset=base, stride=stride, width=width)
            store_mem = MemRef("buf", offset=base + width, stride=stride,
                               width=width)
        b.load(f"in{k}", agen, mem=load_mem, name=f"ld{k}")
        value = b.ialu(f"v{k}", f"in{k}", value, name=f"use{k}").dest
        b.store(value, agen, mem=store_mem, name=f"st{k}")
    return _carried_chain(b, value, params.recurrence)


_BUILDERS: Dict[str, Callable[..., str]] = {
    "stream": _build_stream,
    "stencil": _build_stencil,
    "reduce": _build_reduce,
    "gather": _build_gather,
    "chase": _build_chase,
    "alias": _build_alias,
}


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def _scenario_width(rng: ScenarioRng) -> int:
    return rng.choice((2, 4, 4))  # words dominate, as in Table 1


def build_scenario_ddg(params: ScenarioParams) -> Ddg:
    """Deterministically build the loop DDG a scenario describes."""
    rng = ScenarioRng(stable_hash64(params.name))
    width = _scenario_width(rng)
    b = DdgBuilder(params.name)
    agen = _add_agen(b)
    mem_target = max(2, round(params.size * params.mem_pct / 100))
    value = _BUILDERS[params.family](b, rng, params, width, mem_target, agen)
    _add_filler(b, max(0, params.size - len(b)), value)
    return b.build()


def _scenario_iterations(rng: ScenarioRng) -> int:
    return 96 + 32 * rng.randint(0, 4)


@lru_cache(maxsize=1024)
def _benchmark_by_name(name: str) -> Benchmark:
    params = ScenarioParams.parse(name)
    rng = ScenarioRng(stable_hash64(params.name))
    width = _scenario_width(rng)
    ddg = build_scenario_ddg(params)
    meta = rng.fork("meta")
    return Benchmark(
        name=params.name,
        interleave_bytes=width,
        main_width=width,
        main_width_share=1.0,
        profile_input=f"synthetic:{params.seed}:profile",
        execute_input=f"synthetic:{params.seed}:execute",
        loops=(LoopSpec(f"{params.name}.loop", ddg,
                        _scenario_iterations(meta)),),
        profile_seed=meta.randint(0, 2**31 - 1),
        execute_seed=meta.randint(0, 2**31 - 1),
        evaluated=False,
    )


def scenario_benchmark(spec: Union[str, ScenarioParams]) -> Benchmark:
    """The :class:`Benchmark` a scenario name (or params) describes.

    Pure function of the name — any process reconstructs the identical
    benchmark, which is what makes scenario specs safe to ship through
    ``RunSpec`` fields, cache keys and ``multiprocessing`` workers.
    """
    name = spec.name if isinstance(spec, ScenarioParams) else spec
    return _benchmark_by_name(name)


def sample_scenarios(
    seed: int,
    count: int,
    families: Optional[Sequence[str]] = None,
) -> List[ScenarioParams]:
    """``count`` scenarios drawn round-robin over ``families``.

    Deterministic in ``(seed, index)``: growing ``count`` extends the
    sample without perturbing earlier entries, so a 200-scenario sweep
    shares its first 50 scenarios (and their cached results) with a
    50-scenario one.
    """
    chosen = tuple(families) if families else FAMILIES
    for family in chosen:
        if family not in FAMILIES:
            raise WorkloadError(
                f"unknown scenario family {family!r}; known: {FAMILIES}"
            )
    if count < 0:
        raise WorkloadError("negative scenario count")
    out: List[ScenarioParams] = []
    for index in range(count):
        rng = ScenarioRng(stable_hash64(f"sample/{seed}/{index}"))
        out.append(ScenarioParams(
            family=chosen[index % len(chosen)],
            size=4 * rng.randint(3, 10),
            mem_pct=rng.choice((20, 30, 40, 50, 60)),
            recurrence=rng.randint(0, 3),
            alias_pct=rng.choice((0, 10, 25, 50)),
            seed=rng.randint(0, 999_999),
        ))
    return out


#: One canonical representative per family — these are the names the
#: workload catalog lists behind ``benchmark_names(evaluated_only=False)``.
DEFAULT_SCENARIOS: Tuple[str, ...] = tuple(
    ScenarioParams(family=family).name for family in FAMILIES
)
