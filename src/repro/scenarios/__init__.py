"""`repro.scenarios` — seeded synthetic workloads, machine spaces and the
differential sweep harness.

The paper's evaluation exercises the coherence/scheduling machinery on a
handful of fixed Mediabench loop models; this subsystem turns the
reproduction into a general stress/exploration engine:

* :mod:`repro.scenarios.generator` — a deterministic, seeded kernel
  generator emitting valid loop DDGs across six access-pattern families
  (strided streams, stencils, reductions, indirect gather/scatter,
  pointer-chase, engineered alias mixes).  A scenario's *name* encodes
  every knob, so any process rebuilds the identical benchmark from the
  string — names plug straight into ``RunSpec``/``Plan`` and the
  workload catalog resolves them on the fly;
* :mod:`repro.scenarios.machines` — machine-space grids (cluster counts,
  bus count/latency, cache geometry) as self-describing ``gen-...``
  config names layered on :mod:`repro.arch.config`;
* :mod:`repro.scenarios.sweep` — the differential harness: every
  scenario runs under free/MDC/DDGT coherence, CoherenceChecker verdicts
  are cross-checked (violations allowed only under free scheduling) and
  per-family IPC/II/traffic summaries are aggregated.

Every generated scenario doubles as a fuzz case for the compiler and
simulator; the CLI front end is ``repro scenarios {generate,sweep,report}``.
"""

from repro.scenarios.generator import (
    DEFAULT_SCENARIOS,
    FAMILIES,
    SCENARIO_PREFIX,
    ScenarioParams,
    build_scenario_ddg,
    is_scenario_name,
    sample_scenarios,
    scenario_benchmark,
)
from repro.scenarios.machines import (
    BUS_GRID,
    CACHE_GRID,
    CLUSTER_GRID,
    DEFAULT_MACHINE_SPACE,
    machine_grid,
    resolve_machines,
    sample_machines,
)
from repro.scenarios.rng import ScenarioRng, stable_hash64
from repro.scenarios.sweep import (
    DIFFERENTIAL_VARIANTS,
    FamilySummary,
    SweepResult,
    run_sweep,
    scenario_family,
    summarize,
    sweep_plan,
)

__all__ = [
    "BUS_GRID",
    "CACHE_GRID",
    "CLUSTER_GRID",
    "DEFAULT_MACHINE_SPACE",
    "DEFAULT_SCENARIOS",
    "DIFFERENTIAL_VARIANTS",
    "FAMILIES",
    "FamilySummary",
    "SCENARIO_PREFIX",
    "ScenarioParams",
    "ScenarioRng",
    "SweepResult",
    "build_scenario_ddg",
    "is_scenario_name",
    "machine_grid",
    "resolve_machines",
    "run_sweep",
    "sample_machines",
    "sample_scenarios",
    "scenario_benchmark",
    "scenario_family",
    "stable_hash64",
    "summarize",
    "sweep_plan",
]
