"""Seeded, portable randomness for scenario generation.

:class:`ScenarioRng` is a SplitMix64 counter stream: the same seed yields
the same draw sequence on every platform and Python version, which is the
contract the generator's determinism guarantees (same scenario name =>
byte-identical DDG) rest on.  ``random.Random`` is deliberately avoided —
its distribution helpers have changed across CPython versions.
"""

from __future__ import annotations

import hashlib
from typing import Sequence, TypeVar

from repro.errors import WorkloadError
from repro.workloads.traces import splitmix64

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15

T = TypeVar("T")


def stable_hash64(text: str) -> int:
    """A platform-independent 64-bit hash of a string (unlike ``hash``,
    which is salted per process)."""
    digest = hashlib.sha256(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class ScenarioRng:
    """Deterministic pseudo-random draw stream."""

    def __init__(self, seed: int) -> None:
        self._state = seed & _MASK64

    def next_u64(self) -> int:
        # splitmix64 adds the golden-ratio increment before finalizing,
        # so emitting from the pre-advance state yields the same stream
        # as finalize(state + GOLDEN) with a post-advance emit.
        out = splitmix64(self._state)
        self._state = (self._state + _GOLDEN) & _MASK64
        return out

    # ------------------------------------------------------------------
    def randint(self, lo: int, hi: int) -> int:
        """Uniform integer in the inclusive range [lo, hi]."""
        if hi < lo:
            raise WorkloadError(f"empty randint range [{lo}, {hi}]")
        return lo + self.next_u64() % (hi - lo + 1)

    def choice(self, seq: Sequence[T]) -> T:
        if not seq:
            raise WorkloadError("choice from an empty sequence")
        return seq[self.next_u64() % len(seq)]

    def random(self) -> float:
        """Uniform float in [0, 1)."""
        return self.next_u64() / 2**64

    def chance(self, probability: float) -> bool:
        """True with the given probability."""
        return self.random() < probability

    def fork(self, label: str) -> "ScenarioRng":
        """An independent child stream keyed by ``label`` — draws from the
        child do not perturb the parent sequence."""
        return ScenarioRng(self.next_u64() ^ stable_hash64(label))
