"""The differential sweep harness.

Runs every scenario under the three coherence modes — free (``none``),
MDC and DDGT — over a machine space, through the ordinary
:class:`~repro.api.spec.Plan` / :class:`~repro.api.runner.Runner` path
(so results land in the shared :class:`~repro.api.store.ResultStore`,
multiprocessing/warm-cache behaviour comes for free, and the runner's
front-end grouping lets all six variants of a scenario share one
unroll+disambiguate+profile compilation via the
:class:`~repro.api.artifacts.ArtifactStore`), then
cross-checks the :class:`~repro.sim.coherence.CoherenceChecker` verdicts:
**coherence violations are allowed only under free scheduling**.  A
violation reported under MDC or DDGT is a bug in the coherence machinery
(or the generator found a pathological input) and is surfaced as an
anomaly.  Per-family IPC/II/traffic summaries aggregate the rest.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.api.records import RunRecord
from repro.api.runner import Runner
from repro.api.spec import Plan
from repro.errors import WorkloadError
from repro.obs import metrics, trace
from repro.scenarios.generator import (
    FAMILIES,
    ScenarioParams,
    sample_scenarios,
)
from repro.scenarios.machines import resolve_machines

#: The differential grid, free modes first: the full coherence x
#: heuristic cross.  Both heuristics matter — PrefClus tends to
#: co-locate accesses with their home cluster, while MinComs chases
#: register traffic and is the placement that actually provokes
#: coherence races — so MDC and DDGT must be violation-free under both,
#: not just under the gentle one.
DIFFERENTIAL_VARIANTS: Tuple[str, ...] = (
    "none/prefclus", "none/mincoms",
    "mdc/prefclus", "mdc/mincoms",
    "ddgt/prefclus", "ddgt/mincoms",
)


def _is_free(variant: str) -> bool:
    return variant.startswith("none/")


@dataclass(frozen=True)
class FamilySummary:
    """Aggregate metrics of one (family, variant, model) cell of a sweep."""

    family: str
    variant: str
    runs: int
    mean_ii: float
    mean_ipc: float
    mean_local_hit: float
    mean_bus_per_iter: float
    violations: int
    model: str = "snooping"
    #: Of ``runs``, how many were freshly simulated (vs store hits).
    simulated: int = 0
    #: Cells of this (family, variant, model) group the surrogate budget
    #: pruned — never measured, never aggregated into the means.
    skipped: int = 0
    #: Where this row's numbers came from: ``store`` / ``simulated`` /
    #: ``mixed``; ``skipped`` when the whole group was pruned.
    source: str = "simulated"

    def row(self) -> List[object]:
        return [
            self.family, self.variant, self.runs, self.mean_ii,
            self.mean_ipc, self.mean_local_hit, self.mean_bus_per_iter,
            self.violations, self.model, self.simulated, self.skipped,
            self.source,
        ]


SUMMARY_COLUMNS = (
    "family", "variant", "runs", "mean_ii", "mean_ipc", "mean_local_hit",
    "mean_bus_per_iter", "violations", "model", "simulated", "skipped",
    "source",
)


@dataclass
class SweepResult:
    """Everything one differential sweep produced."""

    scenarios: List[str]
    machines: List[str]
    variants: Tuple[str, ...]
    plan: Plan
    records: List[RunRecord]
    summaries: List[FamilySummary] = field(default_factory=list)
    #: Human-readable description of every differential-check failure.
    anomalies: List[str] = field(default_factory=list)
    #: (benchmark, variant, machine, model) -> violation count, free mode
    #: only — the violations the optimistic baseline is *expected* to show.
    free_violations: Dict[Tuple[str, str, str, str], int] = field(
        default_factory=dict
    )
    #: Specs a surrogate budget pruned (empty for exhaustive sweeps).
    skipped_specs: List = field(default_factory=list)
    #: The refit surrogate after folding realized results back in
    #: (active learning); ``None`` for unguided sweeps.
    surrogate: Optional[object] = None

    @property
    def ok(self) -> bool:
        """True when violations appeared only under free scheduling."""
        return not self.anomalies

    @property
    def simulated_runs(self) -> int:
        return sum(1 for r in self.records if r.source == "simulated")

    @property
    def store_runs(self) -> int:
        return sum(1 for r in self.records if r.source == "store")

    @property
    def skipped_runs(self) -> int:
        return len(self.skipped_specs)

    # ------------------------------------------------------------------
    def render(self) -> str:
        # Provenance columns appear in the rendered table only for
        # guided sweeps: an unguided rerun against a warm store must
        # stay byte-identical to the cold run (the CSV always carries
        # them — that is where trajectory diffs and audits look).
        guided = bool(self.skipped_specs)
        columns = list(
            SUMMARY_COLUMNS if guided else SUMMARY_COLUMNS[:-3]
        )
        lines = [format_table(
            columns,
            [s.row() if guided else s.row()[:-3]
             for s in self.summaries],
            title=(
                f"differential sweep: {len(self.scenarios)} scenarios x "
                f"{len(self.machines)} machines x {len(self.variants)} "
                f"variants = {len(self.plan)} runs"
            ),
        )]
        if self.skipped_specs:
            lines.append(
                f"surrogate-guided: {self.simulated_runs} simulated, "
                f"{self.store_runs} from store, {self.skipped_runs} "
                f"skipped by budget (all reported numbers are measured; "
                f"skipped cells carry no data)"
            )
        free_total = sum(self.free_violations.values())
        flagged = sum(1 for count in self.free_violations.values() if count)
        lines.append(
            f"free-scheduling violations: {free_total} "
            f"(in {flagged} of {len(self.free_violations)} free runs) — "
            f"expected under the optimistic baseline"
        )
        if self.anomalies:
            lines.append("DIFFERENTIAL CHECK FAILED:")
            lines.extend(f"  {msg}" for msg in self.anomalies)
        else:
            lines.append(
                "differential check passed: no violations under MDC/DDGT"
            )
        return "\n".join(lines)

    def to_csv(self) -> str:
        out = io.StringIO()
        writer = csv.writer(out, lineterminator="\n")
        writer.writerow(SUMMARY_COLUMNS)
        for s in self.summaries:
            writer.writerow([
                s.family, s.variant, s.runs, f"{s.mean_ii:.3f}",
                f"{s.mean_ipc:.4f}", f"{s.mean_local_hit:.4f}",
                f"{s.mean_bus_per_iter:.3f}", s.violations, s.model,
                s.simulated, s.skipped, s.source,
            ])
        return out.getvalue()


# ----------------------------------------------------------------------
def scenario_family(benchmark_name: str) -> str:
    return ScenarioParams.parse(benchmark_name).family


def sweep_plan(
    scenarios: Sequence[str],
    machines: Optional[Sequence[str]] = None,
    variants: Sequence[str] = DIFFERENTIAL_VARIANTS,
    scale: Optional[float] = None,
    models: Sequence[str] = ("snooping",),
) -> Plan:
    """The full scenario x machine x variant x model grid as a ``Plan``."""
    for name in scenarios:
        ScenarioParams.parse(name)  # fail fast on malformed names
    return Plan.grid(
        benchmarks=list(scenarios),
        variants=list(variants),
        machines=resolve_machines(machines),
        scale=scale,
        models=list(models),
    )


def summarize(records: Sequence[RunRecord],
              skipped: Sequence = ()) -> SweepResult:
    """Differential cross-check + per-family aggregation of sweep records.

    Standalone so callers holding warm-store records (e.g. the ``report``
    CLI verb) can re-aggregate without re-running anything.  ``skipped``
    is the list of specs a surrogate budget pruned: they contribute only
    to the per-cell ``skipped`` counts (never to the measured means) and
    a cell with no measured runs at all is reported with
    ``source="skipped"``.
    """
    grouped: Dict[Tuple[str, str, str], List[RunRecord]] = {}
    skipped_counts: Dict[Tuple[str, str, str], int] = {}
    for spec in skipped:
        key = (scenario_family(spec.benchmark), spec.variant, spec.model)
        skipped_counts[key] = skipped_counts.get(key, 0) + 1
    anomalies: List[str] = []
    free_violations: Dict[Tuple[str, str, str, str], int] = {}
    for record in records:
        family = scenario_family(record.benchmark)
        cell_key = (family, record.variant, record.model)
        grouped.setdefault(cell_key, []).append(record)
        if _is_free(record.variant):
            key = (
                record.benchmark, record.variant, record.machine,
                record.model,
            )
            free_violations[key] = record.violations
        elif record.violations:
            coherence, _, heuristic = record.variant.partition("/")
            # Echo the memory model so the repro command replays the
            # exact run; omitted for the default to keep the command
            # (and the pinned tests) stable for snooping sweeps.
            model_arg = (
                "" if record.model == "snooping"
                else f" --model {record.model}"
            )
            anomalies.append(
                f"scenario={record.benchmark} coherence={coherence} "
                f"heuristic={heuristic} machine={record.machine}: "
                f"{record.violations} coherence violations (only free "
                f"scheduling may violate) — reproduce with: "
                f"repro run {record.benchmark} -v {record.variant} "
                f"--machine {record.machine} --scale {record.scale:g}"
                f"{model_arg}"
            )

    models = sorted(
        {record.model for record in records}
        | {model for (_, _, model) in skipped_counts}
    )
    summaries: List[FamilySummary] = []
    for family in FAMILIES:
        for variant in DIFFERENTIAL_VARIANTS:
            for model in models:
                key = (family, variant, model)
                cell = grouped.pop(key, None)
                skips = skipped_counts.pop(key, 0)
                if cell or skips:
                    summaries.append(
                        _summarize_cell(family, variant, model,
                                        cell or [], skips)
                    )
    # Cells outside the canonical family/variant grid (custom variants).
    leftovers = sorted(set(grouped) | set(skipped_counts))
    for key in leftovers:
        family, variant, model = key
        summaries.append(_summarize_cell(
            family, variant, model,
            grouped.get(key, []), skipped_counts.get(key, 0),
        ))

    scenarios = sorted({r.benchmark for r in records})
    machines = sorted({r.machine for r in records})
    variants = tuple(sorted({r.variant for r in records}))
    return SweepResult(
        scenarios=scenarios,
        machines=machines,
        variants=variants,
        plan=Plan(),
        records=list(records),
        summaries=summaries,
        anomalies=anomalies,
        free_violations=free_violations,
        skipped_specs=list(skipped),
    )


def _cell_source(store_n: int, simulated_n: int, skipped_n: int) -> str:
    kinds = [
        kind
        for kind, n in (
            ("store", store_n),
            ("simulated", simulated_n),
            ("skipped", skipped_n),
        )
        if n
    ]
    if not kinds:
        return "simulated"
    return kinds[0] if len(kinds) == 1 else "mixed"


def _summarize_cell(
    family: str, variant: str, model: str, cell: List[RunRecord],
    skipped: int = 0,
) -> FamilySummary:
    iis: List[int] = []
    ipcs: List[float] = []
    hits: List[float] = []
    bus_rates: List[float] = []
    violations = 0
    for record in cell:
        stats = record.merged_stats()
        cycles = stats.total_cycles
        iters = sum(loop.kernel_iterations for loop in record.loops)
        iis.extend(loop.ii for loop in record.loops)
        if cycles:
            ipcs.append(stats.issued_ops / cycles)
        if stats.total_accesses:
            hits.append(stats.local_hit_ratio)
        if iters:
            bus_rates.append(stats.bus_transfers / iters)
        violations += record.violations
    simulated = sum(1 for record in cell if record.source == "simulated")
    store_hits = len(cell) - simulated
    return FamilySummary(
        family=family,
        variant=variant,
        runs=len(cell),
        mean_ii=_mean(iis),
        mean_ipc=_mean(ipcs),
        mean_local_hit=_mean(hits),
        mean_bus_per_iter=_mean(bus_rates),
        violations=violations,
        model=model,
        simulated=simulated,
        skipped=skipped,
        source=_cell_source(store_hits, simulated, skipped),
    )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


# ----------------------------------------------------------------------
def run_sweep(
    scenarios: Optional[Sequence[str]] = None,
    *,
    seed: int = 0,
    count: int = 50,
    families: Optional[Sequence[str]] = None,
    machines: Optional[Sequence[str]] = None,
    variants: Sequence[str] = DIFFERENTIAL_VARIANTS,
    scale: Optional[float] = None,
    models: Sequence[str] = ("snooping",),
    runner: Optional[Runner] = None,
    journal=None,
    progress=None,
    engine: str = "events",
    batch_size: Optional[int] = None,
    surrogate=None,
    budget: Optional[int] = None,
    explore_frac: float = 0.1,
    surrogate_seed: int = 0,
) -> SweepResult:
    """Sample (or take) scenarios, run the differential grid, cross-check.

    With an explicit ``scenarios`` list the sampler is bypassed; otherwise
    ``count`` scenarios are drawn from ``seed`` over ``families``.

    The grid executes through the runner's streaming core: ``progress``
    (``(done, total, record)``) fires as each run completes, and a
    ``journal`` (:class:`~repro.api.journal.RunJournal`) checkpoints the
    sweep so a killed run resumes — against the on-disk store — without
    re-executing completed groups.

    ``engine`` picks the simulation engine for store misses (records are
    engine-independent, so mixed-engine sweeps stay coherent);
    ``engine="batch"`` co-simulates misses in chunks of ``batch_size``.
    Both configure the internally-built runner; an explicitly passed
    ``runner`` is reconfigured only when they are non-default.

    With a ``surrogate`` (:class:`~repro.surrogate.SurrogateModel`) and a
    ``budget``, the sweep becomes frontier-guided: store hits are always
    kept (they are free), and of the remaining cells only the
    ``budget``-most-interesting by predicted IPC/II/traffic — plus a
    seeded ``explore_frac`` random slice — are simulated.  Pruned specs
    land in ``SweepResult.skipped_specs`` and per-cell ``skipped``
    counts; every reported number still comes from real simulation, and
    the realized results are folded back into the returned
    ``SweepResult.surrogate`` (active learning).
    """
    if scenarios is None:
        scenarios = [
            p.name for p in sample_scenarios(seed, count, families)
        ]
    if not scenarios:
        raise WorkloadError("differential sweep needs at least one scenario")
    if runner is None:
        runner = Runner(store=None, engine=engine, batch_size=batch_size)
    elif engine != "events" or batch_size is not None:
        # Route this sweep's misses through the requested engine; reuse
        # Runner's own validation.
        Runner(engine=engine, batch_size=batch_size)
        runner.engine = engine
        if batch_size is not None:
            runner.batch_size = batch_size
    plan = sweep_plan(scenarios, machines, variants, scale, models)

    skipped_specs: List = []
    if surrogate is not None:
        if budget is None:
            raise WorkloadError(
                "surrogate-guided sweep needs a simulation budget"
            )
        plan, skipped_specs = _guide_plan(
            plan, runner, surrogate, budget, explore_frac, surrogate_seed
        )

    with trace.span("sweep", cat="sweep", scenarios=len(scenarios),
                    runs=len(plan)):
        records = runner.run(plan, journal=journal, progress=progress)
        result = summarize(records, skipped=skipped_specs)
    metrics.inc("sweep.runs", len(records))
    metrics.inc("sweep.skipped", len(skipped_specs))
    if result.anomalies:
        metrics.inc("sweep.anomalies", len(result.anomalies))
    result.plan = plan
    result.scenarios = list(scenarios)

    if surrogate is not None:
        result.surrogate = _refit_surrogate(surrogate, records)
    return result


def _guide_plan(
    plan: Plan, runner: Runner, surrogate, budget: int,
    explore_frac: float, surrogate_seed: int,
) -> Tuple[Plan, List]:
    """Partition the full plan into the guided plan + the pruned specs.

    Store hits ride along for free regardless of the budget — the budget
    only rations *fresh simulations* — and plan order is preserved so the
    runner's front-end grouping still shares compilations.
    """
    from repro.surrogate.guide import select_frontier

    store = runner.store
    hits = [
        spec for spec in plan.specs if store is not None
        and spec.content_hash in store
    ]
    hit_keys = {spec.content_hash for spec in hits}
    misses = [
        spec for spec in plan.specs if spec.content_hash not in hit_keys
    ]
    if budget >= len(misses):
        return plan, []
    selection = select_frontier(
        misses, surrogate, budget,
        explore_frac=explore_frac, seed=surrogate_seed,
    )
    chosen_keys = hit_keys | {
        spec.content_hash for spec in selection.chosen
    }
    guided = [s for s in plan.specs if s.content_hash in chosen_keys]
    skipped = [s for s in plan.specs if s.content_hash not in chosen_keys]
    return Plan(tuple(guided)), skipped


def _refit_surrogate(surrogate, records: Sequence[RunRecord]):
    """Fold freshly simulated ground truth back into the model (active
    learning); returns the original model when nothing new was measured
    or the merged training set is still too small."""
    from repro.surrogate.train import rows_from_records

    fresh = rows_from_records(
        [record for record in records if record.source == "simulated"]
    )
    if not fresh:
        return surrogate
    try:
        return surrogate.refit_with(fresh)
    except WorkloadError:
        return surrogate
