"""Machine-space generation.

Produces :class:`~repro.arch.config.MachineConfig` variants as
*self-describing names* (see :func:`repro.arch.config.encode_config_name`)
— cluster-count scaling, bus count/latency grids and cache-geometry
sweeps layered on the Table-2 baseline.  Names, not objects, are the
interchange format: they slot straight into ``RunSpec.machine`` /
``Plan.grid(machines=...)`` and survive process boundaries and cache
keys unchanged.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.arch.config import (
    BusConfig,
    CacheConfig,
    MachineConfig,
    NextLevelConfig,
    encode_config_name,
    named_config,
)
from repro.errors import ConfigError
from repro.scenarios.rng import ScenarioRng, stable_hash64

#: (count, latency) pairs for bus grids: the balanced buses plus the
#: paper's section-4.2 halved variant.
BUS_GRID: Tuple[Tuple[int, int], ...] = ((4, 2), (2, 4))

#: (module_bytes, block_bytes, ways) cache geometries around Table 2.
CACHE_GRID: Tuple[Tuple[int, int, int], ...] = (
    (2048, 32, 2),   # Table 2 baseline
    (4096, 32, 2),   # double capacity
    (2048, 64, 2),   # longer blocks (bigger subblocks per cluster)
    (1024, 32, 1),   # small direct-mapped
)

#: Cluster counts the generator sweeps (the paper fixes 4).
CLUSTER_GRID: Tuple[int, ...] = (2, 4, 8)


def machine_grid(
    clusters: Sequence[int] = CLUSTER_GRID,
    mem_buses: Sequence[Tuple[int, int]] = BUS_GRID,
    reg_buses: Sequence[Tuple[int, int]] = ((4, 2),),
    caches: Sequence[Tuple[int, int, int]] = (CACHE_GRID[0],),
    next_levels: Sequence[Tuple[int, int]] = ((10, 4),),
) -> List[str]:
    """Cartesian machine-space sweep, returned as generated config names.

    Geometrically invalid combinations (e.g. a block too short to give
    every cluster a whole interleave unit) are skipped rather than
    raised, so broad grids stay usable.
    """
    names: List[str] = []
    for n in clusters:
        for module_bytes, block_bytes, ways in caches:
            for mb_count, mb_lat in mem_buses:
                for rb_count, rb_lat in reg_buses:
                    for nl_lat, nl_ports in next_levels:
                        try:
                            config = MachineConfig(
                                name="candidate",
                                num_clusters=n,
                                cache=CacheConfig(
                                    module_bytes=module_bytes,
                                    block_bytes=block_bytes,
                                    associativity=ways,
                                ),
                                memory_buses=BusConfig(mb_count, mb_lat),
                                register_buses=BusConfig(rb_count, rb_lat),
                                next_level=NextLevelConfig(
                                    ports=nl_ports, latency=nl_lat
                                ),
                            )
                        except ConfigError:
                            continue
                        names.append(encode_config_name(config))
    return names


def sample_machines(seed: int, count: int) -> List[str]:
    """``count`` machine names drawn uniformly from the full grid space,
    deterministically in ``(seed, index)``."""
    space = machine_grid(caches=CACHE_GRID)
    rng = ScenarioRng(stable_hash64(f"machines/{seed}"))
    return [space[rng.next_u64() % len(space)] for _ in range(count)]


def resolve_machines(names: Optional[Sequence[str]]) -> List[str]:
    """Validate machine names (named or generated) and return them as a
    list; ``None`` means the Table-2 baseline alone."""
    if not names:
        return ["baseline"]
    for name in names:
        named_config(name)  # raises ConfigError on malformed names
    return list(names)


#: The compact default space differential sweeps run on: the paper's
#: machine plus a narrow and a wide cluster variant.
DEFAULT_MACHINE_SPACE: Tuple[str, ...] = (
    "baseline",
    "gen-c2-mb4x2-rb4x2-cm2048b32a2-nl10p4",
    "gen-c8-mb4x2-rb4x2-cm2048b32a2-nl10p4",
)
