"""Instruction definitions for the loop IR.

Instructions are immutable records; all structural information (who depends
on whom) lives in the :class:`~repro.ir.ddg.Ddg`.  Register names carried by
``dest``/``srcs`` are symbolic and used by the builder to derive register
flow edges and by examples for pretty-printing — the scheduler and simulator
consume only the graph.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Tuple

from repro.arch.config import FuKind
from repro.errors import GraphError

if TYPE_CHECKING:  # avoid a cycle: repro.alias imports repro.ir at runtime
    from repro.alias.memref import MemRef


class Opcode(enum.Enum):
    """Operation kinds understood by the scheduler and the simulator."""

    LOAD = "load"
    STORE = "store"
    IALU = "ialu"
    IMUL = "imul"
    FALU = "falu"
    FMUL = "fmul"
    FDIV = "fdiv"
    #: explicit inter-cluster register copy inserted by the scheduler
    COPY = "copy"
    #: fake consumer created by load-store synchronization (section 3.3);
    #: behaves like a 1-cycle integer op whose result is discarded
    FAKE = "fake"


#: Opcodes that access the data cache.
MEMORY_OPCODES = frozenset({Opcode.LOAD, Opcode.STORE})

#: Mapping from opcode to the functional-unit class it occupies.  COPY ops
#: occupy a register bus instead of a functional unit.
FU_CLASS = {
    Opcode.LOAD: FuKind.MEM,
    Opcode.STORE: FuKind.MEM,
    Opcode.IALU: FuKind.INT,
    Opcode.IMUL: FuKind.INT,
    Opcode.FAKE: FuKind.INT,
    Opcode.FALU: FuKind.FP,
    Opcode.FMUL: FuKind.FP,
    Opcode.FDIV: FuKind.FP,
}

#: Mnemonic used to look up fixed latencies in the machine config.
LATENCY_MNEMONIC = {
    Opcode.STORE: "store",
    Opcode.IALU: "ialu",
    Opcode.IMUL: "imul",
    Opcode.FALU: "falu",
    Opcode.FMUL: "fmul",
    Opcode.FDIV: "fdiv",
    Opcode.FAKE: "ialu",
}


@dataclass(frozen=True)
class Instruction:
    """One operation of the loop body.

    Attributes
    ----------
    iid:
        Graph-unique id, assigned by the :class:`~repro.ir.ddg.Ddg`.
    opcode:
        Operation kind.
    seq:
        Sequential-program-order index.  Replicated store instances share
        the ``seq`` of their original (they are the same store logically),
        which is what the coherence checker orders accesses by.
    dest / srcs:
        Symbolic register names (purely informational).
    mem:
        The symbolic memory reference for LOAD/STORE, ``None`` otherwise.
    origin:
        For instructions materialized by a transformation (replicated store
        instances, unroll copies, inserted COPYs, fake consumers): the iid
        of the instruction they were derived from.
    required_cluster:
        Hard cluster placement constraint, used for replicated store
        instances (one instance per cluster).  ``None`` means the cluster
        assignment heuristics are free to choose.
    replica_group:
        For stores materialized by store replication (section 3.3): the iid
        of the original store; the original itself carries its own iid.
        At execution, an instance whose cluster is not the home cluster of
        the computed address is nullified.  ``None`` for ordinary stores.
    name:
        Optional human-readable label (e.g. ``"n3"`` in the paper's
        Figure 3 example).
    """

    iid: int
    opcode: Opcode
    seq: int
    dest: Optional[str] = None
    srcs: Tuple[str, ...] = field(default_factory=tuple)
    mem: Optional["MemRef"] = None
    origin: Optional[int] = None
    required_cluster: Optional[int] = None
    replica_group: Optional[int] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.opcode in MEMORY_OPCODES and self.mem is None:
            raise GraphError(f"{self.opcode.value} instruction requires a MemRef")
        if self.opcode not in MEMORY_OPCODES and self.mem is not None:
            raise GraphError(f"{self.opcode.value} instruction cannot carry a MemRef")
        if self.opcode is Opcode.STORE and self.dest is not None:
            raise GraphError("store instructions do not define a register")

    # ------------------------------------------------------------------
    @property
    def is_load(self) -> bool:
        return self.opcode is Opcode.LOAD

    @property
    def is_store(self) -> bool:
        return self.opcode is Opcode.STORE

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    @property
    def is_copy(self) -> bool:
        return self.opcode is Opcode.COPY

    @property
    def fu_kind(self) -> Optional[FuKind]:
        """Functional-unit class occupied, or ``None`` for COPY ops."""
        return FU_CLASS.get(self.opcode)

    @property
    def label(self) -> str:
        return self.name if self.name is not None else f"i{self.iid}"

    def pinned_to(self, cluster: int) -> "Instruction":
        """A copy of this instruction with a hard cluster constraint."""
        return replace(self, required_cluster=cluster)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = [f"{self.label}: {self.opcode.value}"]
        if self.dest:
            parts.append(self.dest + " =")
        if self.srcs:
            parts.append(", ".join(self.srcs))
        if self.mem is not None:
            parts.append(f"[{self.mem.space}+{self.mem.offset}:{self.mem.stride}]")
        return " ".join(parts)
