"""The Data Dependence Graph container.

A :class:`Ddg` owns the instructions of one loop body and the typed,
distance-annotated dependence edges between them.  It is the single source
of structural truth: transformations (unrolling, MDC, DDGT), the modulo
scheduler and the analyses all operate on this class.

Mutation discipline: nodes are immutable; the graph supports adding nodes,
adding/removing edges, and replacing a node with an updated copy (same
iid).  Transformations that need a scratch copy call :meth:`Ddg.clone`.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import replace
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import GraphError
from repro.ir.edges import DepKind, Edge, MEMORY_DEP_KINDS
from repro.ir.instructions import Instruction, Opcode


def _mem_to_dict(mem) -> Optional[Dict[str, object]]:
    if mem is None:
        return None
    return {
        "space": mem.space,
        "offset": mem.offset,
        "stride": mem.stride,
        "width": mem.width,
        "pattern": mem.pattern.value,
        "spread": mem.spread,
        "ambiguous": mem.ambiguous,
        "salt": mem.salt,
    }


def _mem_from_dict(data) :
    if data is None:
        return None
    from repro.alias.memref import AccessPattern, MemRef

    return MemRef(
        space=data["space"],
        offset=data["offset"],
        stride=data["stride"],
        width=data["width"],
        pattern=AccessPattern(data["pattern"]),
        spread=data["spread"],
        ambiguous=data["ambiguous"],
        salt=data["salt"],
    )


def _instruction_to_dict(instr: Instruction) -> Dict[str, object]:
    return {
        "iid": instr.iid,
        "opcode": instr.opcode.value,
        "seq": instr.seq,
        "dest": instr.dest,
        "srcs": list(instr.srcs),
        "mem": _mem_to_dict(instr.mem),
        "origin": instr.origin,
        "required_cluster": instr.required_cluster,
        "replica_group": instr.replica_group,
        "name": instr.name,
    }


def _instruction_from_dict(data: Dict[str, object]) -> Instruction:
    return Instruction(
        iid=data["iid"],
        opcode=Opcode(data["opcode"]),
        seq=data["seq"],
        dest=data["dest"],
        srcs=tuple(data["srcs"]),
        mem=_mem_from_dict(data["mem"]),
        origin=data["origin"],
        required_cluster=data["required_cluster"],
        replica_group=data["replica_group"],
        name=data["name"],
    )


class Ddg:
    """A loop-body data dependence graph."""

    def __init__(self, name: str = "loop") -> None:
        self.name = name
        self._nodes: Dict[int, Instruction] = {}
        self._succs: Dict[int, List[Edge]] = {}
        self._preds: Dict[int, List[Edge]] = {}
        self._next_iid = 0
        self._next_seq = 0

    # ------------------------------------------------------------------
    # Node management
    # ------------------------------------------------------------------
    def add_instruction(
        self,
        opcode: Opcode,
        *,
        dest: Optional[str] = None,
        srcs: Tuple[str, ...] = (),
        mem=None,
        origin: Optional[int] = None,
        required_cluster: Optional[int] = None,
        replica_group: Optional[int] = None,
        name: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> Instruction:
        """Create and insert a new instruction, allocating its iid.

        ``seq`` defaults to the next sequential position; transformations
        that materialize instructions standing for an existing one (store
        replication) pass the original's ``seq`` explicitly.
        """
        iid = self._next_iid
        self._next_iid += 1
        if seq is None:
            seq = self._next_seq
        self._next_seq = max(self._next_seq, seq + 1)
        instr = Instruction(
            iid=iid,
            opcode=opcode,
            seq=seq,
            dest=dest,
            srcs=tuple(srcs),
            mem=mem,
            origin=origin,
            required_cluster=required_cluster,
            replica_group=replica_group,
            name=name,
        )
        self._nodes[iid] = instr
        self._succs[iid] = []
        self._preds[iid] = []
        return instr

    def insert(self, instr: Instruction) -> Instruction:
        """Insert a fully-formed instruction (iid must be fresh)."""
        if instr.iid in self._nodes:
            raise GraphError(f"duplicate iid {instr.iid}")
        self._nodes[instr.iid] = instr
        self._succs[instr.iid] = []
        self._preds[instr.iid] = []
        self._next_iid = max(self._next_iid, instr.iid + 1)
        self._next_seq = max(self._next_seq, instr.seq + 1)
        return instr

    def replace_instruction(self, instr: Instruction) -> None:
        """Swap in an updated copy of an existing instruction (same iid)."""
        if instr.iid not in self._nodes:
            raise GraphError(f"unknown iid {instr.iid}")
        self._nodes[instr.iid] = instr

    def node(self, iid: int) -> Instruction:
        try:
            return self._nodes[iid]
        except KeyError:
            raise GraphError(f"unknown iid {iid}") from None

    def has_node(self, iid: int) -> bool:
        return iid in self._nodes

    def __contains__(self, iid: int) -> bool:
        return iid in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._nodes.values())

    @property
    def instructions(self) -> List[Instruction]:
        """Instructions in insertion order."""
        return list(self._nodes.values())

    def in_program_order(self) -> List[Instruction]:
        """Instructions sorted by sequential program order (ties by iid)."""
        return sorted(self._nodes.values(), key=lambda v: (v.seq, v.iid))

    def memory_instructions(self) -> List[Instruction]:
        return [v for v in self._nodes.values() if v.is_memory]

    def loads(self) -> List[Instruction]:
        return [v for v in self._nodes.values() if v.is_load]

    def stores(self) -> List[Instruction]:
        return [v for v in self._nodes.values() if v.is_store]

    # ------------------------------------------------------------------
    # Edge management
    # ------------------------------------------------------------------
    def add_edge(
        self, src: int, dst: int, kind: DepKind, distance: int = 0
    ) -> Optional[Edge]:
        """Add a dependence edge; duplicate edges are silently skipped.

        Returns the edge, or ``None`` when an identical edge already exists.
        """
        if src not in self._nodes:
            raise GraphError(f"edge source {src} not in graph")
        if dst not in self._nodes:
            raise GraphError(f"edge target {dst} not in graph")
        edge = Edge(src, dst, kind, distance)
        if edge in self._succs[src]:
            return None
        self._succs[src].append(edge)
        self._preds[dst].append(edge)
        return edge

    def remove_edge(self, edge: Edge) -> None:
        try:
            self._succs[edge.src].remove(edge)
            self._preds[edge.dst].remove(edge)
        except (KeyError, ValueError):
            raise GraphError(f"edge not in graph: {edge}") from None

    def remove_edges(self, predicate: Callable[[Edge], bool]) -> List[Edge]:
        """Remove and return every edge matching ``predicate``."""
        removed = [e for e in self.edges() if predicate(e)]
        for edge in removed:
            self.remove_edge(edge)
        return removed

    def edges(self) -> List[Edge]:
        return [e for edges in self._succs.values() for e in edges]

    def succs(self, iid: int) -> List[Edge]:
        """Outgoing edges of ``iid``."""
        try:
            return list(self._succs[iid])
        except KeyError:
            raise GraphError(f"unknown iid {iid}") from None

    def preds(self, iid: int) -> List[Edge]:
        """Incoming edges of ``iid``."""
        try:
            return list(self._preds[iid])
        except KeyError:
            raise GraphError(f"unknown iid {iid}") from None

    def memory_edges(self) -> List[Edge]:
        return [e for e in self.edges() if e.kind in MEMORY_DEP_KINDS]

    def consumers(self, iid: int) -> List[Instruction]:
        """Instructions consuming the register value defined by ``iid``
        (targets of outgoing RF edges)."""
        return [
            self._nodes[e.dst] for e in self._succs[iid] if e.kind is DepKind.RF
        ]

    def has_edge(self, src: int, dst: int, kind: Optional[DepKind] = None) -> bool:
        return any(
            e.dst == dst and (kind is None or e.kind is kind)
            for e in self._succs.get(src, ())
        )

    # ------------------------------------------------------------------
    # Whole-graph helpers
    # ------------------------------------------------------------------
    def clone(self, name: Optional[str] = None) -> "Ddg":
        """An independent structural copy of this graph."""
        copy = Ddg(name if name is not None else self.name)
        copy._next_iid = self._next_iid
        copy._next_seq = self._next_seq
        copy._nodes = dict(self._nodes)
        copy._succs = {iid: list(edges) for iid, edges in self._succs.items()}
        copy._preds = {iid: list(edges) for iid, edges in self._preds.items()}
        return copy

    def pin_cluster(self, iid: int, cluster: int) -> None:
        """Constrain an instruction to a specific cluster (in place)."""
        self.replace_instruction(replace(self.node(iid), required_cluster=cluster))

    def relabel(self, iid: int, name: str) -> None:
        self.replace_instruction(replace(self.node(iid), name=name))

    def fingerprint(self) -> str:
        """Stable structural hash of the graph (nodes, edges, MemRefs).

        Identical across processes and interpreter versions, so generators
        can assert determinism (same parameters => same fingerprint) and
        sweep harnesses can key scenarios by structure.
        """
        def mem_fields(mem) -> Optional[List[object]]:
            if mem is None:
                return None
            return [
                mem.space, mem.offset, mem.stride, mem.width,
                mem.pattern.value, mem.spread, mem.ambiguous, mem.salt,
            ]

        nodes = [
            [
                instr.iid, instr.opcode.value, instr.seq, instr.dest,
                list(instr.srcs), mem_fields(instr.mem), instr.origin,
                instr.required_cluster, instr.replica_group, instr.name,
            ]
            for instr in self.in_program_order()
        ]
        edges = sorted(
            [e.src, e.dst, e.kind.value, e.distance] for e in self.edges()
        )
        payload = json.dumps([self.name, nodes, edges],
                             separators=(",", ":"))
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    # ------------------------------------------------------------------
    # Serialization (exact structural round trip)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-able snapshot reconstructing this graph *exactly*.

        Unlike :meth:`fingerprint` (which canonicalizes), the snapshot
        preserves node insertion order and per-node edge-list order, so a
        graph loaded with :meth:`from_dict` iterates identically to the
        original — deterministic passes (scheduling, cluster assignment)
        produce bit-identical results on either copy.  This is what lets
        compilation artifacts live in an on-disk store.
        """
        return {
            "name": self.name,
            "next_iid": self._next_iid,
            "next_seq": self._next_seq,
            "nodes": [
                _instruction_to_dict(instr) for instr in self._nodes.values()
            ],
            "succs": {
                str(iid): [[e.src, e.dst, e.kind.value, e.distance]
                           for e in edges]
                for iid, edges in self._succs.items()
            },
            "preds": {
                str(iid): [[e.src, e.dst, e.kind.value, e.distance]
                           for e in edges]
                for iid, edges in self._preds.items()
            },
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "Ddg":
        """Rebuild a graph serialized by :meth:`to_dict`."""
        ddg = cls(data["name"])
        for node_data in data["nodes"]:
            instr = _instruction_from_dict(node_data)
            if instr.iid in ddg._nodes:
                raise GraphError(f"duplicate iid {instr.iid} in snapshot")
            ddg._nodes[instr.iid] = instr
        def load_edges(serialized) -> Dict[int, List[Edge]]:
            # Key order must be node insertion order (as the live class
            # maintains it); JSON canonicalization may have string-sorted
            # the object keys, so rebuild from the nodes list instead.
            return {
                iid: [
                    Edge(src, dst, DepKind(kind), distance)
                    for src, dst, kind, distance in serialized.get(
                        str(iid), ())
                ]
                for iid in ddg._nodes
            }

        ddg._succs = load_edges(data["succs"])
        ddg._preds = load_edges(data["preds"])
        ddg._next_iid = data["next_iid"]
        ddg._next_seq = data["next_seq"]
        return ddg

    def opcode_histogram(self) -> Dict[Opcode, int]:
        hist: Dict[Opcode, int] = {}
        for instr in self._nodes.values():
            hist[instr.opcode] = hist.get(instr.opcode, 0) + 1
        return hist

    def describe(self) -> str:
        """Multi-line dump used by the DDG-transformation example."""
        lines = [f"DDG {self.name!r}: {len(self)} instructions"]
        for instr in self.in_program_order():
            lines.append(f"  {instr}")
            for edge in sorted(
                self._succs[instr.iid], key=lambda e: (e.dst, e.kind.value)
            ):
                dst = self._nodes[edge.dst]
                tail = f" d={edge.distance}" if edge.distance else ""
                lines.append(
                    f"    -{edge.kind.value}-> {dst.label}{tail}"
                )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Ddg({self.name!r}, nodes={len(self)}, edges={len(self.edges())})"
