"""Typed dependence edges.

The paper's DDG (section 3.1, Figure 3) distinguishes:

* ``RF`` — register flow: the destination consumes a register value the
  source produces;
* ``MF`` — memory flow: store → load that may read the stored value;
* ``MA`` — memory anti: load → store that may overwrite the loaded value;
* ``MO`` — memory output: store → store to possibly the same location;
* ``SYNC`` — synchronization edge introduced by load-store synchronization
  (section 3.3): the target store may issue no earlier than the source
  consumer.

Every edge carries a ``distance``: the number of loop iterations the
dependence spans (``d`` in Figure 3).  An edge ``u -> v`` with distance
``d`` means instruction ``v`` of iteration ``i`` depends on instruction
``u`` of iteration ``i - d``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import GraphError


class DepKind(enum.Enum):
    RF = "RF"
    MF = "MF"
    MA = "MA"
    MO = "MO"
    SYNC = "SYNC"


#: Edge kinds that encode a memory-ordering requirement.
MEMORY_DEP_KINDS = frozenset({DepKind.MF, DepKind.MA, DepKind.MO})


@dataclass(frozen=True)
class Edge:
    """A dependence ``src -> dst`` of a given kind and loop-carried distance."""

    src: int
    dst: int
    kind: DepKind
    distance: int = 0

    def __post_init__(self) -> None:
        if self.distance < 0:
            raise GraphError("dependence distance cannot be negative")
        if self.src == self.dst and self.distance == 0:
            raise GraphError("zero-distance self dependence is impossible")

    @property
    def is_memory(self) -> bool:
        return self.kind in MEMORY_DEP_KINDS

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        tail = f" d={self.distance}" if self.distance else ""
        return f"{self.src} -{self.kind.value}-> {self.dst}{tail}"
