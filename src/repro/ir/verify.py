"""Structural validation of loop DDGs.

:func:`verify_ddg` checks the invariants every graph handed to the
scheduler must satisfy.  It raises :class:`~repro.errors.GraphError` with a
message naming the offending node/edge; transformations call it in their
tests (and the compilation pipeline calls it in between phases when
``check=True``).
"""

from __future__ import annotations

from typing import Optional

from repro.arch.config import MachineConfig
from repro.errors import GraphError
from repro.ir.ddg import Ddg
from repro.ir.edges import DepKind
from repro.ir.instructions import Opcode

#: (kind) -> (source must be, target must be); None = any opcode.
_MEMORY_EDGE_SHAPE = {
    DepKind.MF: (Opcode.STORE, Opcode.LOAD),
    DepKind.MA: (Opcode.LOAD, Opcode.STORE),
    DepKind.MO: (Opcode.STORE, Opcode.STORE),
}


def verify_ddg(ddg: Ddg, machine: Optional[MachineConfig] = None) -> None:
    """Validate graph structure; raise :class:`GraphError` when broken.

    Checks performed:

    * edge endpoints exist;
    * memory edges connect the right opcode pair (MF store->load,
      MA load->store, MO store->store);
    * SYNC edges target a store (section 3.3 creates only those);
    * memory edges with distance 0 respect sequential program order;
    * the distance-0 subgraph is acyclic (a zero-distance cycle can never
      be scheduled);
    * RF sources define a register, RF targets are not stores' duplicates
      of it (stores may consume, never produce);
    * ``required_cluster`` fits the machine (when one is provided).
    """
    for edge in ddg.edges():
        if not ddg.has_node(edge.src) or not ddg.has_node(edge.dst):
            raise GraphError(f"dangling edge {edge}")
        src = ddg.node(edge.src)
        dst = ddg.node(edge.dst)

        shape = _MEMORY_EDGE_SHAPE.get(edge.kind)
        if shape is not None:
            want_src, want_dst = shape
            if src.opcode is not want_src or dst.opcode is not want_dst:
                raise GraphError(
                    f"{edge.kind.value} edge must be "
                    f"{want_src.value}->{want_dst.value}, got "
                    f"{src.opcode.value}->{dst.opcode.value} ({edge})"
                )
            if edge.distance == 0 and src.seq >= dst.seq:
                raise GraphError(
                    f"zero-distance memory edge against program order: {edge}"
                )
        if edge.kind is DepKind.SYNC and not dst.is_store:
            raise GraphError(f"SYNC edge must target a store: {edge}")
        if edge.kind is DepKind.RF and src.dest is None:
            raise GraphError(
                f"RF edge from {src.label}, which defines no register"
            )

    _check_zero_distance_acyclic(ddg)

    if machine is not None:
        for instr in ddg:
            rc = instr.required_cluster
            if rc is not None and not 0 <= rc < machine.num_clusters:
                raise GraphError(
                    f"{instr.label} pinned to cluster {rc}, machine has "
                    f"{machine.num_clusters}"
                )


def _check_zero_distance_acyclic(ddg: Ddg) -> None:
    """Kahn's algorithm on the distance-0 subgraph."""
    indeg = {instr.iid: 0 for instr in ddg}
    for edge in ddg.edges():
        if edge.distance == 0:
            indeg[edge.dst] += 1
    ready = [iid for iid, d in indeg.items() if d == 0]
    seen = 0
    while ready:
        iid = ready.pop()
        seen += 1
        for edge in ddg.succs(iid):
            if edge.distance == 0:
                indeg[edge.dst] -= 1
                if indeg[edge.dst] == 0:
                    ready.append(edge.dst)
    if seen != len(ddg):
        cyclic = sorted(
            ddg.node(iid).label for iid, d in indeg.items() if d > 0
        )
        raise GraphError(
            "zero-distance dependence cycle through: " + ", ".join(cyclic)
        )
