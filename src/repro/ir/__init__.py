"""Loop intermediate representation: instructions, dependence edges, DDG.

The unit of compilation in this reproduction (as in the paper) is an
innermost-loop body represented as a Data Dependence Graph whose edges are
typed (register flow, memory flow/anti/output, synchronization) and carry a
loop-carried *distance*.
"""

from repro.ir.instructions import Instruction, Opcode
from repro.ir.edges import DepKind, Edge, MEMORY_DEP_KINDS
from repro.ir.ddg import Ddg
from repro.ir.builder import DdgBuilder
from repro.ir.unroll import unroll
from repro.ir.verify import verify_ddg

__all__ = [
    "Instruction",
    "Opcode",
    "DepKind",
    "Edge",
    "MEMORY_DEP_KINDS",
    "Ddg",
    "DdgBuilder",
    "unroll",
    "verify_ddg",
]
