"""Loop unrolling for memory locality.

The paper (section 2.2) unrolls loops so that the number of memory
instructions whose stride is a multiple of ``N x I`` (clusters times
interleave factor) is maximized: after unrolling by the number of clusters,
an access with stride equal to the interleave unit touches a single cluster
for the whole loop, so the cluster-assignment heuristics can make it local.

:func:`unroll` performs the graph-level transformation: every instruction
is copied ``factor`` times, affine memory references of copy ``k`` are
advanced by ``stride * k`` and have their stride scaled by ``factor``, and
loop-carried distances are re-normalized to the unrolled iteration space.

:func:`locality_unroll_factor` chooses the factor the paper's heuristic
implies for a given graph and machine.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.alias.memref import AccessPattern
from repro.arch.config import MachineConfig
from repro.errors import TransformError
from repro.ir.ddg import Ddg


def unroll(ddg: Ddg, factor: int) -> Ddg:
    """Return a new DDG unrolled ``factor`` times.

    An edge ``u -> v`` with distance ``d`` in the original loop becomes,
    for each copy ``k`` of ``v``, an edge from copy ``(k - d) mod factor``
    of ``u`` with distance ``(d - k + ((k - d) mod factor)) // factor``.
    """
    if factor < 1:
        raise TransformError(f"unroll factor must be >= 1, got {factor}")
    if factor == 1:
        return ddg.clone()

    out = Ddg(f"{ddg.name}@x{factor}")
    # copies[orig_iid][k] -> new iid of copy k
    copies: Dict[int, Tuple[int, ...]] = {}

    for instr in ddg.in_program_order():
        new_iids = []
        for k in range(factor):
            mem = None
            if instr.mem is not None:
                if instr.mem.pattern is AccessPattern.AFFINE:
                    mem = instr.mem.shifted(instr.mem.stride * k, factor)
                else:
                    from dataclasses import replace as _replace

                    mem = _replace(instr.mem, salt=instr.mem.salt + k)
            new = out.add_instruction(
                instr.opcode,
                dest=_suffixed(instr.dest, k),
                srcs=tuple(_suffixed(s, k) for s in instr.srcs),
                mem=mem,
                origin=instr.iid,
                required_cluster=instr.required_cluster,
                name=_suffixed(instr.label, k),
                seq=instr.seq * factor + k * len(ddg),
            )
            new_iids.append(new.iid)
        copies[instr.iid] = tuple(new_iids)

    # Re-normalize seq so that program order is: all copies of iteration 0,
    # then iteration 1, etc., preserving original order within a copy.
    _normalize_seq(ddg, out, copies, factor)

    for edge in ddg.edges():
        for k in range(factor):
            src_copy = (k - edge.distance) % factor
            new_distance = (edge.distance - k + src_copy) // factor
            out.add_edge(
                copies[edge.src][src_copy],
                copies[edge.dst][k],
                edge.kind,
                new_distance,
            )
    return out


def _suffixed(reg: Optional[str], k: int) -> Optional[str]:
    return None if reg is None else f"{reg}.{k}"


def _normalize_seq(
    ddg: Ddg, out: Ddg, copies: Dict[int, Tuple[int, ...]], factor: int
) -> None:
    """Assign sequential order: copy 0 of every instruction first (original
    body order), then copy 1, and so on — i.e. the unrolled body is the
    original body repeated ``factor`` times."""
    order = ddg.in_program_order()
    seq = 0
    for k in range(factor):
        for instr in order:
            new_iid = copies[instr.iid][k]
            current = out.node(new_iid)
            if current.seq != seq:
                from dataclasses import replace

                out.replace_instruction(replace(current, seq=seq))
            seq += 1


def locality_unroll_factor(
    ddg: Ddg, machine: MachineConfig, max_factor: int = 8
) -> int:
    """The unroll factor that maximizes stride-``N x I`` memory accesses.

    For each affine memory instruction with a non-zero stride ``s``, the
    smallest factor ``u`` with ``s * u % (N * I) == 0`` makes its unrolled
    copies single-cluster.  We return the factor (capped at ``max_factor``)
    that helps the largest number of memory instructions; 1 when no access
    benefits (e.g. all indirect).
    """
    target = machine.num_clusters * machine.interleave_bytes
    votes: Dict[int, int] = {}
    for instr in ddg.memory_instructions():
        mem = instr.mem
        if mem is None or mem.pattern is not AccessPattern.AFFINE:
            continue
        if mem.stride == 0:
            continue  # invariant: already single-cluster
        for u in range(1, max_factor + 1):
            if (mem.stride * u) % target == 0:
                votes[u] = votes.get(u, 0) + 1
                break
    if not votes:
        return 1
    # Most-voted factor; break ties toward the smaller (cheaper) factor.
    best = min(sorted(votes), key=lambda u: (-votes[u], u))
    return best
