"""A small DSL for constructing loop DDGs by hand.

The builder tracks register definitions so that register-flow edges are
derived from def-use relations automatically, including loop-carried uses
via :meth:`DdgBuilder.carried`:

    b = DdgBuilder("dot")
    a   = b.load("a_i", mem=MemRef("a", stride=4))
    x   = b.load("x_i", mem=MemRef("x", stride=4))
    p   = b.fmul("p", a, x)
    acc = b.falu("acc", p, b.carried("acc", distance=1))
    ddg = b.build()

Memory-dependence edges are *not* added by the builder; call
:func:`repro.alias.add_memory_dependences` (or add them explicitly) to
model the compiler's disambiguation pass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

from repro.errors import GraphError

if TYPE_CHECKING:  # runtime import would cycle through repro.alias
    from repro.alias.memref import MemRef
from repro.ir.ddg import Ddg
from repro.ir.edges import DepKind
from repro.ir.instructions import Instruction, Opcode


@dataclass(frozen=True)
class CarriedUse:
    """A use of ``reg`` defined ``distance`` iterations earlier."""

    reg: str
    distance: int


SrcSpec = Union[str, CarriedUse]


class DdgBuilder:
    """Incrementally build a :class:`~repro.ir.ddg.Ddg`."""

    def __init__(self, name: str = "loop") -> None:
        self._ddg = Ddg(name)
        self._defs: Dict[str, int] = {}
        #: (use_src, use_dst, distance) resolved at build() for forward
        #: references of loop-carried uses.
        self._pending: list[Tuple[str, int, int]] = []

    def __len__(self) -> int:
        """Instructions emitted so far (generators budget op counts)."""
        return len(self._ddg)

    # ------------------------------------------------------------------
    def carried(self, reg: str, distance: int = 1) -> CarriedUse:
        """Reference ``reg`` as defined ``distance`` iterations earlier."""
        if distance < 1:
            raise GraphError("carried uses need distance >= 1")
        return CarriedUse(reg, distance)

    # ------------------------------------------------------------------
    def _emit(
        self,
        opcode: Opcode,
        dest: Optional[str],
        srcs: Tuple[SrcSpec, ...],
        mem: Optional[MemRef] = None,
        name: Optional[str] = None,
    ) -> Instruction:
        src_names = tuple(
            s.reg if isinstance(s, CarriedUse) else s for s in srcs
        )
        instr = self._ddg.add_instruction(
            opcode, dest=dest, srcs=src_names, mem=mem, name=name
        )
        for src in srcs:
            if isinstance(src, CarriedUse):
                # Loop-carried: defer, the defining op may come later.
                self._pending.append((src.reg, instr.iid, src.distance))
            else:
                def_iid = self._defs.get(src)
                if def_iid is None:
                    raise GraphError(
                        f"use of undefined register {src!r} by {instr.label}"
                    )
                self._ddg.add_edge(def_iid, instr.iid, DepKind.RF, 0)
        if dest is not None:
            self._defs[dest] = instr.iid
        return instr

    # ------------------------------------------------------------------
    # Public emitters.  Each returns the created Instruction; the ``dest``
    # register name it defines can be used as a source in later emits.
    # ------------------------------------------------------------------
    def load(
        self,
        dest: str,
        *srcs: SrcSpec,
        mem: MemRef,
        name: Optional[str] = None,
    ) -> Instruction:
        return self._emit(Opcode.LOAD, dest, srcs, mem=mem, name=name)

    def store(
        self, *srcs: SrcSpec, mem: MemRef, name: Optional[str] = None
    ) -> Instruction:
        return self._emit(Opcode.STORE, None, srcs, mem=mem, name=name)

    def ialu(self, dest: str, *srcs: SrcSpec, name: Optional[str] = None):
        return self._emit(Opcode.IALU, dest, srcs, name=name)

    def imul(self, dest: str, *srcs: SrcSpec, name: Optional[str] = None):
        return self._emit(Opcode.IMUL, dest, srcs, name=name)

    def falu(self, dest: str, *srcs: SrcSpec, name: Optional[str] = None):
        return self._emit(Opcode.FALU, dest, srcs, name=name)

    def fmul(self, dest: str, *srcs: SrcSpec, name: Optional[str] = None):
        return self._emit(Opcode.FMUL, dest, srcs, name=name)

    def fdiv(self, dest: str, *srcs: SrcSpec, name: Optional[str] = None):
        return self._emit(Opcode.FDIV, dest, srcs, name=name)

    # ------------------------------------------------------------------
    def mem_dep(
        self,
        src: Instruction,
        dst: Instruction,
        kind: DepKind,
        distance: int = 0,
    ) -> None:
        """Explicitly add a memory-dependence edge (MF/MA/MO)."""
        if kind not in (DepKind.MF, DepKind.MA, DepKind.MO):
            raise GraphError(f"mem_dep expects a memory kind, got {kind}")
        self._ddg.add_edge(src.iid, dst.iid, kind, distance)

    def build(self) -> Ddg:
        """Resolve pending loop-carried uses and return the graph."""
        for reg, dst_iid, distance in self._pending:
            def_iid = self._defs.get(reg)
            if def_iid is None:
                raise GraphError(f"carried use of never-defined register {reg!r}")
            self._ddg.add_edge(def_iid, dst_iid, DepKind.RF, distance)
        self._pending.clear()
        return self._ddg
