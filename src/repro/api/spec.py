"""Declarative run specifications.

A :class:`RunSpec` names one unit of work — *compile every loop (or one
loop) of benchmark B under variant C/H on machine M, then simulate* —
without executing anything.  Specs are frozen, hashable, and carry a
stable *content hash* (:attr:`RunSpec.content_hash`) computed from the
spec fields plus a fingerprint of the fully-resolved machine
configuration, so two processes (or two interpreter versions) agree on
the cache key for the same work.

A :class:`Plan` is an ordered, de-duplicated sequence of specs with
grid/sweep constructors.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, Optional, Sequence, Tuple, Union

from repro.arch.config import MachineConfig, named_config, split_model_suffix
from repro.errors import ConfigError
from repro.hashing import digest, jsonable
from repro.sched.pipeline import CoherenceMode, Heuristic

#: Benchmarks on the figures' x-axes, in the paper's order.
EVALUATED: Tuple[str, ...] = (
    "epicdec", "g721dec", "g721enc", "gsmdec", "gsmenc", "jpegdec",
    "jpegenc", "mpeg2dec", "pegwitdec", "pegwitenc", "pgpdec", "pgpenc",
    "rasta",
)

#: Iterations used for preferred-cluster profiling (the profile data set).
PROFILE_ITERATIONS = 256


def default_scale() -> float:
    """Global iteration scale; override with ``REPRO_SCALE`` (e.g. 0.25
    for quick runs, 1.0 for the full published numbers).

    Raises :class:`~repro.errors.ConfigError` when ``REPRO_SCALE`` is not
    a positive finite number.
    """
    raw = os.environ.get("REPRO_SCALE", "0.5")
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"invalid REPRO_SCALE {raw!r}: not a number"
        ) from None
    if not math.isfinite(value) or value <= 0:
        raise ConfigError(
            f"invalid REPRO_SCALE {raw!r}: must be a positive finite number"
        )
    return value


@dataclass(frozen=True)
class Variant:
    """One (coherence solution, cluster heuristic) combination."""

    coherence: CoherenceMode
    heuristic: Heuristic

    @property
    def key(self) -> str:
        return f"{self.coherence.value}/{self.heuristic.value}"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        names = {CoherenceMode.NONE: "free", CoherenceMode.MDC: "MDC",
                 CoherenceMode.DDGT: "DDGT"}
        return f"{names[self.coherence]}({self.heuristic.value})"


FREE_PREF = Variant(CoherenceMode.NONE, Heuristic.PREFCLUS)
FREE_MIN = Variant(CoherenceMode.NONE, Heuristic.MINCOMS)
MDC_PREF = Variant(CoherenceMode.MDC, Heuristic.PREFCLUS)
MDC_MIN = Variant(CoherenceMode.MDC, Heuristic.MINCOMS)
DDGT_PREF = Variant(CoherenceMode.DDGT, Heuristic.PREFCLUS)
DDGT_MIN = Variant(CoherenceMode.DDGT, Heuristic.MINCOMS)

ALL_VARIANTS: Tuple[Variant, ...] = (
    FREE_PREF, FREE_MIN, MDC_PREF, MDC_MIN, DDGT_PREF, DDGT_MIN,
)

#: The four bars of Figures 7 and 9, in the paper's order.
FIGURE7_BARS: Tuple[Variant, ...] = (MDC_PREF, MDC_MIN, DDGT_PREF, DDGT_MIN)


def parse_variant(key: Union[str, Variant]) -> Variant:
    """Parse a ``"coherence/heuristic"`` key (e.g. ``"mdc/prefclus"``)."""
    if isinstance(key, Variant):
        return key
    parts = key.split("/")
    if len(parts) != 2:
        raise ConfigError(
            f"invalid variant {key!r}: expected 'coherence/heuristic' "
            f"(e.g. 'mdc/prefclus')"
        )
    try:
        coherence = CoherenceMode(parts[0])
    except ValueError:
        raise ConfigError(
            f"invalid coherence mode {parts[0]!r}; expected one of "
            f"{sorted(m.value for m in CoherenceMode)}"
        ) from None
    try:
        heuristic = Heuristic(parts[1])
    except ValueError:
        raise ConfigError(
            f"invalid heuristic {parts[1]!r}; expected one of "
            f"{sorted(h.value for h in Heuristic)}"
        ) from None
    return Variant(coherence, heuristic)


# ----------------------------------------------------------------------
# Canonical hashing helpers (shared discipline: repro.hashing)
# ----------------------------------------------------------------------
#: Backwards-compatible aliases — the canonical helpers moved to
#: :mod:`repro.hashing` so layers below the API (stage keys in
#: :mod:`repro.sched.stages`) share the same digest discipline.
_jsonable = jsonable
_digest = digest


def machine_fingerprint(config: MachineConfig) -> str:
    """Stable hash of *every* field of a machine configuration.

    Unlike ``config.name``, the fingerprint distinguishes configurations
    that share a name but differ structurally (e.g. a config before and
    after :meth:`~repro.arch.config.MachineConfig.with_attraction_buffers`
    or with a different interleave factor).  Equivalent to
    :meth:`MachineConfig.fingerprint`.
    """
    return config.fingerprint()


def spec_cache_key(
    benchmark: str,
    variant: str,
    machine: MachineConfig,
    scale: float,
    loop: Optional[str],
    seeds: Optional[Tuple[int, int]],
    model: str = "snooping",
) -> str:
    """The canonical cache key for one unit of work.

    ``machine`` must be the *effective* configuration — benchmark
    interleave and Attraction Buffers already applied — so two keys
    collide only for byte-identical work.  Single source of truth for
    both :attr:`RunSpec.content_hash` and the legacy ``run_benchmark``
    shim's ad-hoc-config path.

    The memory model enters the digest only when it is not the default
    snooping protocol, so every pre-model cache entry keeps its key.
    """
    payload = {
        "benchmark": benchmark,
        "variant": variant,
        "machine": machine_fingerprint(machine),
        "scale": scale,
        "loop": loop,
        "seeds": seeds,
        "profile_iterations": PROFILE_ITERATIONS,
    }
    if model != "snooping":
        payload["model"] = model
    return _digest(payload)


# ----------------------------------------------------------------------
# RunSpec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RunSpec:
    """One declarative unit of work (frozen, content-hashable).

    Fields:

    * ``benchmark`` — a catalog name (see ``repro.workloads``);
    * ``variant`` — a ``"coherence/heuristic"`` key, e.g. ``"mdc/prefclus"``;
    * ``machine`` — a *named* machine configuration (``"baseline"``,
      ``"nobal+mem"``, ``"nobal+reg"``);
    * ``attraction`` — enable 16-entry 2-way Attraction Buffers;
    * ``scale`` — iteration scale (``None`` resolves ``REPRO_SCALE`` /
      0.5 at construction time, so the spec is self-contained);
    * ``loop`` — restrict to one loop of the benchmark (``None`` = all);
    * ``seeds`` — ``(profile_seed, execute_seed)`` override (``None`` =
      the benchmark's calibrated seeds);
    * ``model`` — the memory model simulated (see
      :mod:`repro.sim.models`); also accepted as a lexical
      ``-mm<model>`` suffix on ``machine`` (e.g. ``"baseline-mmdls"``),
      which is split off at construction time.
    """

    benchmark: str
    variant: str = "mdc/prefclus"
    machine: str = "baseline"
    attraction: bool = False
    scale: Optional[float] = None
    loop: Optional[str] = None
    seeds: Optional[Tuple[int, int]] = None
    model: str = "snooping"

    def __post_init__(self) -> None:
        variant = parse_variant(self.variant)
        object.__setattr__(self, "variant", variant.key)
        machine, suffix_model = split_model_suffix(self.machine)
        if suffix_model is not None:
            if self.model not in ("snooping", suffix_model):
                raise ConfigError(
                    f"conflicting memory models: machine suffix "
                    f"-mm{suffix_model} vs model={self.model!r}"
                )
            object.__setattr__(self, "machine", machine)
            object.__setattr__(self, "model", suffix_model)
        from repro.sim.models import named_model

        named_model(self.model)  # fail fast on unknown models
        scale = self.scale
        if scale is None:
            scale = default_scale()
        scale = float(scale)
        if not math.isfinite(scale) or scale <= 0:
            raise ConfigError(
                f"invalid scale {self.scale!r}: must be a positive finite "
                f"number"
            )
        object.__setattr__(self, "scale", scale)
        if self.seeds is not None:
            object.__setattr__(self, "seeds", tuple(self.seeds))

    # ------------------------------------------------------------------
    @property
    def variant_obj(self) -> Variant:
        return parse_variant(self.variant)

    def resolved_machine(self) -> MachineConfig:
        """The effective machine this spec runs on: the named config with
        the benchmark's interleave factor and, when requested, Attraction
        Buffers applied."""
        return resolve_machine(self)

    @property
    def content_hash(self) -> str:
        """Stable cache key: spec fields + effective-machine fingerprint.

        Hashing the *resolved* machine (after the benchmark interleave and
        ``with_attraction_buffers()`` are applied) guarantees two specs
        share a key only when they run byte-identical work.
        """
        return spec_cache_key(
            benchmark=self.benchmark,
            variant=self.variant,
            machine=self.resolved_machine(),
            scale=self.scale,
            loop=self.loop,
            seeds=self.seeds,
            model=self.model,
        )

    @property
    def frontend_key(self) -> str:
        """Key of the variant-independent compilation front end.

        Two specs with equal ``frontend_key`` share their unrolling,
        disambiguation and preferred-cluster profiling verbatim — the
        paper's whole 6-way coherence × heuristic cross collapses onto
        one key.  ``scale`` and ``model`` are deliberately absent: they
        only shape the simulated execution, which is back-end work.  The
        :class:`~repro.api.runner.Runner` groups plan misses by this key
        so sibling variants land in the same worker and hit each other's
        warm artifacts.
        """
        return _digest({
            "benchmark": self.benchmark,
            "machine": machine_fingerprint(self.resolved_machine()),
            "loop": self.loop,
            "seeds": self.seeds,
            "profile_iterations": PROFILE_ITERATIONS,
        })

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "benchmark": self.benchmark,
            "variant": self.variant,
            "machine": self.machine,
            "attraction": self.attraction,
            "scale": self.scale,
            "loop": self.loop,
            "seeds": list(self.seeds) if self.seeds is not None else None,
        }
        if self.model != "snooping":
            data["model"] = self.model
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunSpec":
        seeds = data.get("seeds")
        return cls(
            benchmark=data["benchmark"],
            variant=data.get("variant", "mdc/prefclus"),
            machine=data.get("machine", "baseline"),
            attraction=bool(data.get("attraction", False)),
            scale=data.get("scale"),
            loop=data.get("loop"),
            seeds=tuple(seeds) if seeds is not None else None,
            model=data.get("model", "snooping"),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extras = []
        if self.machine != "baseline":
            extras.append(self.machine)
        if self.model != "snooping":
            extras.append(f"model={self.model}")
        if self.attraction:
            extras.append("+ab")
        if self.loop:
            extras.append(f"loop={self.loop}")
        suffix = f" [{' '.join(extras)}]" if extras else ""
        return f"{self.benchmark}:{self.variant}@{self.scale:g}{suffix}"


def resolve_machine(spec: RunSpec) -> MachineConfig:
    """Resolve a spec's named machine into its effective configuration."""
    from repro.workloads.catalog import get_benchmark

    machine = get_benchmark(spec.benchmark).machine(named_config(spec.machine))
    if spec.attraction:
        machine = machine.with_attraction_buffers()
    return machine


# ----------------------------------------------------------------------
# Plan
# ----------------------------------------------------------------------
VariantLike = Union[str, Variant]


def _as_tuple(value, scalar_types) -> Tuple:
    if value is None:
        return (None,)
    if isinstance(value, scalar_types):
        return (value,)
    return tuple(value)


@dataclass(frozen=True)
class Plan:
    """An ordered, de-duplicated sequence of :class:`RunSpec` objects.

    Plans compose with ``+`` and carry their own content hash (the hash
    of their specs' hashes, order-sensitive).
    """

    specs: Tuple[RunSpec, ...] = ()

    def __post_init__(self) -> None:
        seen = set()
        unique = []
        for spec in self.specs:
            if spec not in seen:
                seen.add(spec)
                unique.append(spec)
        object.__setattr__(self, "specs", tuple(unique))

    # ------------------------------------------------------------------
    @classmethod
    def grid(
        cls,
        benchmarks: Union[str, Iterable[str], None] = None,
        variants: Union[VariantLike, Iterable[VariantLike]] = ALL_VARIANTS,
        machines: Union[str, Iterable[str]] = "baseline",
        attraction: Union[bool, Iterable[bool]] = False,
        scale: Optional[float] = None,
        loops: Union[str, Iterable[Optional[str]], None] = None,
        seeds: Optional[Tuple[int, int]] = None,
        models: Union[str, Iterable[str]] = "snooping",
    ) -> "Plan":
        """Cartesian sweep, in deterministic (benchmark-major) order.

        Every argument accepts either a scalar or an iterable; the
        product iterates benchmarks, then machines, then memory models,
        then attraction settings, then variants, then loops.
        """
        bench_names = (
            tuple(EVALUATED) if benchmarks is None
            else _as_tuple(benchmarks, str)
        )
        variant_keys = tuple(
            parse_variant(v).key
            for v in _as_tuple(variants, (str, Variant))
        )
        machine_names = _as_tuple(machines, str)
        ab_settings = _as_tuple(attraction, bool)
        loop_names = _as_tuple(loops, str)
        model_names = _as_tuple(models, str)
        specs = [
            RunSpec(
                benchmark=bench,
                variant=variant,
                machine=machine,
                attraction=ab,
                scale=scale,
                loop=loop,
                seeds=seeds,
                model=model,
            )
            for bench in bench_names
            for machine in machine_names
            for model in model_names
            for ab in ab_settings
            for variant in variant_keys
            for loop in loop_names
        ]
        return cls(tuple(specs))

    @classmethod
    def single(cls, spec: RunSpec) -> "Plan":
        return cls((spec,))

    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[RunSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __add__(self, other: "Plan") -> "Plan":
        if not isinstance(other, Plan):
            return NotImplemented
        return Plan(self.specs + other.specs)

    @property
    def content_hash(self) -> str:
        return _digest([spec.content_hash for spec in self.specs])

    def to_dicts(self) -> Sequence[Dict[str, object]]:
        return [spec.to_dict() for spec in self.specs]

    def describe(self) -> str:
        lines = [f"plan {self.content_hash} ({len(self)} specs):"]
        lines.extend(f"  {spec}" for spec in self.specs)
        return "\n".join(lines)
