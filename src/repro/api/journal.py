"""Checkpoint journals for streaming plan execution.

A :class:`RunJournal` is an append-only JSONL file recording, for one
:class:`~repro.api.spec.Plan`, which specs have completed and which
failed.  The :class:`~repro.api.runner.Runner` appends one line per
event as its stream progresses, flushing each line (and fsyncing error
events), so a run killed at any point leaves a consistent prefix on
disk.  On
``repro run --resume`` / ``repro scenarios sweep --resume`` the journal
tells the runner (and the user) how much of the plan already finished —
completed records themselves are fetched from the
:class:`~repro.api.store.DiskStore`, which is why resume requires the
on-disk result store — and which specs failed so they can be retried
with full context.

File format (one JSON object per line)::

    {"event": "plan", "plan": <plan hash>, "specs": N, "version": ...}
    {"event": "done", "key": <spec content hash>}
    {"event": "error", "key": <spec content hash>, "error": {...}}

A journal is keyed by its plan's content hash
(``<cache root>/journal/<plan hash>.jsonl``), so resuming with modified
arguments — a different grid, scale or machine list — starts a fresh
journal instead of silently mixing two runs.  A journal written by a
different package version is discarded (results it points at would be
version-stale in the store anyway).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Set, Union

from repro.api.spec import Plan
from repro.api.store import resolve_cache_root

#: Subdirectory of the cache root that holds run journals.
JOURNAL_SUBDIR = "journal"


def journal_root(cache_root: Union[str, Path, None] = None) -> Path:
    """The journal directory for a cache root (default: the process
    cache root, i.e. ``.repro_cache/journal/``)."""
    return resolve_cache_root(cache_root) / JOURNAL_SUBDIR


def _package_version() -> str:
    from repro import __version__

    return __version__


@dataclass
class JournalState:
    """What a journal recorded before the current session."""

    plan_hash: str = ""
    total: int = 0
    done: Set[str] = field(default_factory=set)
    #: spec key -> structured error dict (last failure wins; cleared
    #: when a later attempt of the same key succeeds).
    errors: Dict[str, dict] = field(default_factory=dict)

    @property
    def completed(self) -> int:
        return len(self.done)


class RunJournal:
    """Append-only JSONL checkpoint journal for one plan."""

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None
        self._noted: Set[str] = set()
        self._state = JournalState()

    @classmethod
    def for_plan(cls, plan: Plan,
                 cache_root: Union[str, Path, None] = None) -> "RunJournal":
        """The canonical journal for ``plan`` under a cache root."""
        return cls(journal_root(cache_root) / f"{plan.content_hash}.jsonl")

    # ------------------------------------------------------------------
    @property
    def state(self) -> JournalState:
        return self._state

    def load(self) -> JournalState:
        """Parse the journal from disk (tolerating a torn final line)."""
        state = JournalState()
        try:
            text = self.path.read_text()
        except OSError:
            return state
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn tail from a kill mid-append
            if not isinstance(entry, dict):
                continue
            event = entry.get("event")
            if event == "plan":
                if entry.get("version") != _package_version():
                    return JournalState()  # stale journal: start over
                state.plan_hash = str(entry.get("plan") or "")
                try:
                    state.total = int(entry.get("specs") or 0)
                except (TypeError, ValueError):
                    state.total = 0
            elif event == "done":
                key = entry.get("key")
                if key:
                    state.done.add(key)
                    state.errors.pop(key, None)
            elif event == "error":
                key = entry.get("key")
                if key and key not in state.done:
                    error = entry.get("error")
                    state.errors[key] = error if isinstance(error, dict) \
                        else {}
        return state

    def begin(self, plan: Plan) -> JournalState:
        """Open the journal for ``plan`` and return prior progress.

        A journal written for a different plan (or package version) is
        discarded and restarted; an existing journal for the same plan is
        appended to — that is the resume path.
        """
        previous = self.load()
        if previous.plan_hash != plan.content_hash:
            previous = JournalState()
            self.discard()
            self._append({
                "event": "plan",
                "plan": plan.content_hash,
                "specs": len(plan.specs),
                "version": _package_version(),
            })
        previous.plan_hash = plan.content_hash
        previous.total = len(plan.specs)
        self._noted = set(previous.done)
        self._state = previous
        return previous

    # ------------------------------------------------------------------
    def note_done(self, key: str) -> None:
        """Record one spec's completion (idempotent per key)."""
        if key in self._noted:
            return
        self._noted.add(key)
        self._state.done.add(key)
        self._state.errors.pop(key, None)
        self._append({"event": "done", "key": key})

    def note_error(self, key: str, error) -> None:
        """Record one spec's failure (``error``: a dict or anything with
        ``to_dict()``, e.g. :class:`~repro.api.runner.RunError`)."""
        payload = error.to_dict() if hasattr(error, "to_dict") \
            else dict(error)
        self._state.errors[key] = payload
        self._append({"event": "error", "key": key, "error": payload},
                     sync=True)

    def _append(self, entry: dict, sync: bool = False) -> None:
        """Write one event line.

        Every line is flushed, which makes it durable across a *process*
        kill — the resume threat model — at microsecond cost, so a
        fully-warm rerun journalling thousands of store hits stays
        cheap.  ``sync=True`` (error events, :meth:`close`) additionally
        fsyncs for power-loss durability: failures are rare and worth
        the disk round trip.
        """
        if self._handle is None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "a")
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()
        if sync:
            os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------
    def discard(self) -> None:
        """Delete the journal file (fresh-run semantics)."""
        self.close()
        try:
            self.path.unlink()
        except OSError:
            pass
        self._noted = set()
        self._state = JournalState()

    def close(self) -> None:
        handle, self._handle = self._handle, None
        if handle is not None:
            try:
                handle.flush()
                os.fsync(handle.fileno())
                handle.close()
            except (OSError, ValueError):  # pragma: no cover - closed
                pass

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass
