"""``python -m repro`` — the command-line front door.

Built on the same :class:`~repro.api.spec.Plan` objects as the library:

* ``repro list`` — benchmarks, variants, machine configs, figures/tables;
* ``repro run BENCH [...]`` — run a spec grid, print a summary, export
  JSON/CSV;
* ``repro figure {6,7,9}`` / ``repro table {4,5}`` — regenerate a
  figure/table through the experiment drivers;
* ``repro scenarios {generate,sweep,report}`` — seeded synthetic
  workloads and the free/MDC/DDGT differential sweep harness
  (:mod:`repro.scenarios`);
* ``repro check {protocol,conformance,schedule}`` — the exhaustive
  coherence-protocol model checker, the simulator/model conformance
  bridge, and the static schedule verifier (:mod:`repro.check`);
* ``repro surrogate train`` — fit the learned cost model on the result
  store's records and save a content-hashed artifact
  (:mod:`repro.surrogate`); ``repro scenarios sweep --surrogate
  --budget N`` then simulates only the predicted-interesting frontier;
* ``repro cache {info,clear}`` — manage the on-disk result store;
* ``repro bench {run,compare}`` — config-driven benchmark grids with a
  persistent ``BENCH_*.json`` perf trajectory (:mod:`repro.bench`);
* ``repro obs {trace,metrics}`` — summarize trace/metric files produced
  with ``--trace FILE`` / ``--metrics FILE`` (:mod:`repro.obs`).

All compute-bearing commands accept ``--parallel N`` (process fan-out)
and use the on-disk :class:`~repro.api.store.DiskStore` under
``.repro_cache/`` by default, so a second invocation is near-instant and
byte-identical.  ``repro run`` and ``repro scenarios sweep`` stream:
completions print live progress (a ``\\r`` status line on a tty,
periodic plain lines otherwise), checkpoint into a
:class:`~repro.api.journal.RunJournal`, and ``--resume`` picks a killed
run back up without re-executing completed work.  Every command accepts
``--trace FILE`` (Perfetto-loadable span trace; ``.jsonl`` for JSONL)
and ``--metrics FILE`` (metrics-registry snapshot) where they appear.
"""

from __future__ import annotations

import argparse
import math
import sys
from contextlib import contextmanager
from typing import List, Optional

from repro import obs

from repro.analysis.report import format_table
from repro.api.artifacts import (
    DiskArtifactStore,
    MemoryArtifactStore,
    artifact_root,
    artifact_stats,
)
from repro.api.journal import RunJournal, journal_root
from repro.api.records import RunRecord, records_to_csv, records_to_json
from repro.api.runner import Runner
from repro.api.spec import (
    ALL_VARIANTS,
    EVALUATED,
    Plan,
    default_scale,
)
from repro.api.store import DEFAULT_CACHE_DIR, DiskStore, MemoryStore
from repro.errors import ConfigError, ReproError
from repro.sim.batch import DEFAULT_BATCH_SIZE
from repro.sim.executor import ENGINES


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of Gibert, Sánchez & González (CGO 2003): "
            "memory coherence in a clustered VLIW processor with a "
            "distributed data cache."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--scale", type=float, default=None,
                       help="iteration scale (default: REPRO_SCALE or 0.5)")
        p.add_argument("--parallel", type=int, default=None, metavar="N",
                       help="fan misses out over N worker processes")
        p.add_argument("--cache-dir", default=None, metavar="DIR",
                       help=f"on-disk result store (default: "
                            f"{DEFAULT_CACHE_DIR}/, or $REPRO_CACHE_DIR)")
        p.add_argument("--no-cache", action="store_true",
                       help="use a throwaway in-memory store")
        p.add_argument("--out", default=None, metavar="FILE",
                       help="also write the rendered output to FILE")
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="write a span trace (Chrome trace-event "
                            "JSON, Perfetto-loadable; .jsonl for JSONL)")
        p.add_argument("--metrics", default=None, metavar="FILE",
                       help="write a metrics-registry snapshot as JSON")
        p.add_argument("--engine", default="events", choices=ENGINES,
                       help="simulation engine for store misses; 'batch' "
                            "co-simulates misses in lockstep "
                            "(default: events)")
        p.add_argument("--batch-size", type=int, default=None, metavar="N",
                       help="runs co-simulated per batch with "
                            "--engine batch (default: "
                            f"{DEFAULT_BATCH_SIZE})")

    p_run = sub.add_parser("run", help="run a grid of specs")
    p_run.add_argument("benchmarks", nargs="*", metavar="BENCH",
                       help="benchmark names (default: the 13 evaluated)")
    p_run.add_argument("-v", "--variant", action="append", dest="variants",
                       metavar="C/H",
                       help="coherence/heuristic key, e.g. mdc/prefclus "
                            "(repeatable; default: all six)")
    p_run.add_argument("--machine", default="baseline",
                       help="named machine config (default: baseline); a "
                            "-mm<model> suffix selects a memory model")
    p_run.add_argument("--model", action="append", dest="models",
                       metavar="MODEL",
                       help="memory model (repeatable; see 'repro list'; "
                            "default: snooping)")
    p_run.add_argument("--attraction", action="store_true",
                       help="enable Attraction Buffers")
    p_run.add_argument("--loop", default=None,
                       help="restrict to one loop of each benchmark")
    p_run.add_argument("--json", default=None, metavar="FILE",
                       help="write full records as JSON")
    p_run.add_argument("--csv", default=None, metavar="FILE",
                       help="write per-loop records as CSV")
    p_run.add_argument("--resume", action="store_true",
                       help="continue a killed run from its checkpoint "
                            "journal (requires the on-disk store)")
    add_common(p_run)

    p_fig = sub.add_parser("figure", help="regenerate a figure's data")
    p_fig.add_argument("number", type=int, choices=(6, 7, 9))
    p_fig.add_argument("--benchmarks", nargs="*", default=None,
                       metavar="BENCH")
    add_common(p_fig)

    p_tab = sub.add_parser("table", help="regenerate a table")
    p_tab.add_argument("number", type=int, choices=(4, 5))
    p_tab.add_argument("--benchmarks", nargs="*", default=None,
                       metavar="BENCH")
    add_common(p_tab)

    p_scn = sub.add_parser(
        "scenarios",
        help="synthetic scenario generator + differential sweep harness",
    )
    scn_sub = p_scn.add_subparsers(dest="action", required=True)

    def add_sampling(p: argparse.ArgumentParser) -> None:
        p.add_argument("--seed", type=int, default=0,
                       help="sampler seed (default: 0)")
        p.add_argument("--count", type=int, default=50, metavar="N",
                       help="number of scenarios to sample (default: 50)")
        p.add_argument("--family", action="append", dest="families",
                       metavar="FAMILY",
                       help="restrict to a generator family (repeatable)")

    p_scn_gen = scn_sub.add_parser(
        "generate", help="sample scenarios and describe their DDGs")
    add_sampling(p_scn_gen)
    p_scn_gen.add_argument("--out", default=None, metavar="FILE",
                           help="also write the listing to FILE")

    def add_sweep_args(p: argparse.ArgumentParser) -> None:
        # report must reconstruct the exact plan sweep ran, so the two
        # verbs share one argument definition.
        add_sampling(p)
        p.add_argument("--machine", action="append", dest="machines",
                       metavar="NAME",
                       help="machine config name, named or gen-... "
                            "(repeatable; default: baseline)")
        p.add_argument("--machine-space", action="store_true",
                       help="sweep the default 2/4/8-cluster machine "
                            "space instead of the baseline alone")
        p.add_argument("--model", action="append", dest="models",
                       metavar="MODEL",
                       help="memory model to cross into the sweep "
                            "(repeatable; default: snooping)")
        p.add_argument("--csv", default=None, metavar="FILE",
                       help="write the per-family summary as CSV")
        add_common(p)

    p_scn_sweep = scn_sub.add_parser(
        "sweep", help="run the free/MDC/DDGT differential sweep")
    p_scn_sweep.add_argument(
        "--resume", action="store_true",
        help="continue a killed sweep from its checkpoint journal "
             "(requires the on-disk store)")
    p_scn_sweep.add_argument(
        "--surrogate", nargs="?", const="latest", default=None,
        metavar="MODEL",
        help="guide the sweep with a trained surrogate model (id, "
             "artifact path, or 'latest'; requires --budget); store "
             "hits are always kept, only fresh simulations are "
             "rationed, and skipped cells are reported as skipped")
    p_scn_sweep.add_argument(
        "--budget", type=int, default=None, metavar="N",
        help="max fresh simulations under --surrogate")
    p_scn_sweep.add_argument(
        "--explore-frac", type=float, default=0.1, metavar="F",
        help="fraction of the budget spent on seeded random "
             "exploration off the predicted frontier (default: 0.1)")
    p_scn_sweep.add_argument(
        "--surrogate-seed", type=int, default=0, metavar="S",
        help="seed for the exploration draw (default: 0)")
    add_sweep_args(p_scn_sweep)

    p_scn_rep = scn_sub.add_parser(
        "report", help="re-aggregate a sweep from the warm store only")
    add_sweep_args(p_scn_rep)

    p_check = sub.add_parser(
        "check",
        help="protocol model checker, conformance bridge and static "
             "schedule verifier (repro.check)",
    )
    check_sub = p_check.add_subparsers(dest="action", required=True)

    def add_model_config(p: argparse.ArgumentParser) -> None:
        p.add_argument("--clusters", type=int, default=2, metavar="N",
                       help="model clusters (default: 2)")
        p.add_argument("--subblocks", type=int, default=2, metavar="K",
                       help="model subblocks (default: 2)")
        p.add_argument("--ops", type=int, default=3, metavar="L",
                       help="ops per model program (default: 3)")

    p_chk_proto = check_sub.add_parser(
        "protocol",
        help="exhaustively model-check the coherence protocol")
    add_model_config(p_chk_proto)
    p_chk_proto.add_argument(
        "--model", default="snooping", metavar="MODEL",
        help="memory model whose protocol to check "
             "(default: snooping)")
    p_chk_proto.add_argument(
        "--mutation", default=None, metavar="NAME",
        help="seed a protocol bug (see repro.check.mutations); the run "
             "is then expected to find a counterexample")
    p_chk_proto.add_argument(
        "--max-states", type=int, default=None, metavar="N",
        help="stop after N reachable states across all programs "
             "(CI smoke budget; default: unlimited)")
    p_chk_proto.add_argument(
        "--disciplined-only", action="store_true",
        help="only explore programs the coherence solutions produce")
    p_chk_proto.add_argument("--out", default=None, metavar="FILE")

    p_chk_conf = check_sub.add_parser(
        "conformance",
        help="drive the simulator through the model transition by "
             "transition and assert agreement")
    p_chk_conf.add_argument("--clusters", type=int, default=2, metavar="N",
                            help="clusters (default: 2)")
    p_chk_conf.add_argument("--subblocks", type=int, default=2, metavar="K",
                            help="subblocks (default: 2)")
    p_chk_conf.add_argument(
        "--model", default="snooping", metavar="MODEL",
        help="memory model to drive and replay (default: snooping)")
    p_chk_conf.add_argument("--out", default=None, metavar="FILE")

    p_chk_sched = check_sub.add_parser(
        "schedule",
        help="statically verify compiled schedules "
             "(resource/latency/copies/memory-order rules)")
    p_chk_sched.add_argument(
        "benchmarks", nargs="*", metavar="BENCH",
        help="benchmark names (default: the full catalog)")
    p_chk_sched.add_argument(
        "-v", "--variant", action="append", dest="variants", metavar="C/H",
        help="coherence/heuristic key, e.g. mdc/prefclus "
             "(repeatable; default: all six)")
    p_chk_sched.add_argument("--machine", default="baseline",
                             help="named machine config (default: baseline)")
    p_chk_sched.add_argument("--loop", default=None,
                             help="restrict to one loop of each benchmark")
    p_chk_sched.add_argument("--out", default=None, metavar="FILE")

    p_sur = sub.add_parser(
        "surrogate",
        help="learned cost model: train on stored sweep results "
             "(repro.surrogate)",
    )
    sur_sub = p_sur.add_subparsers(dest="action", required=True)
    p_sur_train = sur_sub.add_parser(
        "train",
        help="fit IPC/II/traffic predictors on the result store's "
             "scn-… records and save a content-hashed model artifact")
    p_sur_train.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result store to train from (and save the artifact under)")
    p_sur_train.add_argument(
        "--model-type", default=None, metavar="T",
        help="predictor family: gbs (boosted stumps, default) or ridge")
    p_sur_train.add_argument(
        "--ridge-lambda", type=float, default=None, metavar="L",
        help="L2 regularization strength (default: 1.0)")
    p_sur_train.add_argument(
        "--holdout-frac", type=float, default=None, metavar="F",
        help="held-out fraction for the error report (default: 0.2)")
    p_sur_train.add_argument(
        "--min-rank-corr", type=float, default=None, metavar="R",
        help="exit non-zero unless every target's held-out rank "
             "correlation is >= R (CI floor)")
    p_sur_train.add_argument(
        "--no-save", action="store_true",
        help="report metrics only; do not write the model artifact")
    p_sur_train.add_argument("--out", default=None, metavar="FILE",
                             help="also write the training report to FILE")

    sub.add_parser("list", help="list benchmarks, variants and configs")

    p_cache = sub.add_parser(
        "cache",
        help="manage the on-disk result + artifact stores",
    )
    p_cache.add_argument(
        "action", choices=("info", "clear", "artifacts", "prune"),
        help="info: both stores; clear: drop both stores; artifacts: "
             "artifact count/bytes/hit-rate; prune: drop entries older "
             "than --older-than",
    )
    p_cache.add_argument("--cache-dir", default=None, metavar="DIR")
    p_cache.add_argument(
        "--older-than", default=None, metavar="AGE",
        help="age cutoff for prune: seconds, or with a d/h/m/s suffix "
             "(e.g. 7d, 12h, 30m)",
    )

    p_bench = sub.add_parser(
        "bench",
        help="config-driven benchmark grids with a persistent "
             "BENCH_*.json perf trajectory (repro.bench)",
    )
    bench_sub = p_bench.add_subparsers(dest="action", required=True)
    p_bench_run = bench_sub.add_parser(
        "run", help="run a grid config and emit BENCH_<grid>.json + CSV")
    p_bench_run.add_argument(
        "--grid", default="benchmarks/grids/default.json", metavar="FILE",
        help="grid config (default: benchmarks/grids/default.json)")
    p_bench_run.add_argument(
        "--repeat", type=int, default=None, metavar="N",
        help="override the config's repeat count (median wall is tracked)")
    p_bench_run.add_argument(
        "--out-dir", default=".", metavar="DIR",
        help="where BENCH_<grid>.json + CSV land (default: .)")
    p_bench_run.add_argument("--trace", default=None, metavar="FILE",
                             help="write a span trace of the grid run")
    p_bench_run.add_argument("--metrics", default=None, metavar="FILE",
                             help="write a metrics snapshot of the run")
    p_bench_run.add_argument(
        "--engine", default=None, choices=ENGINES,
        help="force every series onto one simulation engine "
             "(default: each series' own 'engine' field)")
    p_bench_cmp = bench_sub.add_parser(
        "compare",
        help="diff a trajectory against a previous one; non-zero exit "
             "on regression")
    p_bench_cmp.add_argument(
        "current", metavar="CURRENT",
        help="current BENCH_<grid>.json")
    p_bench_cmp.add_argument(
        "--against", required=True, metavar="PREVIOUS",
        help="previous trajectory to compare against")
    p_bench_cmp.add_argument(
        "--threshold", type=float, default=15.0, metavar="PCT",
        help="relative regression threshold in percent (default: 15)")

    p_obs = sub.add_parser(
        "obs",
        help="summarize observability artifacts (trace/metrics files)",
    )
    obs_sub = p_obs.add_subparsers(dest="action", required=True)
    p_obs_trace = obs_sub.add_parser(
        "trace", help="summarize a span-trace file (--trace output)")
    p_obs_trace.add_argument("file", metavar="FILE")
    p_obs_metrics = obs_sub.add_parser(
        "metrics", help="render a metrics snapshot (--metrics output)")
    p_obs_metrics.add_argument("file", metavar="FILE")

    return parser


#: ``--older-than`` suffixes, in seconds.
_AGE_UNITS = {"s": 1, "m": 60, "h": 3600, "d": 86400}


def parse_age(text: str) -> float:
    """Parse an ``--older-than`` age: plain seconds or ``7d``-style."""
    raw = text.strip().lower()
    unit = 1.0
    if raw and raw[-1] in _AGE_UNITS:
        unit = _AGE_UNITS[raw[-1]]
        raw = raw[:-1]
    try:
        value = float(raw)
    except ValueError:
        raise ConfigError(
            f"invalid age {text!r}: expected seconds or a number with a "
            f"d/h/m/s suffix (e.g. 7d, 12h, 30m)"
        ) from None
    if not math.isfinite(value) or value < 0:
        raise ConfigError(
            f"invalid age {text!r}: must be a non-negative finite number"
        )
    return value * unit


def _store(args: argparse.Namespace):
    if getattr(args, "no_cache", False):
        return MemoryStore()
    return DiskStore(args.cache_dir)


def _artifact_store(args: argparse.Namespace):
    if getattr(args, "no_cache", False):
        return MemoryArtifactStore()
    return DiskArtifactStore(artifact_root(getattr(args, "cache_dir", None)))


def _runner(args: argparse.Namespace) -> Runner:
    return Runner(store=_store(args), parallel=args.parallel,
                  artifacts=_artifact_store(args),
                  engine=getattr(args, "engine", "events"),
                  batch_size=getattr(args, "batch_size", None))


def _journal(args: argparse.Namespace, plan: Plan) -> Optional[RunJournal]:
    """The checkpoint journal for a plan — and the resume bookkeeping.

    Without ``--resume`` an existing journal for the same plan is
    discarded (fresh-run semantics); with it, prior progress is reported
    and appended to.  Resume needs the on-disk store (that is where
    completed records live), so ``--no-cache`` refuses it.
    """
    if getattr(args, "no_cache", False):
        if getattr(args, "resume", False):
            raise ConfigError(
                "--resume needs the on-disk result store; drop --no-cache"
            )
        return None
    journal = RunJournal.for_plan(plan, getattr(args, "cache_dir", None))
    if getattr(args, "resume", False):
        state = journal.load()
        if state.plan_hash == plan.content_hash and (state.done
                                                     or state.errors):
            print(
                f"resuming plan {plan.content_hash}: "
                f"{len(state.done)}/{len(plan)} specs already completed, "
                f"{len(state.errors)} recorded failures will be retried",
                file=sys.stderr,
            )
    else:
        journal.discard()
    return journal


def _progress_printer():
    """Live progress on stderr, degrading gracefully off a tty.

    On a tty: a single ``\\r``-rewritten status line.  Off a tty (CI
    logs, pipes): periodic plain newline-terminated lines — roughly one
    per tenth of the plan plus the final one — so captured logs show
    progress without carriage-return noise.  stdout is never touched,
    so piped *output* stays byte-identical either way.
    """
    if sys.stderr.isatty():  # pragma: no cover - tty-only cosmetics
        def emit(done: int, total: int, item) -> None:
            label = ""
            if isinstance(item, RunRecord):
                label = f"  {item.benchmark} {item.variant}"
            sys.stderr.write(f"\r[{done}/{total}]{label}\x1b[K")
            if done >= total:
                sys.stderr.write("\n")
            sys.stderr.flush()

        return emit

    def emit_plain(done: int, total: int, item) -> None:
        step = max(1, total // 10)
        if done % step and done < total:
            return
        label = ""
        if isinstance(item, RunRecord):
            label = f"  {item.benchmark} {item.variant}"
        sys.stderr.write(f"[{done}/{total}]{label}\n")
        sys.stderr.flush()

    return emit_plain


@contextmanager
def _observed(args: argparse.Namespace):
    """Honor ``--trace FILE`` / ``--metrics FILE`` around a command.

    With ``--trace`` the whole command runs under a root span on a
    fresh tracer (written, in Chrome or JSONL format by extension, when
    the command finishes); with ``--metrics`` the process registry's
    snapshot is written on exit.  Commands without those flags pass
    through untouched.
    """
    trace_path = getattr(args, "trace", None)
    metrics_path = getattr(args, "metrics", None)
    tracer_obj = None
    if trace_path:
        tracer_obj = obs.Tracer()
        previous = obs.set_tracer(tracer_obj)
        root = tracer_obj.span(f"repro.{args.command}", cat="cli")
        root.__enter__()
    try:
        yield
    finally:
        if tracer_obj is not None:
            root.__exit__(None, None, None)
            obs.set_tracer(previous)
            tracer_obj.write(trace_path)
            print(f"trace: {len(tracer_obj.events())} spans -> "
                  f"{trace_path}", file=sys.stderr)
        if metrics_path:
            obs.write_snapshot(metrics_path)
            print(f"metrics snapshot -> {metrics_path}", file=sys.stderr)


def _emit(text: str, out: Optional[str]) -> None:
    print(text)
    if out:
        with open(out, "w") as handle:
            handle.write(text + "\n")


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    variants = tuple(args.variants) if args.variants else ALL_VARIANTS
    plan = Plan.grid(
        benchmarks=args.benchmarks or None,
        variants=variants,
        machines=args.machine,
        attraction=args.attraction,
        scale=args.scale,
        loops=args.loop,
        models=tuple(args.models) if args.models else "snooping",
    )
    journal = _journal(args, plan)
    with _runner(args) as runner:
        records = runner.run(plan, journal=journal,
                             progress=_progress_printer())
    rows = []
    for record in records:
        stats = record.merged_stats()
        rows.append([
            record.benchmark, record.variant, record.machine,
            record.compute_cycles, record.stall_cycles, record.total_cycles,
            f"{record.local_hit_ratio:.1%}", record.violations,
            stats.bus_transfers,
        ])
    text = format_table(
        ["benchmark", "variant", "machine", "compute", "stall", "total",
         "local hit", "violations", "bus xfers"],
        rows,
        title=f"{len(records)} runs (scale "
              f"{args.scale if args.scale is not None else default_scale()})",
    )
    _emit(text, args.out)
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(records_to_json(records))
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(records_to_csv(records))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    from repro.experiments.figure6 import run_figure6
    from repro.experiments.figure7 import run_figure7
    from repro.experiments.figure9 import run_figure9

    drivers = {6: run_figure6, 7: run_figure7, 9: run_figure9}
    with _runner(args) as runner:
        result = drivers[args.number](
            benchmarks=args.benchmarks, scale=args.scale, runner=runner,
            progress=_progress_printer(),
        )
    _emit(result.render(), args.out)
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    from repro.experiments.table4 import run_table4
    from repro.experiments.table5 import run_table5

    if args.number == 4:
        with _runner(args) as runner:
            result = run_table4(
                benchmarks=args.benchmarks, scale=args.scale,
                runner=runner, progress=_progress_printer(),
            )
    else:
        # Table 5 is a static DDG analysis: no simulation, no cache.
        result = run_table5(benchmarks=args.benchmarks)
    _emit(result.render(), args.out)
    return 0


def _scenario_machines(args: argparse.Namespace):
    machines = []
    if getattr(args, "machine_space", False):
        from repro.scenarios.machines import DEFAULT_MACHINE_SPACE

        machines.extend(DEFAULT_MACHINE_SPACE)
    if getattr(args, "machines", None):
        machines.extend(args.machines)
    return machines or None


def _cmd_scenarios(args: argparse.Namespace) -> int:
    from repro.scenarios import (
        build_scenario_ddg,
        sample_scenarios,
        summarize,
        sweep_plan,
        run_sweep,
    )

    scenarios = sample_scenarios(args.seed, args.count, args.families)

    if args.action == "generate":
        rows = []
        for params in scenarios:
            ddg = build_scenario_ddg(params)
            rows.append([
                params.name, params.family, len(ddg),
                len(ddg.memory_instructions()), ddg.fingerprint(),
            ])
        text = format_table(
            ["scenario", "family", "ops", "mem ops", "fingerprint"],
            rows,
            title=f"{len(rows)} scenarios (seed {args.seed})",
        )
        _emit(text, args.out)
        return 0

    names = [params.name for params in scenarios]
    machines = _scenario_machines(args)
    models = tuple(args.models) if args.models else ("snooping",)

    if args.action == "sweep":
        surrogate_model = None
        if getattr(args, "surrogate", None):
            if args.budget is None:
                raise ConfigError(
                    "--surrogate needs --budget N (max fresh simulations)"
                )
            from repro.surrogate import load_model

            surrogate_model = load_model(
                args.surrogate, getattr(args, "cache_dir", None)
            )
        plan = sweep_plan(names, machines, scale=args.scale, models=models)
        journal = _journal(args, plan)
        with _runner(args) as runner:
            result = run_sweep(
                names,
                machines=machines,
                scale=args.scale,
                models=models,
                runner=runner,
                journal=journal,
                progress=_progress_printer(),
                surrogate=surrogate_model,
                budget=getattr(args, "budget", None),
                explore_frac=getattr(args, "explore_frac", 0.1),
                surrogate_seed=getattr(args, "surrogate_seed", 0),
            )
        if (result.surrogate is not None
                and not getattr(args, "no_cache", False)):
            # Active learning: persist the refit model so the next
            # guided sweep starts from the sharpened predictor.
            from repro.surrogate import save_model

            refit_path = save_model(result.surrogate, args.cache_dir)
            print(f"surrogate refit -> {refit_path}", file=sys.stderr)
        _emit(result.render(), args.out)
        if args.csv:
            with open(args.csv, "w") as handle:
                handle.write(result.to_csv())
        return 0 if result.ok else 1

    # report: re-aggregate whatever the store already holds for the plan.
    plan = sweep_plan(names, machines, scale=args.scale, models=models)
    store = _store(args)
    cached = [store.get(spec.content_hash) for spec in plan]
    present = [record for record in cached if record is not None]
    result = summarize(present)
    result.plan = plan
    missing = len(plan) - len(present)
    text = result.render()
    if missing:
        # An absent run is an unperformed check, not a passed one.
        text += (f"\nDIFFERENTIAL CHECK INCOMPLETE: {missing} of "
                 f"{len(plan)} runs not in the store — run "
                 f"'repro scenarios sweep' first")
    _emit(text, args.out)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(result.to_csv())
    return 0 if result.ok and not missing else 1


def _cmd_check(args: argparse.Namespace) -> int:
    if args.action == "protocol":
        from repro.check import check_protocol

        report = check_protocol(
            num_clusters=args.clusters,
            num_subblocks=args.subblocks,
            op_count=args.ops,
            mutation=args.mutation,
            max_states=args.max_states,
            disciplined_only=args.disciplined_only,
            model=args.model,
        )
        text = report.summary()
        for counterexample in report.counterexamples:
            text += "\n\n" + counterexample.format()
        _emit(text, args.out)
        if args.mutation is not None:
            # A seeded bug the checker does NOT catch is the failure.
            return 0 if report.counterexamples else 1
        return 0 if report.ok else 1

    if args.action == "conformance":
        from repro.check.conformance import run_conformance

        report = run_conformance(
            num_clusters=args.clusters, num_subblocks=args.subblocks,
            model=args.model,
        )
        _emit(report.summary(), args.out)
        return 0 if report.ok else 1

    # schedule: compile the requested cross and lint every result.
    from repro.api.core import PROFILE_ITERATIONS
    from repro.api.spec import parse_variant
    from repro.arch.config import named_config
    from repro.check import lint_compilation
    from repro.sched.pipeline import compile_loop
    from repro.workloads.catalog import BENCHMARKS, get_benchmark
    from repro.workloads.traces import cached_trace_spec

    base = named_config(args.machine)
    variants = [parse_variant(v) for v in (args.variants or ALL_VARIANTS)]
    lines: List[str] = []
    findings_total = 0
    for name in (args.benchmarks or list(BENCHMARKS)):
        bench = get_benchmark(name)
        machine = bench.machine(base)
        profile = cached_trace_spec(PROFILE_ITERATIONS,
                                    seed=bench.profile_seed)
        loops = bench.loops
        if args.loop is not None:
            loops = tuple(s for s in loops if s.name == args.loop)
        for spec in loops:
            for variant in variants:
                compiled = compile_loop(
                    spec.ddg, machine,
                    coherence=variant.coherence,
                    heuristic=variant.heuristic,
                    trace_factory=profile,
                    unroll_factor=spec.unroll,
                )
                findings = lint_compilation(compiled)
                findings_total += len(findings)
                verdict = (
                    "clean" if not findings
                    else f"{len(findings)} finding(s)"
                )
                lines.append(
                    f"{name:12s} {spec.name:20s} {variant.key:16s} "
                    f"ii={compiled.ii:3d} {verdict}"
                )
                lines.extend(f"    {finding}" for finding in findings)
    lines.append(
        "verdict: "
        + ("all schedules verified" if not findings_total
           else f"{findings_total} finding(s)")
    )
    _emit("\n".join(lines), args.out)
    return 0 if not findings_total else 1


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.arch.config import _NAMED
    from repro.workloads.catalog import BENCHMARKS

    lines = ["evaluated benchmarks:"]
    lines.extend(f"  {name}" for name in EVALUATED)
    extras = [name for name in BENCHMARKS if name not in EVALUATED]
    if extras:
        lines.append("catalog-only benchmarks:")
        lines.extend(f"  {name}" for name in extras)
    lines.append("variants (coherence/heuristic):")
    lines.extend(f"  {v.key:16s} {v}" for v in ALL_VARIANTS)
    lines.append("machine configs:")
    lines.extend(f"  {name}" for name in sorted(_NAMED))
    lines.append("  gen-...  (generated machine-space names, see "
                 "'repro scenarios')")
    from repro.sim.models import DEFAULT_MODEL, MODELS

    lines.append("memory models (--model, or a -mm<name> machine "
                 "suffix):")
    for name in sorted(MODELS):
        model = MODELS[name]
        default = "  [default]" if name == DEFAULT_MODEL else ""
        lines.append(f"  {name:10s} {model.description}{default}")
    from repro.scenarios import FAMILIES

    lines.append("scenario families (repro scenarios): " + ", ".join(FAMILIES))
    from repro.surrogate import describe_model, load_models, surrogate_root

    lines.append(f"surrogate models ({surrogate_root()}/):")
    surrogates = load_models()
    if surrogates:
        lines.extend(f"  {describe_model(model)}" for model in surrogates)
    else:
        lines.append("  (none — train with 'repro surrogate train')")
    lines.append("figures: 6, 7, 9   tables: 4, 5")
    print("\n".join(lines))
    return 0


def _cmd_surrogate(args: argparse.Namespace) -> int:
    from repro.surrogate import (
        DEFAULT_HOLDOUT_FRAC,
        DEFAULT_RIDGE_LAMBDA,
        save_model,
        train_from_store,
    )

    store = DiskStore(args.cache_dir)
    kwargs = {}
    if args.model_type is not None:
        kwargs["model_type"] = args.model_type
    model = train_from_store(
        store,
        ridge_lambda=(args.ridge_lambda if args.ridge_lambda is not None
                      else DEFAULT_RIDGE_LAMBDA),
        holdout_frac=(args.holdout_frac if args.holdout_frac is not None
                      else DEFAULT_HOLDOUT_FRAC),
        **kwargs,
    )
    text = model.summary()
    if not args.no_save:
        path = save_model(model, args.cache_dir)
        text += f"\nartifact -> {path}"
    _emit(text, args.out)
    if args.min_rank_corr is not None:
        worst = min(
            m.get("rank_corr", 0.0) for m in model.metrics.values()
        )
        if worst < args.min_rank_corr:
            print(
                f"error: held-out rank correlation {worst:+.3f} below "
                f"the --min-rank-corr floor {args.min_rank_corr:+.3f}",
                file=sys.stderr,
            )
            return 1
    return 0


def _prune_surrogates(surrogate_dir, older_than_seconds: float) -> int:
    """Drop surrogate model artifacts idle for longer than the cutoff."""
    import time as _time

    cutoff = _time.time() - older_than_seconds
    count = 0
    if surrogate_dir.is_dir():
        for path in surrogate_dir.glob("model-*.json"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    count += 1
            except OSError:  # pragma: no cover - concurrent removal
                pass
    return count


def _prune_journals(journals_dir, older_than_seconds: float) -> int:
    """Drop journals idle for longer than the cutoff (one file per plan
    hash accumulates forever otherwise)."""
    import time as _time

    cutoff = _time.time() - older_than_seconds
    count = 0
    if journals_dir.is_dir():
        for path in journals_dir.glob("*.jsonl"):
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    count += 1
            except OSError:  # pragma: no cover - concurrent removal
                pass
    return count


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.surrogate import (
        clear_models,
        list_model_ids,
        surrogate_root,
    )

    store = DiskStore(args.cache_dir)
    artifacts = DiskArtifactStore(artifact_root(args.cache_dir))
    journals_dir = journal_root(args.cache_dir)
    surrogate_dir = surrogate_root(args.cache_dir)
    if args.action == "clear":
        records = store.clear()
        dropped = artifacts.clear()
        journals = 0
        if journals_dir.is_dir():
            for path in journals_dir.glob("*.jsonl"):
                try:
                    path.unlink()
                    journals += 1
                except OSError:  # pragma: no cover - concurrent removal
                    pass
        surrogates = clear_models(args.cache_dir)
        print(f"removed {records} cached records from {store.root}/")
        print(f"removed {dropped} artifacts from {artifacts.root}/")
        print(f"removed {journals} run journals from {journals_dir}/")
        print(f"removed {surrogates} surrogate models from "
              f"{surrogate_dir}/")
    elif args.action == "artifacts":
        stats = artifact_stats()
        print(f"artifact dir : {artifacts.root}/")
        print(f"artifacts    : {len(artifacts)}")
        print(f"size         : {artifacts.size_bytes()} bytes")
        print(f"version      : {artifacts.version}")
        if stats.lookups:
            print(f"hit rate     : {stats.hits}/{stats.lookups} "
                  f"({stats.hit_rate:.1%}) since process start")
            for stage in sorted(stats.by_stage):
                hits, misses = stats.by_stage[stage]
                print(f"  {stage:13s}: {hits} hits / {misses} misses")
        else:
            # Counters are per-process: a standalone `repro cache
            # artifacts` invocation has not looked anything up yet.
            print("hit rate     : no artifact lookups in this process "
                  "(counters reset at process start)")
    elif args.action == "prune":
        if args.older_than is None:
            raise ConfigError("cache prune requires --older-than AGE")
        age = parse_age(args.older_than)
        records = store.prune(age)
        dropped = artifacts.prune(age)
        journals = _prune_journals(journals_dir, age)
        surrogates = _prune_surrogates(surrogate_dir, age)
        print(f"pruned {records} records from {store.root}/")
        print(f"pruned {dropped} artifacts from {artifacts.root}/")
        print(f"pruned {journals} run journals from {journals_dir}/")
        print(f"pruned {surrogates} surrogate models from "
              f"{surrogate_dir}/")
    else:
        journals = (len(list(journals_dir.glob("*.jsonl")))
                    if journals_dir.is_dir() else 0)
        surrogates = len(list_model_ids(args.cache_dir))
        print(f"cache dir : {store.root}/")
        print(f"records   : {len(store)}")
        print(f"artifacts : {len(artifacts)} "
              f"({artifacts.size_bytes()} bytes under {artifacts.root}/)")
        print(f"journals  : {journals}")
        print(f"surrogates: {surrogates} model artifacts under "
              f"{surrogate_dir}/")
        print(f"size      : {store.size_bytes()} bytes")
        print(f"version   : {store.version}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro import bench

    if args.action == "run":
        config = bench.GridConfig.load(args.grid)

        def progress(pos: int, total: int, key: str) -> None:
            sys.stderr.write(f"[{pos + 1}/{total}] series {key}\n")
            sys.stderr.flush()

        trajectory = bench.run_grid(config, repeat=args.repeat,
                                    progress=progress, engine=args.engine)
        paths = bench.write_trajectory(trajectory, args.out_dir)
        print(bench.render(trajectory))
        print(f"trajectory -> {paths['json']}")
        print(f"csv        -> {paths['csv']}")
        return 0

    # compare
    current = bench.load_trajectory(args.current)
    previous = bench.load_trajectory(args.against)
    outcome = bench.compare(current, previous,
                            threshold=args.threshold / 100.0)
    print(outcome.render())
    return 0 if outcome.ok else 1


def _cmd_obs(args: argparse.Namespace) -> int:
    try:
        if args.action == "trace":
            text = obs.summarize_events(obs.load_events(args.file))
        else:
            text = obs.load_snapshot(args.file).render()
    except OSError as exc:
        raise ConfigError(f"cannot read {args.file}: {exc}")
    except ValueError as exc:
        raise ConfigError(f"{args.file} is not a valid "
                          f"{args.action} file: {exc}")
    print(text)
    return 0


_COMMANDS = {
    "run": _cmd_run,
    "figure": _cmd_figure,
    "table": _cmd_table,
    "scenarios": _cmd_scenarios,
    "surrogate": _cmd_surrogate,
    "check": _cmd_check,
    "list": _cmd_list,
    "cache": _cmd_cache,
    "bench": _cmd_bench,
    "obs": _cmd_obs,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        with _observed(args):
            return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
