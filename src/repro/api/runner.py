"""Plan execution: a streaming, resumable core over stores and workers.

The :class:`Runner` is the only component that touches both the stores
and the executor.  Its primitive is :meth:`Runner.stream`, a generator
that yields results *as they complete*:

1. every spec is looked up in the :class:`~repro.api.store.ResultStore`
   by content hash; hits are yielded immediately;
2. misses are grouped by :attr:`~repro.api.spec.RunSpec.frontend_key`,
   so the specs of one coherence × heuristic cross — which share their
   compilation front end verbatim — execute together and hit each
   other's warm artifacts.  Serially the shared
   :class:`~repro.api.artifacts.ArtifactStore` makes that automatic;
   under ``parallel`` each *group* becomes one pool task fanned out over
   one persistent worker pool via ``imap_unordered`` (when there are
   fewer groups than requested workers, the largest groups are split so
   occupancy never drops below what the caller asked for; the pool is
   sized to the resulting task count, so tiny plans never spawn idle
   processes).  In-flight groups are bounded (``max_inflight``) for
   backpressure: a slow consumer never forces the whole plan's payloads
   into the task queue at once;
3. fresh records are stored (and journalled, when a
   :class:`~repro.api.journal.RunJournal` is attached) the moment they
   arrive; failures become structured :class:`RunError` records instead
   of killing sibling specs mid-flight.

:meth:`Runner.run` is a thin wrapper that drains the stream and
reassembles plan order — byte-identical to the historical batch
behaviour.  With a journal plus the on-disk store, a killed run resumes
where it stopped: completed groups are store hits, the journal carries
what finished and what failed.
"""

from __future__ import annotations

import copy
import multiprocessing
import threading
import time
import traceback as _tb
import warnings
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro import errors as _errors
from repro.api.artifacts import (
    ArtifactStore,
    DiskArtifactStore,
    MemoryArtifactStore,
    default_artifact_store,
)
from repro.api.core import (
    execute_spec,
    execute_specs_batch,
    suppress_floor_warning,
    warn_floor_from_record,
)
from repro.api.journal import RunJournal
from repro.api.records import RunRecord
from repro.api.spec import Plan, RunSpec
from repro.api.store import ResultStore, default_store
from repro.errors import ExecutionError, SimulationError
from repro.obs import metrics, trace
from repro.sim.batch import DEFAULT_BATCH_SIZE
from repro.sim.executor import ENGINES

PlanLike = Union[Plan, Iterable[RunSpec]]

#: ``progress`` callbacks receive ``(completed, total, item)``.
ProgressFn = Callable[[int, int, "StreamItem"], None]


@dataclass
class RunError:
    """Structured record of one spec's failure.

    Captured in the worker (or inline, serially) so one bad spec cannot
    kill its siblings; journalled for post-mortems and retried on
    resume.  ``spec``/``spec_key`` identify the work, ``error_type`` is
    the exception class name, ``traceback`` the formatted worker-side
    stack.
    """

    spec: Dict[str, object]
    spec_key: str
    error_type: str
    message: str
    traceback: str = ""
    #: The live exception, when the failure happened in this process
    #: (never crosses pickling boundaries; lets serial re-raise preserve
    #: the original object).
    _exception: Optional[BaseException] = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_exception(cls, spec: RunSpec, spec_key: str,
                       exc: BaseException) -> "RunError":
        return cls(
            spec=spec.to_dict(),
            spec_key=spec_key,
            error_type=type(exc).__name__,
            message=str(exc),
            traceback="".join(
                _tb.format_exception(type(exc), exc, exc.__traceback__)
            ),
            _exception=exc,
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "spec": self.spec,
            "spec_key": self.spec_key,
            "error_type": self.error_type,
            "message": self.message,
            "traceback": self.traceback,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunError":
        return cls(
            spec=dict(data.get("spec") or {}),
            spec_key=str(data.get("spec_key", "")),
            error_type=str(data.get("error_type", "Exception")),
            message=str(data.get("message", "")),
            traceback=str(data.get("traceback", "")),
        )

    def exception(self) -> BaseException:
        """The failure as a raisable exception.

        The original object when it never left this process; otherwise a
        reconstructed :mod:`repro.errors` instance of the same type, or
        an :class:`~repro.errors.ExecutionError` carrying the worker
        traceback when the type cannot be rebuilt faithfully.
        """
        if self._exception is not None:
            return self._exception
        cls = getattr(_errors, self.error_type, None)
        if (isinstance(cls, type) and issubclass(cls, _errors.ReproError)
                and cls is not _errors.ReproError):
            try:
                return cls(self.message)
            except Exception:  # pragma: no cover - exotic signature
                pass
        detail = f"\n{self.traceback}" if self.traceback else ""
        return ExecutionError(
            f"{self.error_type}: {self.message} "
            f"(spec {self.spec_key}){detail}"
        )

    def reraise(self) -> None:
        raise self.exception()


StreamItem = Union[RunRecord, RunError]


# ----------------------------------------------------------------------
# Pool worker side
# ----------------------------------------------------------------------
def _worker_init() -> None:
    """Pool worker initializer: the one-time kernel-iteration-floor
    warning is per-process, so without suppression every worker would
    re-emit it; the parent surfaces a single warning from the returned
    records instead."""
    suppress_floor_warning()


def _worker_group(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Top-level (hence picklable) pool worker: one front-end group in,
    one result dict per spec out, so payloads cross process boundaries
    as pure JSON-able data.  Failures are captured per spec — a bad spec
    reports a structured error instead of poisoning its group.

    With an ``artifact_root`` the worker replays/records front-end
    artifacts on disk (shared with every other worker and process);
    without one it falls back to its process-local default store, which
    still makes sibling variants of the group warm for each other.

    Observability: the task runs under a *captured* metrics registry
    whose snapshot travels back in the result envelope — the parent
    merges it on receipt, so artifact hit/miss counters, stage timings
    and per-spec latencies survive the process boundary instead of
    dying with the worker (the historical ``repro cache artifacts``
    under-reporting bug).  With ``payload["trace"]`` the task also runs
    under a private tracer whose spans ship back for wall-clock
    re-basing into the parent trace.
    """
    root = payload.get("artifact_root")
    artifacts = (
        DiskArtifactStore(root, version=payload.get("artifact_version"))
        if root else default_artifact_store()
    )
    results: List[Dict[str, object]] = []
    worker_tracer = trace.Tracer() if payload.get("trace") else None
    metrics_enabled = bool(payload.get("metrics_enabled", True))
    engine = payload.get("engine", "events")
    with metrics.capture(enabled=metrics_enabled) as reg:
        previous_tracer = trace.set_tracer(worker_tracer)
        try:
            if engine == "batch":
                # The whole group co-simulates in one BatchSimulator
                # pass; per-spec latency is the amortized share.
                specs = [RunSpec.from_dict(d) for d in payload["specs"]]
                start = time.perf_counter()
                items = execute_specs_batch(
                    specs, artifacts=artifacts,
                    batch_size=payload.get(
                        "batch_size") or DEFAULT_BATCH_SIZE,
                )
                elapsed = time.perf_counter() - start
                for spec, key, item in zip(specs, payload["keys"], items):
                    if isinstance(item, BaseException):
                        results.append({
                            "error": RunError.from_exception(
                                spec, key, item
                            ).to_dict()
                        })
                    else:
                        results.append({"record": item.to_dict()})
                    reg.observe("runner.spec_seconds",
                                elapsed / max(1, len(specs)),
                                mode="parallel-batch")
                reg.inc("runner.worker_busy_seconds", elapsed)
            else:
                # Default engine omits the kwarg: execute_spec doubles
                # with the historical (spec, artifacts) signature keep
                # working.
                engine_kwargs = (
                    {} if engine == "events" else {"engine": engine}
                )
                for data, key in zip(payload["specs"], payload["keys"]):
                    spec = RunSpec.from_dict(data)
                    start = time.perf_counter()
                    try:
                        record = execute_spec(spec, artifacts=artifacts,
                                              **engine_kwargs)
                        results.append({"record": record.to_dict()})
                    except Exception as exc:
                        results.append({
                            "error": RunError.from_exception(
                                spec, key, exc
                            ).to_dict()
                        })
                    elapsed = time.perf_counter() - start
                    reg.observe("runner.spec_seconds", elapsed,
                                mode="parallel")
                    reg.inc("runner.worker_busy_seconds", elapsed)
        finally:
            trace.set_tracer(previous_tracer)
    envelope: Dict[str, object] = {
        "task": payload["task"],
        "results": results,
    }
    if metrics_enabled:
        envelope["metrics"] = reg.snapshot()
    if worker_tracer is not None:
        envelope["trace"] = worker_tracer.export()
    return envelope


class Runner:
    """Executes plans against a result store and an artifact store.

    ``parallel=None`` (or 0/1) runs serially in-process; ``parallel=N``
    fans miss *groups* out over at most ``N`` worker processes;
    ``parallel=-1`` uses every available CPU (clamped to the number of
    tasks, so small plans spawn small pools).  The worker pool persists
    across plans — a sweep driver issuing many plans pays the fork cost
    once; :meth:`close` (or the context-manager exit) tears it down.

    ``max_inflight`` bounds how many groups may be queued or executing
    at once during streaming (default: twice the worker count).

    ``engine`` selects the simulation engine for store misses
    (``"events"``, ``"cycles"``, or ``"batch"``).  Under ``"batch"``,
    misses co-simulate through one
    :class:`~repro.sim.batch.BatchSimulator` per chunk of up to
    ``batch_size`` specs (serially), or one per miss group (under
    ``parallel``, which fans whole batches across workers).  Records
    are engine-independent, so mixing engines across runs never splits
    the result store.
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 parallel: Optional[int] = None,
                 artifacts: Optional[ArtifactStore] = None,
                 max_inflight: Optional[int] = None,
                 engine: str = "events",
                 batch_size: Optional[int] = None) -> None:
        if engine not in ENGINES:
            raise SimulationError(
                f"unknown simulation engine {engine!r}; expected one of "
                f"{ENGINES}"
            )
        if batch_size is not None and batch_size < 1:
            raise SimulationError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        self._store = store
        self._artifacts = artifacts
        self.parallel = parallel
        self.max_inflight = max_inflight
        self.engine = engine
        self.batch_size = batch_size
        self._pool: Optional[multiprocessing.pool.Pool] = None
        self._pool_size = 0

    @property
    def store(self) -> ResultStore:
        return self._store if self._store is not None else default_store()

    @property
    def artifacts(self) -> ArtifactStore:
        if self._artifacts is not None:
            return self._artifacts
        return default_artifact_store()

    # ------------------------------------------------------------------
    # Persistent pool management
    # ------------------------------------------------------------------
    def _ensure_pool(self, workers: int) -> multiprocessing.pool.Pool:
        if self._pool is not None and self._pool_size < workers:
            self.close()  # grow: replace the undersized pool
        if self._pool is None:
            self._pool = multiprocessing.Pool(
                processes=workers, initializer=_worker_init
            )
            self._pool_size = workers
        return self._pool

    def close(self) -> None:
        """Tear down the persistent worker pool (idempotent)."""
        pool, self._pool, self._pool_size = self._pool, None, 0
        if pool is not None:
            pool.terminate()
            pool.join()

    def __enter__(self) -> "Runner":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC timing
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Public execution surface
    # ------------------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunRecord:
        return self.run(Plan.single(spec))[0]

    def run(self, plan: PlanLike, *,
            journal: Optional[RunJournal] = None,
            progress: Optional[ProgressFn] = None) -> List[RunRecord]:
        """Execute (or fetch) every spec; records come back in plan
        order, byte-identical to the historical batch behaviour.

        A thin wrapper over :meth:`stream`: results are reassembled into
        plan order as the stream completes them, and the first failure
        re-raises (serially, the original exception object).
        """
        if not isinstance(plan, Plan):
            plan = Plan(tuple(plan))
        total = len(plan.specs)
        records: List[Optional[RunRecord]] = [None] * total
        done = 0
        for index, item in self._stream(plan, journal, on_error="raise"):
            records[index] = item  # on_error="raise": always a RunRecord
            done += 1
            if progress is not None:
                progress(done, total, item)
        return records  # type: ignore[return-value]

    def stream(self, plan: PlanLike, *,
               journal: Optional[RunJournal] = None,
               on_error: str = "raise") -> Iterator[StreamItem]:
        """Yield one result per plan spec in *completion* order.

        Store hits stream out immediately; computed groups follow as the
        pool (or the serial loop) finishes them.  ``on_error="raise"``
        re-raises the first failure; ``on_error="yield"`` emits
        structured :class:`RunError` items in place of records so a
        sweep can keep going around a poisoned spec.  Attach a
        ``journal`` to checkpoint progress for ``--resume``.
        """
        if not isinstance(plan, Plan):
            plan = Plan(tuple(plan))
        for _index, item in self._stream(plan, journal, on_error):
            yield item

    # ------------------------------------------------------------------
    # Streaming core
    # ------------------------------------------------------------------
    def _stream(self, plan: Plan, journal: Optional[RunJournal],
                on_error: str) -> Iterator[Tuple[int, StreamItem]]:
        if on_error not in ("raise", "yield"):
            raise ValueError(
                f"on_error must be 'raise' or 'yield', not {on_error!r}"
            )
        store = self.store
        keys = [spec.content_hash for spec in plan.specs]
        key_indices: Dict[str, List[int]] = {}
        for i, key in enumerate(keys):
            key_indices.setdefault(key, []).append(i)
        if journal is not None:
            journal.begin(plan)
        misses: List[int] = []
        for i, key in enumerate(keys):
            if key_indices[key][0] != i:
                continue  # duplicate content hash: primary index covers it
            record = store.get(key)
            metrics.inc("runner.store_lookups",
                        outcome="miss" if record is None else "hit")
            if record is None:
                misses.append(i)
                continue
            if journal is not None:
                journal.note_done(key)
            # Tag a shallow copy: a MemoryStore hands back the object it
            # stored, and mutating it would retroactively relabel the
            # record the original simulation yielded.
            record = copy.copy(record)
            record.source = "store"
            for j in key_indices[key]:
                yield j, record
        if not misses:
            return
        for i, item in self._execute_stream(plan, keys, misses):
            key = keys[i]
            if isinstance(item, RunRecord):
                store.put(key, item)
                if journal is not None:
                    journal.note_done(key)
                for j in key_indices[key]:
                    yield j, item
            else:
                if journal is not None:
                    journal.note_error(key, item)
                if on_error == "raise":
                    item.reraise()
                for j in key_indices[key]:
                    yield j, item

    def _execute_stream(
        self, plan: Plan, keys: List[str], misses: List[int]
    ) -> Iterator[Tuple[int, StreamItem]]:
        """Execute the missing specs, yielding ``(plan index, item)`` in
        completion order."""
        specs = [plan.specs[i] for i in misses]
        workers = self._effective_parallel(len(specs))
        if workers <= 1:
            # The shared artifact store already makes sibling variants
            # warm for each other; plan order is fine serially.
            artifacts = self.artifacts
            if self.engine == "batch":
                # Chunk misses into batches; each chunk's loops
                # co-simulate in one BatchSimulator pass.
                size = self.batch_size or DEFAULT_BATCH_SIZE
                for lo in range(0, len(specs), size):
                    chunk = specs[lo:lo + size]
                    start = time.perf_counter()
                    items = execute_specs_batch(
                        chunk, artifacts=artifacts, batch_size=size
                    )
                    elapsed = time.perf_counter() - start
                    for pos, raw in enumerate(items, start=lo):
                        item: StreamItem = (
                            RunError.from_exception(
                                specs[pos], keys[misses[pos]], raw
                            )
                            if isinstance(raw, BaseException) else raw
                        )
                        metrics.observe("runner.spec_seconds",
                                        elapsed / max(1, len(chunk)),
                                        mode="serial-batch")
                        yield misses[pos], item
                return
            # Default engine omits the kwarg so execute_spec doubles
            # with the historical (spec, artifacts) signature keep
            # working.
            engine_kwargs = (
                {} if self.engine == "events" else {"engine": self.engine}
            )
            for pos, spec in enumerate(specs):
                start = time.perf_counter()
                try:
                    item = execute_spec(spec, artifacts=artifacts,
                                        **engine_kwargs)
                except Exception as exc:
                    item = RunError.from_exception(
                        spec, keys[misses[pos]], exc
                    )
                metrics.observe("runner.spec_seconds",
                                time.perf_counter() - start, mode="serial")
                yield misses[pos], item
            return

        tasks = self._balance(self._group_indices(specs), workers)
        # Clamp to the post-split task count: a tiny plan on a many-core
        # machine (parallel=-1) must not spawn a pool of idle processes.
        workers = min(workers, len(tasks))
        artifacts = self.artifacts
        artifact_root = None
        artifact_version = None
        if isinstance(artifacts, DiskArtifactStore):
            artifact_root = str(artifacts.root)
            # Propagate the resolved version so workers read/write the
            # same entries even when the parent pinned a custom one.
            artifact_version = artifacts.version
        elif not isinstance(artifacts, MemoryArtifactStore):
            warnings.warn(
                "custom ArtifactStore cannot cross process boundaries; "
                "parallel workers fall back to per-worker in-memory "
                "artifact stores (use a DiskArtifactStore to share)",
                RuntimeWarning,
                stacklevel=3,
            )

        pool = self._ensure_pool(workers)
        limit = self.max_inflight or 2 * workers
        inflight = threading.Semaphore(max(1, limit))
        abort = [False]
        # Submitted-but-unconsumed task count, sampled into the
        # ``runner.inflight`` histogram at every receive so the stream's
        # effective queue depth (and thus backpressure behaviour) is
        # visible after the fact.
        depth_lock = threading.Lock()
        depth = [0]

        def payloads() -> Iterator[Dict[str, object]]:
            # Runs in the pool's feeder thread: the semaphore keeps at
            # most ``limit`` groups submitted-but-unconsumed, so a slow
            # consumer applies backpressure instead of letting the whole
            # plan pile up in the task queue.
            for t, indices in enumerate(tasks):
                inflight.acquire()
                if abort[0]:
                    return
                with depth_lock:
                    depth[0] += 1
                yield {
                    "task": t,
                    "specs": [specs[i].to_dict() for i in indices],
                    "keys": [keys[misses[i]] for i in indices],
                    "artifact_root": artifact_root,
                    "artifact_version": artifact_version,
                    "metrics_enabled": metrics.enabled(),
                    "trace": trace.tracer() is not None,
                    "engine": self.engine,
                    "batch_size": self.batch_size,
                }

        reg = metrics.registry()
        busy_before = reg.counter("runner.worker_busy_seconds")
        stream_start = time.perf_counter()
        try:
            for reply in pool.imap_unordered(_worker_group, payloads()):
                inflight.release()
                with depth_lock:
                    current = depth[0]
                    depth[0] -= 1
                metrics.observe("runner.inflight", current)
                metrics.inc("runner.tasks")
                snapshot = reply.get("metrics")
                if snapshot:
                    # Satellite-telemetry merge: fold the worker's
                    # per-task metric deltas (artifact hits/misses,
                    # stage timings, spec latencies...) into this
                    # process's registry.
                    reg.merge(snapshot)
                exported = reply.get("trace")
                if exported:
                    parent_tracer = trace.tracer()
                    if parent_tracer is not None:
                        parent_tracer.absorb(exported)
                for i, result in zip(tasks[reply["task"]],
                                     reply["results"]):
                    if "record" in result:
                        record = RunRecord.from_dict(result["record"])
                        # Workers suppress the one-time floor warning;
                        # surface a single parent-side one instead.
                        warn_floor_from_record(record)
                        yield misses[i], record
                    else:
                        yield misses[i], RunError.from_dict(
                            result["error"]
                        )
        finally:
            # Unblock the feeder if the consumer stopped early, so the
            # persistent pool stays usable for the next plan.
            abort[0] = True
            inflight.release()
            wall = time.perf_counter() - stream_start
            if wall > 0 and metrics.enabled():
                busy = reg.counter("runner.worker_busy_seconds")
                metrics.set_gauge(
                    "runner.worker_utilization",
                    (busy - busy_before) / (wall * workers),
                )

    # ------------------------------------------------------------------
    @staticmethod
    def _group_indices(specs: List[RunSpec]) -> List[List[int]]:
        """Partition spec indices by shared front-end key, preserving
        first-seen group order and in-group plan order."""
        groups: Dict[str, List[int]] = {}
        for index, spec in enumerate(specs):
            groups.setdefault(spec.frontend_key, []).append(index)
        return list(groups.values())

    @staticmethod
    def _balance(groups: List[List[int]], workers: int) -> List[List[int]]:
        """Split the largest groups until every worker has a task.

        Grouping must never *reduce* parallelism below what the caller
        asked for: a single 6-variant cross run with ``parallel=6`` should
        use six workers, not one.  Splitting a group trades some in-worker
        front-end sharing for occupancy — with a disk artifact store the
        split halves still share through the file system, and the loss is
        bounded by one redundant front end per extra worker.
        """
        tasks = [list(group) for group in groups]
        while len(tasks) < workers:
            largest = max(range(len(tasks)), key=lambda j: len(tasks[j]))
            if len(tasks[largest]) <= 1:
                break
            group = tasks.pop(largest)
            mid = (len(group) + 1) // 2
            tasks[largest:largest] = [group[:mid], group[mid:]]
        return tasks

    def _effective_parallel(self, num_tasks: int) -> int:
        parallel = self.parallel
        if parallel is None or parallel == 0:
            return 1
        if parallel < 0:
            parallel = multiprocessing.cpu_count()
        return max(1, min(parallel, num_tasks))


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------
def default_runner(parallel: Optional[int] = None) -> Runner:
    """A runner on the process-wide default stores."""
    return Runner(store=None, parallel=parallel)


def run(spec: RunSpec, store: Optional[ResultStore] = None) -> RunRecord:
    """Execute (or fetch) a single spec against ``store`` / the default."""
    return Runner(store=store).run_one(spec)
