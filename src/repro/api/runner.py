"""Plan execution: serial or ``multiprocessing``, store-backed.

The :class:`Runner` is the only component that touches both the stores
and the executor.  Given a plan it:

1. looks every spec up in its :class:`~repro.api.store.ResultStore` by
   content hash;
2. groups the misses by :attr:`~repro.api.spec.RunSpec.frontend_key`, so
   the specs of one coherence × heuristic cross — which share their
   compilation front end verbatim — execute together and hit each
   other's warm artifacts.  Serially the shared
   :class:`~repro.api.artifacts.ArtifactStore` makes that automatic;
   under ``parallel`` each *group* becomes one pool task, so siblings
   stay in one worker process even though workers don't share memory
   (when there are fewer groups than requested workers, the largest
   groups are split so occupancy never drops below what the caller
   asked for);
3. stores the fresh records and returns all records in plan order
   (grouping never reorders results).
"""

from __future__ import annotations

import multiprocessing
import warnings
from typing import Dict, Iterable, List, Optional, Union

from repro.api.artifacts import (
    ArtifactStore,
    DiskArtifactStore,
    MemoryArtifactStore,
    default_artifact_store,
)
from repro.api.core import execute_spec
from repro.api.records import RunRecord
from repro.api.spec import Plan, RunSpec
from repro.api.store import ResultStore, default_store

PlanLike = Union[Plan, Iterable[RunSpec]]


def _worker_group(payload: Dict[str, object]) -> List[Dict[str, object]]:
    """Top-level (hence picklable) pool worker: one front-end group in,
    one record dict per spec out, so payloads cross process boundaries
    as pure JSON-able data.

    With an ``artifact_root`` the worker replays/records front-end
    artifacts on disk (shared with every other worker and process);
    without one it falls back to its process-local default store, which
    still makes sibling variants of the group warm for each other.
    """
    root = payload.get("artifact_root")
    artifacts = (
        DiskArtifactStore(root, version=payload.get("artifact_version"))
        if root else default_artifact_store()
    )
    return [
        execute_spec(RunSpec.from_dict(data), artifacts=artifacts).to_dict()
        for data in payload["specs"]
    ]


class Runner:
    """Executes plans against a result store and an artifact store.

    ``parallel=None`` (or 0/1) runs serially in-process; ``parallel=N``
    fans miss *groups* out over ``N`` worker processes; ``parallel=-1``
    uses every available CPU.
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 parallel: Optional[int] = None,
                 artifacts: Optional[ArtifactStore] = None) -> None:
        self._store = store
        self._artifacts = artifacts
        self.parallel = parallel

    @property
    def store(self) -> ResultStore:
        return self._store if self._store is not None else default_store()

    @property
    def artifacts(self) -> ArtifactStore:
        if self._artifacts is not None:
            return self._artifacts
        return default_artifact_store()

    # ------------------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunRecord:
        return self.run(Plan.single(spec))[0]

    def run(self, plan: PlanLike) -> List[RunRecord]:
        if not isinstance(plan, Plan):
            plan = Plan(tuple(plan))
        store = self.store
        keys = [spec.content_hash for spec in plan]
        records: List[Optional[RunRecord]] = [
            store.get(key) for key in keys
        ]
        misses = [i for i, record in enumerate(records) if record is None]
        if misses:
            specs = [plan.specs[i] for i in misses]
            for i, record in zip(misses, self._execute(specs)):
                store.put(keys[i], record)
                records[i] = record
        return records  # type: ignore[return-value]

    # ------------------------------------------------------------------
    @staticmethod
    def _group_indices(specs: List[RunSpec]) -> List[List[int]]:
        """Partition spec indices by shared front-end key, preserving
        first-seen group order and in-group plan order."""
        groups: Dict[str, List[int]] = {}
        for index, spec in enumerate(specs):
            groups.setdefault(spec.frontend_key, []).append(index)
        return list(groups.values())

    @staticmethod
    def _balance(groups: List[List[int]], workers: int) -> List[List[int]]:
        """Split the largest groups until every worker has a task.

        Grouping must never *reduce* parallelism below what the caller
        asked for: a single 6-variant cross run with ``parallel=6`` should
        use six workers, not one.  Splitting a group trades some in-worker
        front-end sharing for occupancy — with a disk artifact store the
        split halves still share through the file system, and the loss is
        bounded by one redundant front end per extra worker.
        """
        tasks = [list(group) for group in groups]
        while len(tasks) < workers:
            largest = max(range(len(tasks)), key=lambda j: len(tasks[j]))
            if len(tasks[largest]) <= 1:
                break
            group = tasks.pop(largest)
            mid = (len(group) + 1) // 2
            tasks[largest:largest] = [group[:mid], group[mid:]]
        return tasks

    def _execute(self, specs: List[RunSpec]) -> List[RunRecord]:
        workers = self._effective_parallel(len(specs))
        if workers <= 1:
            # The shared artifact store already makes sibling variants
            # warm for each other; plan order is fine serially.
            artifacts = self.artifacts
            return [
                execute_spec(spec, artifacts=artifacts) for spec in specs
            ]
        tasks = self._balance(self._group_indices(specs), workers)
        workers = min(workers, len(tasks))
        artifacts = self.artifacts
        artifact_root = None
        artifact_version = None
        if isinstance(artifacts, DiskArtifactStore):
            artifact_root = str(artifacts.root)
            # Propagate the resolved version so workers read/write the
            # same entries even when the parent pinned a custom one.
            artifact_version = artifacts.version
        elif not isinstance(artifacts, MemoryArtifactStore):
            warnings.warn(
                "custom ArtifactStore cannot cross process boundaries; "
                "parallel workers fall back to per-worker in-memory "
                "artifact stores (use a DiskArtifactStore to share)",
                RuntimeWarning,
                stacklevel=3,
            )
        payloads = [
            {
                "specs": [specs[i].to_dict() for i in indices],
                "artifact_root": artifact_root,
                "artifact_version": artifact_version,
            }
            for indices in tasks
        ]
        with multiprocessing.Pool(processes=workers) as pool:
            grouped_results = pool.map(_worker_group, payloads)
        results: List[Optional[RunRecord]] = [None] * len(specs)
        for indices, dicts in zip(tasks, grouped_results):
            for i, data in zip(indices, dicts):
                results[i] = RunRecord.from_dict(data)
        return results  # type: ignore[return-value]

    def _effective_parallel(self, num_tasks: int) -> int:
        parallel = self.parallel
        if parallel is None or parallel == 0:
            return 1
        if parallel < 0:
            parallel = multiprocessing.cpu_count()
        return max(1, min(parallel, num_tasks))


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------
def default_runner(parallel: Optional[int] = None) -> Runner:
    """A runner on the process-wide default stores."""
    return Runner(store=None, parallel=parallel)


def run(spec: RunSpec, store: Optional[ResultStore] = None) -> RunRecord:
    """Execute (or fetch) a single spec against ``store`` / the default."""
    return Runner(store=store).run_one(spec)
