"""Plan execution: serial or ``multiprocessing``, store-backed.

The :class:`Runner` is the only component that touches both the store
and the executor.  Given a plan it:

1. looks every spec up in its :class:`~repro.api.store.ResultStore` by
   content hash;
2. computes the misses — serially, or fanned out over a process pool
   when ``parallel`` is set (results come back in submission order, so
   output ordering is deterministic either way);
3. stores the fresh records and returns all records in plan order.
"""

from __future__ import annotations

import multiprocessing
from typing import Dict, Iterable, List, Optional, Union

from repro.api.core import execute_spec
from repro.api.records import RunRecord
from repro.api.spec import Plan, RunSpec
from repro.api.store import ResultStore, default_store

PlanLike = Union[Plan, Iterable[RunSpec]]


def _worker(payload: Dict[str, object]) -> Dict[str, object]:
    """Top-level (hence picklable) pool worker: dict in, dict out, so the
    payload crosses process boundaries as pure JSON-able data."""
    record = execute_spec(RunSpec.from_dict(payload))
    return record.to_dict()


class Runner:
    """Executes plans against a result store.

    ``parallel=None`` (or 0/1) runs serially in-process; ``parallel=N``
    fans misses out over ``N`` worker processes; ``parallel=-1`` uses
    every available CPU.
    """

    def __init__(self, store: Optional[ResultStore] = None,
                 parallel: Optional[int] = None) -> None:
        self._store = store
        self.parallel = parallel

    @property
    def store(self) -> ResultStore:
        return self._store if self._store is not None else default_store()

    # ------------------------------------------------------------------
    def run_one(self, spec: RunSpec) -> RunRecord:
        return self.run(Plan.single(spec))[0]

    def run(self, plan: PlanLike) -> List[RunRecord]:
        if not isinstance(plan, Plan):
            plan = Plan(tuple(plan))
        store = self.store
        keys = [spec.content_hash for spec in plan]
        records: List[Optional[RunRecord]] = [
            store.get(key) for key in keys
        ]
        misses = [i for i, record in enumerate(records) if record is None]
        if misses:
            specs = [plan.specs[i] for i in misses]
            for i, record in zip(misses, self._execute(specs)):
                store.put(keys[i], record)
                records[i] = record
        return records  # type: ignore[return-value]

    # ------------------------------------------------------------------
    def _execute(self, specs: List[RunSpec]) -> List[RunRecord]:
        workers = self._effective_parallel(len(specs))
        if workers <= 1:
            return [execute_spec(spec) for spec in specs]
        payloads = [spec.to_dict() for spec in specs]
        with multiprocessing.Pool(processes=workers) as pool:
            results = pool.map(_worker, payloads)
        return [RunRecord.from_dict(data) for data in results]

    def _effective_parallel(self, num_specs: int) -> int:
        parallel = self.parallel
        if parallel is None or parallel == 0:
            return 1
        if parallel < 0:
            parallel = multiprocessing.cpu_count()
        return max(1, min(parallel, num_specs))


# ----------------------------------------------------------------------
# Module-level conveniences
# ----------------------------------------------------------------------
def default_runner(parallel: Optional[int] = None) -> Runner:
    """A runner on the process-wide default store."""
    return Runner(store=None, parallel=parallel)


def run(spec: RunSpec, store: Optional[ResultStore] = None) -> RunRecord:
    """Execute (or fetch) a single spec against ``store`` / the default."""
    return Runner(store=store).run_one(spec)
