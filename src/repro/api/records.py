"""Structured run results.

:class:`RunRecord` (one benchmark × variant × machine) and
:class:`LoopRecord` (one loop thereof) subsume the legacy
``BenchmarkRun``/``LoopRun`` pair: they expose the same aggregate
properties the figure/table drivers consume, *and* round-trip through
plain dicts so they can live in an on-disk :class:`~repro.api.store.DiskStore`
and cross ``multiprocessing`` pickling boundaries as pure JSON.
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.sim.stats import AccessType, SimStats


@dataclass
class LoopRecord:
    """Result of compiling + simulating one loop under one variant."""

    benchmark: str
    loop: str
    variant: str
    ii: int
    unroll: int
    kernel_iterations: int
    compute_cycles: int
    stall_cycles: int
    stats: SimStats
    violations: int
    static_copies: int
    replicated_instances: int
    fake_consumers: int
    #: When the kernel-iteration floor inflated a tiny scaled run, the
    #: floor that was applied (e.g. 32); 0 when the natural iteration
    #: count was simulated as-is.
    iteration_floor: int = 0

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def dynamic_copies(self) -> int:
        """Communication operations executed (Table 4's metric)."""
        return self.static_copies * self.kernel_iterations

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "benchmark": self.benchmark,
            "loop": self.loop,
            "variant": self.variant,
            "ii": self.ii,
            "unroll": self.unroll,
            "kernel_iterations": self.kernel_iterations,
            "compute_cycles": self.compute_cycles,
            "stall_cycles": self.stall_cycles,
            "stats": self.stats.to_dict(),
            "violations": self.violations,
            "static_copies": self.static_copies,
            "replicated_instances": self.replicated_instances,
            "fake_consumers": self.fake_consumers,
            "iteration_floor": self.iteration_floor,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LoopRecord":
        return cls(
            benchmark=data["benchmark"],
            loop=data["loop"],
            variant=data["variant"],
            ii=int(data["ii"]),
            unroll=int(data["unroll"]),
            kernel_iterations=int(data["kernel_iterations"]),
            compute_cycles=int(data["compute_cycles"]),
            stall_cycles=int(data["stall_cycles"]),
            stats=SimStats.from_dict(data["stats"]),
            violations=int(data["violations"]),
            static_copies=int(data["static_copies"]),
            replicated_instances=int(data["replicated_instances"]),
            fake_consumers=int(data["fake_consumers"]),
            iteration_floor=int(data.get("iteration_floor", 0)),
        )


@dataclass
class RunRecord:
    """All loops of one benchmark under one variant/machine/scale."""

    benchmark: str
    variant: str
    machine: str = "baseline"
    attraction: bool = False
    scale: float = 0.5
    spec_key: str = ""
    model: str = "snooping"
    loops: List[LoopRecord] = field(default_factory=list)
    #: Runtime provenance: ``"simulated"`` for freshly computed records,
    #: ``"store"`` when the runner served the record from a result store.
    #: Deliberately excluded from equality and serialization — the same
    #: result must hash/compare identically however it was obtained.
    source: str = field(default="simulated", compare=False)

    # ------------------------------------------------------------------
    # Aggregates (the BenchmarkRun surface the drivers consume)
    # ------------------------------------------------------------------
    @property
    def compute_cycles(self) -> int:
        return sum(run.compute_cycles for run in self.loops)

    @property
    def stall_cycles(self) -> int:
        return sum(run.stall_cycles for run in self.loops)

    @property
    def total_cycles(self) -> int:
        return self.compute_cycles + self.stall_cycles

    @property
    def dynamic_copies(self) -> int:
        return sum(run.dynamic_copies for run in self.loops)

    @property
    def violations(self) -> int:
        return sum(run.violations for run in self.loops)

    def merged_stats(self) -> SimStats:
        merged = SimStats()
        for run in self.loops:
            merged = merged.merged_with(run.stats)
        return merged

    def access_fractions(self) -> Dict[AccessType, float]:
        return self.merged_stats().access_fractions()

    @property
    def local_hit_ratio(self) -> float:
        return self.merged_stats().local_hit_ratio

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "benchmark": self.benchmark,
            "variant": self.variant,
            "machine": self.machine,
            "attraction": self.attraction,
            "scale": self.scale,
            "spec_key": self.spec_key,
            "loops": [loop.to_dict() for loop in self.loops],
        }
        # Only non-default models are serialized, so pre-model record
        # dicts (and their goldens) stay byte-identical.
        if self.model != "snooping":
            data["model"] = self.model
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        return cls(
            benchmark=data["benchmark"],
            variant=data["variant"],
            machine=data.get("machine", "baseline"),
            attraction=bool(data.get("attraction", False)),
            scale=float(data.get("scale", 0.5)),
            spec_key=data.get("spec_key", ""),
            model=data.get("model", "snooping"),
            loops=[LoopRecord.from_dict(d) for d in data.get("loops", [])],
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        return cls.from_dict(json.loads(text))


# ----------------------------------------------------------------------
# Bulk export helpers
# ----------------------------------------------------------------------
CSV_COLUMNS = (
    "benchmark", "loop", "variant", "machine", "attraction", "scale",
    "ii", "unroll", "kernel_iterations", "compute_cycles", "stall_cycles",
    "total_cycles", "violations", "static_copies", "dynamic_copies",
    "replicated_instances", "fake_consumers", "local_hit_ratio",
)


def records_to_csv(records: Iterable[RunRecord]) -> str:
    """One CSV row per loop, with the owning record's context columns."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for record in records:
        for loop in record.loops:
            writer.writerow([
                record.benchmark, loop.loop, record.variant, record.machine,
                int(record.attraction), record.scale,
                loop.ii, loop.unroll, loop.kernel_iterations,
                loop.compute_cycles, loop.stall_cycles, loop.total_cycles,
                loop.violations, loop.static_copies, loop.dynamic_copies,
                loop.replicated_instances, loop.fake_consumers,
                f"{loop.stats.local_hit_ratio:.6f}",
            ])
    return out.getvalue()


def records_to_json(records: Iterable[RunRecord],
                    indent: Optional[int] = 2) -> str:
    return json.dumps([r.to_dict() for r in records], sort_keys=True,
                      indent=indent)
