"""Content-addressed compilation artifacts.

One layer below the :class:`~repro.api.store.ResultStore`: where the
result store caches a *finished* ``RunRecord`` per spec hash, the
artifact store caches the intermediate products of the compilation
pipeline's front-end stages (unrolled graphs, disambiguated graphs,
preferred-cluster profiles), keyed by the content hashes
:mod:`repro.sched.stages` derives.  The paper's 6-way
coherence × heuristic cross shares those stages verbatim, so a
differential sweep that would re-run the front end six times per loop
hits warm artifacts five times instead.

Two implementations:

* :class:`MemoryArtifactStore` — process-local (the default);
* :class:`DiskArtifactStore` — one JSON file per artifact under
  ``.repro_cache/artifacts/``, on the hardened
  :class:`~repro.api.store.JsonFileStore` machinery (atomic writes,
  torn-read retries, version stamping, pruning, prefix-sharded
  directories with the lazily maintained index that keeps store-wide
  operations scan-free; legacy flat layouts stay readable and migrate
  on write).

Both return callers a *fresh* decode of the stored JSON on every get, so
a pipeline mutating the graph it built from an artifact can never poison
the cache.  Process-wide hit/miss counters feed the ``repro cache
artifacts`` CLI verb and the stage benchmarks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.api.store import JsonFileStore, resolve_cache_root
from repro.obs import metrics, trace

#: Subdirectory of the cache root that holds artifacts.
ARTIFACT_SUBDIR = "artifacts"


def artifact_root(cache_root: Union[str, Path, None] = None) -> Path:
    """The artifact directory for a cache root (default: the process
    cache root, i.e. ``.repro_cache/artifacts/`` or
    ``$REPRO_CACHE_DIR/artifacts/``)."""
    return resolve_cache_root(cache_root) / ARTIFACT_SUBDIR


# ----------------------------------------------------------------------
# Process-wide counters
# ----------------------------------------------------------------------
@dataclass
class ArtifactStats:
    """Hit/miss/put counters.

    Since the `repro.obs` migration this is a *snapshot view* built by
    :func:`artifact_stats` from the process metrics registry
    (``artifacts.lookups`` labeled by stage and outcome,
    ``artifacts.puts``) — fetch it after the work you want to measure.
    Because the runner merges each pool worker's metric deltas back into
    the parent registry, the view now covers ``parallel>1`` runs too.
    """

    hits: int = 0
    misses: int = 0
    puts: int = 0
    #: per stage-name breakdown, ``{"unroll": [hits, misses], ...}``
    by_stage: Dict[str, list] = field(default_factory=dict)

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record(self, key: str, hit: bool) -> None:
        if hit:
            self.hits += 1
        else:
            self.misses += 1
        stage = key.split("-", 1)[0]
        cell = self.by_stage.setdefault(stage, [0, 0])
        cell[0 if hit else 1] += 1


def _record_lookup(key: str, hit: bool) -> None:
    metrics.inc("artifacts.lookups", stage=key.split("-", 1)[0],
                outcome="hit" if hit else "miss")


def artifact_stats() -> ArtifactStats:
    """Current artifact counters, read out of the metrics registry."""
    stats = ArtifactStats()
    reg = metrics.registry()
    for labels, value in reg.counter_items("artifacts.lookups"):
        stage = labels.get("stage", "")
        hit = labels.get("outcome") == "hit"
        cell = stats.by_stage.setdefault(stage, [0, 0])
        cell[0 if hit else 1] += int(value)
        if hit:
            stats.hits += int(value)
        else:
            stats.misses += int(value)
    stats.puts = int(reg.counter("artifacts.puts"))
    return stats


def reset_artifact_stats() -> None:
    """Zero the artifact metrics (tests and benchmarks)."""
    metrics.registry().reset("artifacts.")


# ----------------------------------------------------------------------
# Stores
# ----------------------------------------------------------------------
class ArtifactStore:
    """Interface: a keyed store of JSON-able artifact payloads.

    ``get`` returns a payload the caller owns outright (mutating it never
    affects the store).  Implementations provide ``_get``/``_put`` over
    canonical JSON text; this base class adds the counters.
    """

    def get(self, key: str) -> Optional[dict]:
        with trace.span("artifact.get", cat="artifact", key=key):
            text = self._get(key)
        _record_lookup(key, hit=text is not None)
        if text is None:
            return None
        return json.loads(text)

    def put(self, key: str, payload: dict) -> str:
        """Store ``payload``; returns its canonical JSON text so callers
        that immediately replay what they stored (the staged pipeline's
        cold path) can decode it without re-encoding."""
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        with trace.span("artifact.put", cat="artifact", key=key):
            self._put(key, text)
        metrics.inc("artifacts.puts")
        return text

    # -- implementation hooks ------------------------------------------
    def _get(self, key: str) -> Optional[str]:
        raise NotImplementedError

    def _put(self, key: str, text: str) -> None:
        raise NotImplementedError

    def clear(self) -> int:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self._get(key) is not None


class MemoryArtifactStore(ArtifactStore):
    """Process-local artifact store over canonical JSON text.

    Storing *text* (not live objects) keeps its semantics identical to
    the disk store: every get decodes afresh, so warm in-memory hits and
    warm cross-process disk hits replay byte-identical payloads.
    """

    def __init__(self) -> None:
        self._entries: Dict[str, str] = {}

    def _get(self, key: str) -> Optional[str]:
        return self._entries.get(key)

    def _put(self, key: str, text: str) -> None:
        self._entries[key] = text

    def clear(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        return count

    def keys(self) -> Iterator[str]:
        return iter(tuple(self._entries))


class DiskArtifactStore(JsonFileStore, ArtifactStore):
    """One JSON file per artifact under ``root`` (default
    ``.repro_cache/artifacts/``), version-stamped and prefix-sharded
    like the record store.

    Payload text is memoized in-process after the first read, so a sweep
    re-deriving the same stage key pays the disk read once.
    """

    PAYLOAD_FIELD = "artifact"

    def __init__(self, root: Union[str, Path, None] = None,
                 version: Optional[str] = None) -> None:
        if root is None:
            root = artifact_root()
        JsonFileStore.__init__(self, root, version)
        self._memo: Dict[str, str] = {}

    def _get(self, key: str) -> Optional[str]:
        memoized = self._memo.get(key)
        if memoized is not None:
            return memoized
        payload = self.get_payload(key)
        if payload is None:
            return None
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        self._memo[key] = text
        return text

    def _put(self, key: str, text: str) -> None:
        self.put_payload(key, json.loads(text))
        self._memo[key] = text

    def clear(self) -> int:
        self._memo.clear()
        return JsonFileStore.clear(self)

    def prune(self, older_than_seconds, now=None) -> int:
        removed = JsonFileStore.prune(self, older_than_seconds, now)
        if removed:
            # Keep get/keys/len consistent: never serve pruned entries
            # from the in-process memo.
            self._memo.clear()
        return removed


# ----------------------------------------------------------------------
# Process-wide default
# ----------------------------------------------------------------------
_DEFAULT_ARTIFACTS: ArtifactStore = MemoryArtifactStore()


def default_artifact_store() -> ArtifactStore:
    """The process-wide artifact store used when none is given."""
    return _DEFAULT_ARTIFACTS


def set_default_artifact_store(store: ArtifactStore) -> ArtifactStore:
    """Swap the process-wide artifact store; returns the previous one."""
    global _DEFAULT_ARTIFACTS
    previous = _DEFAULT_ARTIFACTS
    _DEFAULT_ARTIFACTS = store
    return previous
