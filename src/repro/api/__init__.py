"""`repro.api` — the package's single front door.

Every figure and table of the CGO 2003 evaluation aggregates the same
unit of work: *compile loop L of benchmark B under coherence solution C
with heuristic H on machine M, then simulate it*.  This subsystem makes
that unit a first-class, declarative object:

* :class:`RunSpec` — one frozen, content-hashable unit of work;
* :class:`Plan` — an ordered collection of specs with grid/sweep
  constructors (``Plan.grid(benchmarks=..., variants=...)``);
* :class:`Runner` — executes plans serially or via ``multiprocessing``
  with deterministic result ordering;
* :class:`ResultStore` — pluggable result cache
  (:class:`MemoryStore`, :class:`DiskStore` under ``.repro_cache/``);
* :class:`RunRecord` / :class:`LoopRecord` — structured, JSON/CSV
  serializable results;
* ``python -m repro`` — a CLI (:mod:`repro.api.cli`) built on the same
  Plan objects.

Quick example::

    from repro.api import Plan, Runner, DiskStore, FIGURE7_BARS

    plan = Plan.grid(benchmarks=["epicdec", "gsmdec"],
                     variants=FIGURE7_BARS, scale=0.25)
    runner = Runner(store=DiskStore(), parallel=4)
    for record in runner.run(plan):
        print(record.benchmark, record.variant, record.total_cycles)
"""

from repro.api.artifacts import (
    ArtifactStore,
    DiskArtifactStore,
    MemoryArtifactStore,
    artifact_root,
    artifact_stats,
    default_artifact_store,
    reset_artifact_stats,
    set_default_artifact_store,
)
from repro.api.core import execute_benchmark, execute_spec
from repro.api.journal import JournalState, RunJournal, journal_root
from repro.api.records import (
    LoopRecord,
    RunRecord,
    records_to_csv,
    records_to_json,
)
from repro.api.runner import Runner, RunError, default_runner, run
from repro.api.spec import (
    ALL_VARIANTS,
    DDGT_MIN,
    DDGT_PREF,
    EVALUATED,
    FIGURE7_BARS,
    FREE_MIN,
    FREE_PREF,
    MDC_MIN,
    MDC_PREF,
    PROFILE_ITERATIONS,
    Plan,
    RunSpec,
    Variant,
    default_scale,
    machine_fingerprint,
    parse_variant,
    resolve_machine,
    spec_cache_key,
)
from repro.api.store import (
    DEFAULT_CACHE_DIR,
    DiskStore,
    MemoryStore,
    ResultStore,
    default_store,
    set_default_store,
)

__all__ = [
    "ALL_VARIANTS",
    "ArtifactStore",
    "DDGT_MIN",
    "DDGT_PREF",
    "DEFAULT_CACHE_DIR",
    "DiskArtifactStore",
    "DiskStore",
    "EVALUATED",
    "FIGURE7_BARS",
    "FREE_MIN",
    "FREE_PREF",
    "JournalState",
    "LoopRecord",
    "MDC_MIN",
    "MDC_PREF",
    "MemoryArtifactStore",
    "MemoryStore",
    "PROFILE_ITERATIONS",
    "Plan",
    "ResultStore",
    "RunError",
    "RunJournal",
    "RunRecord",
    "RunSpec",
    "Runner",
    "Variant",
    "artifact_root",
    "artifact_stats",
    "default_artifact_store",
    "default_runner",
    "journal_root",
    "default_scale",
    "default_store",
    "execute_benchmark",
    "execute_spec",
    "machine_fingerprint",
    "parse_variant",
    "records_to_csv",
    "records_to_json",
    "reset_artifact_stats",
    "resolve_machine",
    "run",
    "set_default_artifact_store",
    "spec_cache_key",
    "set_default_store",
]
