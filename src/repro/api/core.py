"""Spec execution: the compile+simulate unit of work, cache-free.

:func:`execute_spec` turns a declarative :class:`~repro.api.spec.RunSpec`
into a :class:`~repro.api.records.RunRecord`; caching and parallelism
live one layer up in :class:`~repro.api.runner.Runner`.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.api.records import LoopRecord, RunRecord
from repro.api.spec import (
    PROFILE_ITERATIONS,
    RunSpec,
    Variant,
    resolve_machine,
)
from repro.arch.config import MachineConfig
from repro.errors import WorkloadError
from repro.sched.pipeline import compile_loop
from repro.sim.executor import simulate
from repro.workloads.catalog import Benchmark, LoopSpec, get_benchmark
from repro.workloads.traces import trace_factory


def execute_spec(spec: RunSpec) -> RunRecord:
    """Compile + simulate the work a spec declares (no caching)."""
    machine = resolve_machine(spec)
    return execute_benchmark(
        spec.benchmark,
        spec.variant_obj,
        machine,
        scale=spec.scale,
        attraction=spec.attraction,
        loop=spec.loop,
        seeds=spec.seeds,
        spec_key=spec.content_hash,
    )


def execute_benchmark(
    name: str,
    variant: Variant,
    machine: MachineConfig,
    scale: float,
    attraction: bool = False,
    loop: Optional[str] = None,
    seeds: Optional[Tuple[int, int]] = None,
    spec_key: str = "",
) -> RunRecord:
    """Run every loop (or one named loop) of a benchmark on an already
    *effective* machine — interleave and Attraction Buffers applied."""
    bench = get_benchmark(name)
    loops = bench.loops
    if loop is not None:
        loops = tuple(s for s in loops if s.name == loop)
        if not loops:
            known = sorted(s.name for s in bench.loops)
            raise WorkloadError(
                f"benchmark {name!r} has no loop {loop!r}; expected one of "
                f"{known}"
            )
    record = RunRecord(
        benchmark=name,
        variant=variant.key,
        machine=machine.name,
        attraction=attraction,
        scale=scale,
        spec_key=spec_key,
    )
    for loop_spec in loops:
        record.loops.append(
            _run_loop(bench, loop_spec, variant, machine, scale, seeds)
        )
    return record


def _run_loop(
    bench: Benchmark,
    spec: LoopSpec,
    variant: Variant,
    machine: MachineConfig,
    scale: float,
    seeds: Optional[Tuple[int, int]] = None,
) -> LoopRecord:
    profile_seed, execute_seed = seeds or (bench.profile_seed,
                                           bench.execute_seed)
    profile = trace_factory(PROFILE_ITERATIONS, seed=profile_seed)
    compiled = compile_loop(
        spec.ddg,
        machine,
        coherence=variant.coherence,
        heuristic=variant.heuristic,
        trace_factory=profile,
        unroll_factor=spec.unroll,
    )
    # spec.iterations counts *original* loop iterations; one kernel
    # iteration of the unrolled loop covers `unroll_factor` of them, so
    # every variant of a loop simulates the same amount of original work.
    original_iters = spec.scaled_iterations(scale)
    kernel_iters = max(32, original_iters // compiled.unroll_factor)
    execution = trace_factory(kernel_iters, seed=execute_seed)(compiled.ddg)
    sim = simulate(compiled, execution, iterations=kernel_iters)
    return LoopRecord(
        benchmark=bench.name,
        loop=spec.name,
        variant=variant.key,
        ii=compiled.ii,
        unroll=compiled.unroll_factor,
        kernel_iterations=kernel_iters,
        compute_cycles=sim.compute_cycles,
        stall_cycles=sim.stall_cycles,
        stats=sim.stats,
        violations=sim.violations.total if sim.violations else 0,
        static_copies=compiled.num_copies,
        replicated_instances=(
            compiled.ddgt.instance_count if compiled.ddgt else 0
        ),
        fake_consumers=(
            len(compiled.ddgt.fake_consumers) if compiled.ddgt else 0
        ),
    )
