"""Spec execution: the compile+simulate unit of work, result-cache-free.

:func:`execute_spec` turns a declarative :class:`~repro.api.spec.RunSpec`
into a :class:`~repro.api.records.RunRecord`; *result* caching and
parallelism live one layer up in :class:`~repro.api.runner.Runner`.
Compilation rides the staged pipeline (:mod:`repro.sched.stages`)
against an :class:`~repro.api.artifacts.ArtifactStore`, so the
variant-independent front end (unrolling, disambiguation, profiling) is
shared across the coherence × heuristic cross instead of being
recomputed per variant.

Two execution shapes:

* :func:`execute_spec` — one spec, one simulation per loop, with a
  selectable per-run ``engine`` (``"events"``/``"cycles"``/``"batch"``);
* :func:`execute_specs_batch` — many specs compiled up front, then
  every loop of every spec co-simulated in one
  :class:`~repro.sim.batch.BatchSimulator` pass.  Records are identical
  to the per-run path (the batch engine is observation-equivalent);
  failures come back per spec instead of aborting the batch.
"""

from __future__ import annotations

import warnings
from typing import List, Optional, Tuple, Union

from repro.api.artifacts import ArtifactStore, default_artifact_store
from repro.api.records import LoopRecord, RunRecord
from repro.api.spec import (
    PROFILE_ITERATIONS,
    RunSpec,
    Variant,
    resolve_machine,
)
from repro.arch.config import MachineConfig
from repro.errors import WorkloadError
from repro.obs import trace
from repro.sched.pipeline import compile_loop
from repro.sim.batch import DEFAULT_BATCH_SIZE, BatchSimulator
from repro.sim.executor import simulate
from repro.workloads.catalog import Benchmark, LoopSpec, get_benchmark
from repro.workloads.traces import cached_trace_spec, trace_factory


#: Minimum kernel iterations simulated per loop: below this the pipeline
#: warm-up dominates and the cycle counts stop being comparable across
#: variants.  Tiny scaled runs are inflated up to this floor (and the
#: inflation is recorded in :attr:`LoopRecord.iteration_floor`).
KERNEL_ITERATION_FLOOR = 32

_floor_warning_emitted = False


def _warn_iteration_floor(benchmark: str, loop: str, natural: int) -> None:
    """One-time (per process) warning that the floor inflated a run."""
    global _floor_warning_emitted
    if _floor_warning_emitted:
        return
    _floor_warning_emitted = True
    warnings.warn(
        f"kernel-iteration floor: {benchmark}:{loop} scaled to {natural} "
        f"kernel iterations; simulating {KERNEL_ITERATION_FLOOR} instead "
        f"(the floor is recorded in LoopRecord.iteration_floor; further "
        f"floored runs will not be reported)",
        RuntimeWarning,
        stacklevel=3,
    )


def suppress_floor_warning() -> None:
    """Mark the one-time floor warning as already emitted.

    The warning gate is per-process, so without this every pool worker
    of a parallel sweep would re-emit it.  The
    :class:`~repro.api.runner.Runner` installs this as the pool worker
    initializer and surfaces a single parent-side warning instead (see
    :func:`warn_floor_from_record`).
    """
    global _floor_warning_emitted
    _floor_warning_emitted = True


def warn_floor_from_record(record: RunRecord) -> None:
    """Parent-side one-time floor warning, derived from a record.

    Pool workers run with the in-worker warning suppressed; when their
    records come back, the first one carrying a non-zero
    :attr:`LoopRecord.iteration_floor` triggers this single warning in
    the parent process (same gate as the in-process warning, so serial
    and parallel execution never double-report).
    """
    global _floor_warning_emitted
    if _floor_warning_emitted:
        return
    for loop in record.loops:
        if loop.iteration_floor:
            _floor_warning_emitted = True
            warnings.warn(
                f"kernel-iteration floor: {record.benchmark}:{loop.loop} "
                f"inflated to {loop.kernel_iterations} kernel iterations "
                f"in a worker process (recorded in "
                f"LoopRecord.iteration_floor; further floored runs will "
                f"not be reported)",
                RuntimeWarning,
                stacklevel=3,
            )
            return


def execute_spec(spec: RunSpec,
                 artifacts: Optional[ArtifactStore] = None,
                 engine: str = "events") -> RunRecord:
    """Compile + simulate the work a spec declares (no result caching).

    ``artifacts`` (default: the process-wide store) shares front-end
    compilation stages with every other spec run in this process.
    ``engine`` selects the simulation engine per loop — all engines
    produce identical records.
    """
    machine = resolve_machine(spec)
    with trace.span(f"spec:{spec.benchmark}/{spec.variant}", cat="spec",
                    machine=spec.machine, spec_key=spec.content_hash):
        return execute_benchmark(
            spec.benchmark,
            spec.variant_obj,
            machine,
            scale=spec.scale,
            attraction=spec.attraction,
            loop=spec.loop,
            seeds=spec.seeds,
            spec_key=spec.content_hash,
            artifacts=artifacts,
            engine=engine,
            model=spec.model,
        )


def execute_specs_batch(
    specs,
    artifacts: Optional[ArtifactStore] = None,
    *,
    batch_size: int = DEFAULT_BATCH_SIZE,
) -> List[Union[RunRecord, BaseException]]:
    """Execute many specs with their loops co-simulated in one batch.

    Compiles every loop of every spec up front (sharing the artifact
    store's front-end stages exactly like :func:`execute_spec`), then
    advances all resulting simulations together through one
    :class:`~repro.sim.batch.BatchSimulator`.  Returns one entry per
    spec, in input order: a :class:`~repro.api.records.RunRecord`, or
    the exception that spec's compilation or simulation raised (other
    specs still complete — the batch analogue of a sweep's per-spec
    error isolation).
    """
    if artifacts is None:
        artifacts = default_artifact_store()
    specs = list(specs)
    results: List[Union[RunRecord, BaseException, None]] = [None] * len(specs)
    prepared: List[tuple] = []  # (spec_idx, record, [(loop ctx, run id)])
    batch = BatchSimulator(batch_size=batch_size)
    for idx, spec in enumerate(specs):
        try:
            machine = resolve_machine(spec)
            bench = get_benchmark(spec.benchmark)
            loops = _select_loops(bench, spec.benchmark, spec.loop)
            record = RunRecord(
                benchmark=spec.benchmark,
                variant=spec.variant_obj.key,
                machine=machine.name,
                attraction=spec.attraction,
                scale=spec.scale,
                spec_key=spec.content_hash,
                model=spec.model,
            )
            submitted = []
            for loop_spec in loops:
                ctx = _prepare_loop(bench, loop_spec, spec.variant_obj,
                                    machine, spec.scale, spec.seeds,
                                    artifacts)
                run_id = batch.submit(ctx[0], ctx[1],
                                      iterations=ctx[2],
                                      model=spec.model)
                submitted.append((loop_spec, ctx, run_id))
        except Exception as exc:  # compile/front-end failure: isolate
            results[idx] = exc
            continue
        prepared.append((idx, record, submitted))
    sims = batch.run(capture_errors=True) if len(batch) else []
    for idx, record, submitted in prepared:
        spec = specs[idx]
        try:
            for loop_spec, ctx, run_id in submitted:
                sim = sims[run_id]
                if isinstance(sim, BaseException):
                    raise sim
                compiled, _execution, kernel_iters, floor = ctx
                record.loops.append(_loop_record(
                    get_benchmark(spec.benchmark), loop_spec,
                    spec.variant_obj, compiled, sim, kernel_iters, floor,
                ))
            results[idx] = record
        except Exception as exc:
            results[idx] = exc
    return results


def _select_loops(bench: Benchmark, name: str, loop: Optional[str]):
    loops = bench.loops
    if loop is not None:
        loops = tuple(s for s in loops if s.name == loop)
        if not loops:
            known = sorted(s.name for s in bench.loops)
            raise WorkloadError(
                f"benchmark {name!r} has no loop {loop!r}; expected one of "
                f"{known}"
            )
    return loops


def execute_benchmark(
    name: str,
    variant: Variant,
    machine: MachineConfig,
    scale: float,
    attraction: bool = False,
    loop: Optional[str] = None,
    seeds: Optional[Tuple[int, int]] = None,
    spec_key: str = "",
    artifacts: Optional[ArtifactStore] = None,
    engine: str = "events",
    model: str = "snooping",
) -> RunRecord:
    """Run every loop (or one named loop) of a benchmark on an already
    *effective* machine — interleave and Attraction Buffers applied."""
    if artifacts is None:
        artifacts = default_artifact_store()
    bench = get_benchmark(name)
    loops = _select_loops(bench, name, loop)
    record = RunRecord(
        benchmark=name,
        variant=variant.key,
        machine=machine.name,
        attraction=attraction,
        scale=scale,
        spec_key=spec_key,
        model=model,
    )
    for loop_spec in loops:
        record.loops.append(
            _run_loop(bench, loop_spec, variant, machine, scale, seeds,
                      artifacts, engine, model)
        )
    return record


def _prepare_loop(
    bench: Benchmark,
    spec: LoopSpec,
    variant: Variant,
    machine: MachineConfig,
    scale: float,
    seeds: Optional[Tuple[int, int]] = None,
    artifacts: Optional[ArtifactStore] = None,
):
    """Compile one loop and build its execution trace.

    Returns ``(compiled, execution, kernel_iters, iteration_floor)`` —
    everything a simulation engine needs, shared by the per-run and
    batch execution paths.
    """
    profile_seed, execute_seed = seeds or (bench.profile_seed,
                                           bench.execute_seed)
    # One frozen, keyed spec per (iterations, seed): its key is what lets
    # the profile stage hit the artifact store across the variant cross.
    profile = cached_trace_spec(PROFILE_ITERATIONS, seed=profile_seed)
    with trace.span(f"compile:{spec.name}", cat="compile"):
        compiled = compile_loop(
            spec.ddg,
            machine,
            coherence=variant.coherence,
            heuristic=variant.heuristic,
            trace_factory=profile,
            unroll_factor=spec.unroll,
            artifacts=artifacts,
        )
    # spec.iterations counts *original* loop iterations; one kernel
    # iteration of the unrolled loop covers `unroll_factor` of them, so
    # every variant of a loop simulates the same amount of original work.
    original_iters = spec.scaled_iterations(scale)
    natural_iters = original_iters // compiled.unroll_factor
    kernel_iters = max(KERNEL_ITERATION_FLOOR, natural_iters)
    iteration_floor = 0
    if kernel_iters > natural_iters:
        iteration_floor = KERNEL_ITERATION_FLOOR
        _warn_iteration_floor(bench.name, spec.name, natural_iters)
    with trace.span(f"trace-gen:{spec.name}", cat="trace-gen"):
        execution = trace_factory(kernel_iters,
                                  seed=execute_seed)(compiled.ddg)
    return compiled, execution, kernel_iters, iteration_floor


def _loop_record(
    bench: Benchmark,
    spec: LoopSpec,
    variant: Variant,
    compiled,
    sim,
    kernel_iters: int,
    iteration_floor: int,
) -> LoopRecord:
    return LoopRecord(
        benchmark=bench.name,
        loop=spec.name,
        variant=variant.key,
        ii=compiled.ii,
        unroll=compiled.unroll_factor,
        kernel_iterations=kernel_iters,
        compute_cycles=sim.compute_cycles,
        stall_cycles=sim.stall_cycles,
        stats=sim.stats,
        violations=sim.violations.total if sim.violations else 0,
        static_copies=compiled.num_copies,
        replicated_instances=(
            compiled.ddgt.instance_count if compiled.ddgt else 0
        ),
        fake_consumers=(
            len(compiled.ddgt.fake_consumers) if compiled.ddgt else 0
        ),
        iteration_floor=iteration_floor,
    )


def _run_loop(
    bench: Benchmark,
    spec: LoopSpec,
    variant: Variant,
    machine: MachineConfig,
    scale: float,
    seeds: Optional[Tuple[int, int]] = None,
    artifacts: Optional[ArtifactStore] = None,
    engine: str = "events",
    model: str = "snooping",
) -> LoopRecord:
    compiled, execution, kernel_iters, iteration_floor = _prepare_loop(
        bench, spec, variant, machine, scale, seeds, artifacts
    )
    with trace.span(f"simulate:{spec.name}", cat="sim"):
        sim = simulate(compiled, execution, iterations=kernel_iters,
                       engine=engine, model=model)
    return _loop_record(bench, spec, variant, compiled, sim,
                        kernel_iters, iteration_floor)
