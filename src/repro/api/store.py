"""Pluggable result stores.

A :class:`ResultStore` maps a spec content hash to a
:class:`~repro.api.records.RunRecord`.  Two implementations ship:

* :class:`MemoryStore` — a process-local dict (the default; replaces the
  old hidden ``_RUN_CACHE`` module global);
* :class:`DiskStore` — one JSON file per record under ``.repro_cache/``
  (override with ``REPRO_CACHE_DIR``), validated against the package
  version so a version bump invalidates every stale entry.

The hardened file machinery (atomic writes, torn-read retries,
version-stamped payloads, pruning) lives in :class:`JsonFileStore`, which
is shared with the compilation-artifact layer one level below
(:mod:`repro.api.artifacts` keeps stage outputs under
``.repro_cache/artifacts/``).

The process-wide default store is swappable via :func:`set_default_store`
— e.g. tests inject a fresh :class:`MemoryStore`, the CLI injects a
:class:`DiskStore` so repeated figure regenerations across processes are
near-instant.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, Optional, Union

from repro.api.records import RunRecord

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"


def _package_version() -> str:
    from repro import __version__

    return __version__


def resolve_cache_root(root: Union[str, Path, None] = None) -> Path:
    """The effective cache directory: explicit > $REPRO_CACHE_DIR > default."""
    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return Path(root)


class JsonFileStore:
    """A keyed store of JSON payloads, one file per key under ``root``.

    The machinery every on-disk cache layer in the package shares:

    * entries carry the package version they were produced with; a
      version mismatch is a cache miss (the stale file is removed on
      read);
    * writes are atomic (tmp file + rename), so parallel workers and
      concurrent processes never observe torn entries;
    * reads retry briefly before declaring an entry corrupt: on
      filesystems without atomic-rename visibility (network mounts, some
      Windows setups) a reader racing a writer can observe a short or
      momentarily-missing file, and treating that transient as corruption
      would delete a healthy entry under a concurrent sweep;
    * :meth:`prune` drops entries whose file is older than a cutoff.

    Subclasses pick the payload envelope field (``PAYLOAD_FIELD``) and
    layer their own decoding/memoization on :meth:`get_payload` /
    :meth:`put_payload`.
    """

    #: Read attempts before an unparseable entry is declared corrupt.
    READ_ATTEMPTS = 3
    #: Base delay between read attempts (seconds, grows linearly).
    READ_RETRY_DELAY = 0.01
    #: Envelope key the stored value lives under.
    PAYLOAD_FIELD = "record"

    def __init__(self, root: Union[str, Path, None] = None,
                 version: Optional[str] = None) -> None:
        self.root = resolve_cache_root(root)
        self._version = version

    @property
    def version(self) -> str:
        return self._version or _package_version()

    def _path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    # ------------------------------------------------------------------
    # Raw payload plumbing
    # ------------------------------------------------------------------
    def get_payload(self, key: str):
        """The stored payload for ``key``, or ``None`` on a miss.

        Stale (version-mismatched) and malformed envelopes are removed;
        transient I/O failures are a miss, never a deletion.
        """
        path = self._path(key)
        envelope = self._read_payload(path)
        if envelope is None:
            return None
        try:
            stale = envelope.get("version") != self.version
            payload = None if stale else envelope[self.PAYLOAD_FIELD]
        except (AttributeError, KeyError, TypeError):
            payload = None  # valid JSON of the wrong shape: a miss
        if payload is None:
            self._discard(path)
            return None
        return payload

    def put_payload(self, key: str, payload) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        envelope = {
            "version": self.version,
            "key": key,
            self.PAYLOAD_FIELD: payload,
        }
        fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle, sort_keys=True)
            os.replace(tmp, self._path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _read_payload(self, path: Path):
        """Read + parse one entry, retrying transient failures.

        A missing file is an immediate miss.  An entry is dropped as
        corrupt only when a read *succeeded* and its content still failed
        to parse on the final attempt — persistent I/O errors (a scanner
        holding the file, a flaky mount) are a miss, never a deletion,
        since they prove nothing about the entry's content."""
        unparseable = False
        for attempt in range(self.READ_ATTEMPTS):
            unparseable = False
            try:
                text = path.read_text()
            except FileNotFoundError:
                return None
            except OSError:  # pragma: no cover - transient I/O error
                text = None
            if text is not None:
                try:
                    return json.loads(text)
                except ValueError:
                    unparseable = True  # possibly a torn read: retry
            if attempt + 1 < self.READ_ATTEMPTS:
                time.sleep(self.READ_RETRY_DELAY * (attempt + 1))
        if unparseable:
            self._discard(path)
        return None

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - concurrent removal
            pass

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear(self) -> int:
        count = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    path.unlink()
                    count += 1
                except OSError:  # pragma: no cover - concurrent removal
                    pass
        return count

    def prune(self, older_than_seconds: float,
              now: Optional[float] = None) -> int:
        """Drop entries whose file modification time is older than
        ``older_than_seconds``; returns the number removed."""
        if now is None:
            now = time.time()
        cutoff = now - older_than_seconds
        count = 0
        if self.root.is_dir():
            for path in self.root.glob("*.json"):
                try:
                    if path.stat().st_mtime < cutoff:
                        path.unlink()
                        count += 1
                except OSError:  # pragma: no cover - concurrent removal
                    pass
        return count

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return iter(())
        return (path.stem for path in sorted(self.root.glob("*.json")))

    def size_bytes(self) -> int:
        if not self.root.is_dir():
            return 0
        total = 0
        for path in self.root.glob("*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                # The entry vanished between the glob and the stat (a
                # concurrent prune/clear/put): count what remains instead
                # of crashing the scan, like prune already does.
                continue
        return total

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())


class ResultStore:
    """Interface: a keyed store of :class:`RunRecord` results."""

    def get(self, key: str) -> Optional[RunRecord]:
        raise NotImplementedError

    def put(self, key: str, record: RunRecord) -> None:
        raise NotImplementedError

    def clear(self) -> int:
        """Drop every entry; returns the number of entries removed."""
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


class MemoryStore(ResultStore):
    """Process-local in-memory store."""

    def __init__(self) -> None:
        self._records: Dict[str, RunRecord] = {}

    def get(self, key: str) -> Optional[RunRecord]:
        return self._records.get(key)

    def put(self, key: str, record: RunRecord) -> None:
        self._records[key] = record

    def clear(self) -> int:
        count = len(self._records)
        self._records.clear()
        return count

    def keys(self) -> Iterator[str]:
        return iter(tuple(self._records))


class DiskStore(JsonFileStore, ResultStore):
    """One JSON file per :class:`RunRecord` under ``root`` (default
    ``.repro_cache/``), on the hardened :class:`JsonFileStore` machinery.
    Reads are memoized in-process.
    """

    PAYLOAD_FIELD = "record"

    def __init__(self, root: Union[str, Path, None] = None,
                 version: Optional[str] = None) -> None:
        super().__init__(root, version)
        self._memo: Dict[str, RunRecord] = {}

    def get(self, key: str) -> Optional[RunRecord]:
        memoized = self._memo.get(key)
        if memoized is not None:
            return memoized
        payload = self.get_payload(key)
        if payload is None:
            return None
        try:
            record = RunRecord.from_dict(payload)
        except (AttributeError, KeyError, TypeError, ValueError):
            # Valid JSON of the wrong shape: a miss, not a crash loop.
            self._discard(self._path(key))
            return None
        self._memo[key] = record
        return record

    def put(self, key: str, record: RunRecord) -> None:
        self.put_payload(key, record.to_dict())
        self._memo[key] = record

    def clear(self) -> int:
        self._memo.clear()
        return super().clear()

    def prune(self, older_than_seconds: float,
              now: Optional[float] = None) -> int:
        removed = super().prune(older_than_seconds, now)
        if removed:
            # get/keys/len must agree after maintenance: drop the memo so
            # pruned entries are not served from RAM.
            self._memo.clear()
        return removed


# ----------------------------------------------------------------------
# Process-wide default
# ----------------------------------------------------------------------
_DEFAULT_STORE: ResultStore = MemoryStore()


def default_store() -> ResultStore:
    """The process-wide store used when no explicit store is given."""
    return _DEFAULT_STORE


def set_default_store(store: ResultStore) -> ResultStore:
    """Swap the process-wide default store; returns the previous one."""
    global _DEFAULT_STORE
    previous = _DEFAULT_STORE
    _DEFAULT_STORE = store
    return previous
