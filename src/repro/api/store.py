"""Pluggable result stores.

A :class:`ResultStore` maps a spec content hash to a
:class:`~repro.api.records.RunRecord`.  Two implementations ship:

* :class:`MemoryStore` — a process-local dict (the default; replaces the
  old hidden ``_RUN_CACHE`` module global);
* :class:`DiskStore` — one JSON file per record under ``.repro_cache/``
  (override with ``REPRO_CACHE_DIR``), validated against the package
  version so a version bump invalidates every stale entry.

The hardened file machinery (atomic writes, torn-read retries,
version-stamped payloads, pruning) lives in :class:`JsonFileStore`, which
is shared with the compilation-artifact layer one level below
(:mod:`repro.api.artifacts` keeps stage outputs under
``.repro_cache/artifacts/``).

Entries are *prefix-sharded*: a key lives under ``root/<ss>/<key>.json``
where ``<ss>`` is the first two hex characters of the key's SHA-1, so no
single directory grows past a few dozen entries even for multi-thousand
-run sweeps.  Store-wide operations (:meth:`~JsonFileStore.keys`,
:meth:`~JsonFileStore.size_bytes`, :meth:`~JsonFileStore.prune`) run off
a lazily maintained index instead of rescanning the tree: the index is
built once per shard, validated by the shard directory's mtime (so
writes from other processes are picked up), invalidated shard-by-shard
on in-process writes, and persisted to ``index.meta`` so a fresh
process warm-starts.
Legacy flat layouts (``root/<key>.json``) are still readable and are
migrated to the sharded layout on write.

The process-wide default store is swappable via :func:`set_default_store`
— e.g. tests inject a fresh :class:`MemoryStore`, the CLI injects a
:class:`DiskStore` so repeated figure regenerations across processes are
near-instant.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
import tempfile
import time
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Union

from repro.api.records import RunRecord
from repro.obs import metrics

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: Shard directory names: two lowercase hex characters.
_SHARD_RE = re.compile(r"^[0-9a-f]{2}$")

#: File the lazily maintained shard index persists to (deliberately not
#: ``*.json`` so entry globs and key namespaces can never collide with it).
INDEX_FILE = "index.meta"


def _package_version() -> str:
    from repro import __version__

    return __version__


def resolve_cache_root(root: Union[str, Path, None] = None) -> Path:
    """The effective cache directory: explicit > $REPRO_CACHE_DIR > default."""
    if root is None:
        root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR)
    return Path(root)


def shard_prefix(key: str) -> str:
    """The shard directory a key lives in: first two hex chars of its
    SHA-1.  Keys carry heterogeneous human prefixes (``unroll-…``,
    ``adhoc-…``), so sharding on a hash of the whole key keeps the 256
    shards uniformly filled regardless of the keyspace."""
    return hashlib.sha1(key.encode("utf-8")).hexdigest()[:2]


class JsonFileStore:
    """A keyed store of JSON payloads, one file per key under ``root``.

    The machinery every on-disk cache layer in the package shares:

    * entries carry the package version they were produced with; a
      version mismatch is a cache miss (the stale file is removed on
      read);
    * writes are atomic (tmp file + rename), so parallel workers and
      concurrent processes never observe torn entries;
    * reads retry briefly before declaring an entry corrupt: on
      filesystems without atomic-rename visibility (network mounts, some
      Windows setups) a reader racing a writer can observe a short or
      momentarily-missing file, and treating that transient as corruption
      would delete a healthy entry under a concurrent sweep;
    * entries are sharded into 256 two-hex-char subdirectories (see
      :func:`shard_prefix`); a lazily maintained index makes store-wide
      operations scan-free.  ``sharded=False`` keeps the legacy flat
      one-directory layout (and its scan-everything semantics) for
      comparison benchmarks;
    * :meth:`prune` drops entries whose file is older than a cutoff.

    Subclasses pick the payload envelope field (``PAYLOAD_FIELD``) and
    layer their own decoding/memoization on :meth:`get_payload` /
    :meth:`put_payload`.
    """

    #: Read attempts before an unparseable entry is declared corrupt.
    READ_ATTEMPTS = 3
    #: Base delay between read attempts (seconds, grows linearly).
    READ_RETRY_DELAY = 0.01
    #: Envelope key the stored value lives under.
    PAYLOAD_FIELD = "record"

    def __init__(self, root: Union[str, Path, None] = None,
                 version: Optional[str] = None,
                 sharded: bool = True) -> None:
        self.root = resolve_cache_root(root)
        self._version = version
        self.sharded = bool(sharded)
        #: shard name -> {"mtime": dir st_mtime_ns, "entries":
        #: {key: [size_bytes, file_mtime_seconds]}}; ``None`` until the
        #: first store-wide operation builds it.
        self._index: Optional[Dict[str, Dict[str, object]]] = None

    @property
    def version(self) -> str:
        return self._version or _package_version()

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _flat_path(self, key: str) -> Path:
        return self.root / f"{key}.json"

    def _path(self, key: str) -> Path:
        if not self.sharded:
            return self._flat_path(key)
        return self.root / shard_prefix(key) / f"{key}.json"

    def entry_path(self, key: str) -> Path:
        """Where a put of ``key`` lands (the sharded location)."""
        return self._path(key)

    def _index_path(self) -> Path:
        return self.root / INDEX_FILE

    def _candidate_paths(self, key: str) -> List[Path]:
        """Read locations for ``key``: the sharded home first, then the
        legacy flat location (pre-sharding layouts stay readable)."""
        primary = self._path(key)
        if not self.sharded:
            return [primary]
        return [primary, self._flat_path(key)]

    # ------------------------------------------------------------------
    # Raw payload plumbing
    # ------------------------------------------------------------------
    def get_payload(self, key: str):
        """The stored payload for ``key``, or ``None`` on a miss.

        Stale (version-mismatched) and malformed envelopes are removed;
        transient I/O failures are a miss, never a deletion.  Entries
        still sitting in a legacy flat layout are found via fallback.
        """
        with metrics.registry().time_block("store.read_seconds",
                                           kind=self.PAYLOAD_FIELD):
            for path in self._candidate_paths(key):
                envelope = self._read_payload(path)
                if envelope is None:
                    continue
                try:
                    stale = envelope.get("version") != self.version
                    payload = (None if stale
                               else envelope[self.PAYLOAD_FIELD])
                except (AttributeError, KeyError, TypeError):
                    payload = None  # valid JSON of the wrong shape: a miss
                if payload is None:
                    self._discard_entry(key, path)
                    continue
                return payload
            return None

    def put_payload(self, key: str, payload) -> None:
        with metrics.registry().time_block("store.write_seconds",
                                           kind=self.PAYLOAD_FIELD):
            self._put_payload(key, payload)

    def _put_payload(self, key: str, payload) -> None:
        target = self._path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        envelope = {
            "version": self.version,
            "key": key,
            self.PAYLOAD_FIELD: payload,
        }
        fd, tmp = tempfile.mkstemp(dir=str(target.parent), suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(envelope, handle, sort_keys=True)
            os.replace(tmp, target)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        if self.sharded:
            flat = self._flat_path(key)
            if flat != target:
                # Migrate on write: a fresh entry supersedes any copy
                # still sitting in the legacy flat layout.
                self._discard(flat)
            self._index_invalidate(target)

    def _read_payload(self, path: Path):
        """Read + parse one entry, retrying transient failures.

        A missing file is an immediate miss.  An entry is dropped as
        corrupt only when a read *succeeded* and its content still failed
        to parse on the final attempt — persistent I/O errors (a scanner
        holding the file, a flaky mount) are a miss, never a deletion,
        since they prove nothing about the entry's content."""
        unparseable = False
        for attempt in range(self.READ_ATTEMPTS):
            unparseable = False
            try:
                text = path.read_text()
            except FileNotFoundError:
                return None
            except OSError:  # pragma: no cover - transient I/O error
                text = None
            if text is not None:
                try:
                    return json.loads(text)
                except ValueError:
                    unparseable = True  # possibly a torn read: retry
            if attempt + 1 < self.READ_ATTEMPTS:
                time.sleep(self.READ_RETRY_DELAY * (attempt + 1))
        if unparseable:
            self._discard(path)
        return None

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - concurrent removal
            pass

    def _discard_entry(self, key: str, path: Path) -> None:
        """Unlink one entry file and keep the index in step."""
        self._discard(path)
        self._index_invalidate(path)

    def _drop_key(self, key: str) -> None:
        """Remove every on-disk location of ``key`` (sharded and flat)."""
        for path in dict.fromkeys(self._candidate_paths(key)):
            self._discard_entry(key, path)

    # ------------------------------------------------------------------
    # Lazily maintained shard index
    # ------------------------------------------------------------------
    def _ensure_index(self) -> Dict[str, Dict[str, object]]:
        """Build/refresh the in-memory shard index.

        Each shard is trusted while its directory mtime matches the
        indexed one and rescanned otherwise, so external writers are
        picked up at the cost of one ``stat`` per shard instead of a
        full-tree walk.  Rescans are persisted to ``index.meta`` so a
        fresh process warm-starts from them.
        """
        if self._index is None:
            self._index = self._load_index()
        index = self._index
        if not self.root.is_dir():
            index.clear()
            return index
        on_disk: Dict[str, Path] = {}
        for child in self.root.iterdir():
            if child.is_dir() and _SHARD_RE.match(child.name):
                on_disk[child.name] = child
        dirty = False
        for name in list(index):
            if name not in on_disk:
                del index[name]
                dirty = True
        for name, child in on_disk.items():
            try:
                # Stat *before* scanning: anything written mid-scan bumps
                # the real mtime past the recorded one, forcing a rescan
                # on the next store-wide operation.
                dir_mtime = child.stat().st_mtime_ns
            except OSError:  # pragma: no cover - shard vanished mid-walk
                index.pop(name, None)
                dirty = True
                continue
            cell = index.get(name)
            if cell is not None and cell.get("mtime") == dir_mtime:
                continue
            entries: Dict[str, List[float]] = {}
            with metrics.registry().time_block("store.scan_seconds",
                                               kind=self.PAYLOAD_FIELD):
                for path in child.glob("*.json"):
                    try:
                        st = path.stat()
                    except OSError:
                        continue  # vanished between glob and stat
                    entries[path.stem] = [st.st_size, st.st_mtime]
            metrics.inc("store.shard_rescans", kind=self.PAYLOAD_FIELD)
            index[name] = {"mtime": dir_mtime, "entries": entries}
            dirty = True
        if dirty:
            self._save_index()
        return index

    def _load_index(self) -> Dict[str, Dict[str, object]]:
        try:
            data = json.loads(self._index_path().read_text())
            shards = data["shards"]
            if not isinstance(shards, dict):
                return {}
            return {
                name: {"mtime": cell["mtime"],
                       "entries": dict(cell["entries"])}
                for name, cell in shards.items()
                if _SHARD_RE.match(name)
            }
        except (OSError, ValueError, KeyError, TypeError):
            return {}

    def _save_index(self) -> None:
        """Persist the index (best-effort: it is a cache of a cache)."""
        index = self._index
        if index is None or not self.root.is_dir():
            return
        try:
            fd, tmp = tempfile.mkstemp(dir=str(self.root), suffix=".tmp")
            with os.fdopen(fd, "w") as handle:
                json.dump({"shards": index}, handle)
            os.replace(tmp, self._index_path())
        except OSError:  # pragma: no cover - read-only root, etc.
            pass

    def _index_invalidate(self, path: Path) -> None:
        """Drop the index cell of the shard ``path`` lives in.

        Called after this instance writes or removes an entry.  Only
        :meth:`_ensure_index` ever *stamps* a shard's mtime — right
        after scanning it — so a cell can never claim to cover changes
        it did not see.  Re-stamping here instead (with the post-write
        directory mtime) would permanently mask entries a concurrent
        writer slipped into the same shard between our last scan and
        this write.  The cost is one single-shard rescan (~N/256
        entries) at the next store-wide operation, only for shards this
        process actually touched.
        """
        if self._index is None:
            return
        shard = path.parent.name
        if _SHARD_RE.match(shard):
            self._index.pop(shard, None)

    def _shard_dirs(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return [child for child in self.root.iterdir()
                if child.is_dir() and _SHARD_RE.match(child.name)]

    def _flat_files(self) -> List[Path]:
        """Legacy flat-layout entries still awaiting migration."""
        if not self.root.is_dir():
            return []
        return [path for path in self.root.glob("*.json")
                if not path.is_dir()]

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def clear(self) -> int:
        count = 0
        if not self.root.is_dir():
            return 0
        if self.sharded:
            for shard in self._shard_dirs():
                for path in shard.glob("*.json"):
                    try:
                        path.unlink()
                        count += 1
                    except OSError:  # pragma: no cover - concurrent
                        pass
                try:
                    shard.rmdir()
                except OSError:
                    pass  # non-entry stragglers: leave the dir alone
            self._discard(self._index_path())
            self._index = {}
        for path in self._flat_files():
            try:
                path.unlink()
                count += 1
            except OSError:  # pragma: no cover - concurrent removal
                pass
        return count

    def prune(self, older_than_seconds: float,
              now: Optional[float] = None) -> int:
        """Drop entries whose file modification time is older than
        ``older_than_seconds``; returns the number removed."""
        if now is None:
            now = time.time()
        cutoff = now - older_than_seconds
        count = 0
        if not self.root.is_dir():
            return 0
        if self.sharded:
            index = self._ensure_index()
            dirty = False
            for shard, cell in list(index.items()):
                stale = [key
                         for key, (_size, mtime) in cell["entries"].items()
                         if mtime < cutoff]
                if not stale:
                    continue
                shard_dir = self.root / shard
                for key in stale:
                    try:
                        (shard_dir / f"{key}.json").unlink()
                        count += 1
                    except OSError:  # pragma: no cover - concurrent
                        pass
                # We mutated the shard: drop its cell so the next
                # store-wide operation rescans it (see _index_invalidate
                # — only _ensure_index may stamp shard mtimes).
                index.pop(shard, None)
                dirty = True
            if dirty:
                self._save_index()
        for path in self._flat_files():
            try:
                if path.stat().st_mtime < cutoff:
                    path.unlink()
                    count += 1
            except OSError:  # pragma: no cover - concurrent removal
                pass
        return count

    def keys(self) -> Iterator[str]:
        if not self.root.is_dir():
            return iter(())
        if not self.sharded:
            return (path.stem for path in sorted(self.root.glob("*.json")))
        names = set()
        for cell in self._ensure_index().values():
            names.update(cell["entries"])
        names.update(path.stem for path in self._flat_files())
        return iter(sorted(names))

    def size_bytes(self) -> int:
        if not self.root.is_dir():
            return 0
        total = 0
        if self.sharded:
            for cell in self._ensure_index().values():
                for size, _mtime in cell["entries"].values():
                    total += int(size)
        else:
            for path in self.root.glob("*.json"):
                try:
                    total += path.stat().st_size
                except OSError:
                    # The entry vanished between the glob and the stat (a
                    # concurrent prune/clear/put): count what remains
                    # instead of crashing the scan, like prune does.
                    continue
            return total
        for path in self._flat_files():
            try:
                total += path.stat().st_size
            except OSError:
                continue
        return total

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())


class ResultStore:
    """Interface: a keyed store of :class:`RunRecord` results."""

    def get(self, key: str) -> Optional[RunRecord]:
        raise NotImplementedError

    def put(self, key: str, record: RunRecord) -> None:
        raise NotImplementedError

    def clear(self) -> int:
        """Drop every entry; returns the number of entries removed."""
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError

    def __len__(self) -> int:
        return sum(1 for _ in self.keys())

    def __contains__(self, key: str) -> bool:
        return self.get(key) is not None


class MemoryStore(ResultStore):
    """Process-local in-memory store."""

    def __init__(self) -> None:
        self._records: Dict[str, RunRecord] = {}

    def get(self, key: str) -> Optional[RunRecord]:
        return self._records.get(key)

    def put(self, key: str, record: RunRecord) -> None:
        self._records[key] = record

    def clear(self) -> int:
        count = len(self._records)
        self._records.clear()
        return count

    def keys(self) -> Iterator[str]:
        return iter(tuple(self._records))


class DiskStore(JsonFileStore, ResultStore):
    """One JSON file per :class:`RunRecord` under ``root`` (default
    ``.repro_cache/``), on the hardened, sharded :class:`JsonFileStore`
    machinery.  Reads are memoized in-process.
    """

    PAYLOAD_FIELD = "record"

    def __init__(self, root: Union[str, Path, None] = None,
                 version: Optional[str] = None) -> None:
        super().__init__(root, version)
        self._memo: Dict[str, RunRecord] = {}

    def get(self, key: str) -> Optional[RunRecord]:
        memoized = self._memo.get(key)
        if memoized is not None:
            return memoized
        payload = self.get_payload(key)
        if payload is None:
            return None
        try:
            record = RunRecord.from_dict(payload)
        except (AttributeError, KeyError, TypeError, ValueError):
            # Valid JSON of the wrong shape: a miss, not a crash loop.
            self._drop_key(key)
            return None
        self._memo[key] = record
        return record

    def put(self, key: str, record: RunRecord) -> None:
        self.put_payload(key, record.to_dict())
        self._memo[key] = record

    def clear(self) -> int:
        self._memo.clear()
        return super().clear()

    def prune(self, older_than_seconds: float,
              now: Optional[float] = None) -> int:
        removed = super().prune(older_than_seconds, now)
        if removed:
            # get/keys/len must agree after maintenance: drop the memo so
            # pruned entries are not served from RAM.
            self._memo.clear()
        return removed


# ----------------------------------------------------------------------
# Process-wide default
# ----------------------------------------------------------------------
_DEFAULT_STORE: ResultStore = MemoryStore()


def default_store() -> ResultStore:
    """The process-wide store used when no explicit store is given."""
    return _DEFAULT_STORE


def set_default_store(store: ResultStore) -> ResultStore:
    """Swap the process-wide default store; returns the previous one."""
    global _DEFAULT_STORE
    previous = _DEFAULT_STORE
    _DEFAULT_STORE = store
    return previous
