"""Setup shim for environments without the `wheel` package.

`pip install -e . --no-build-isolation` falls back to this legacy path when
PEP 660 editable wheels are unavailable; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
