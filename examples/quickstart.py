"""Quickstart: compile and simulate one loop under all coherence solutions.

Builds a small in-place update loop (the kind that creates memory
dependent chains), compiles it for the paper's 4-cluster word-interleaved
machine under the optimistic baseline, MDC and DDGT, and prints the cycle
and access statistics side by side.

This is the *low-level* path (hand-built DDG -> compile_loop ->
simulate).  For catalog benchmarks, prefer the declarative session layer
— ``repro.api.RunSpec``/``Plan``/``Runner`` (see docs/api.md and
examples/mediabench_sweep.py), which adds caching and parallelism.

Run:  python examples/quickstart.py
"""

from repro import (
    BASELINE_CONFIG,
    CoherenceMode,
    DdgBuilder,
    Heuristic,
    MemRef,
    compile_loop,
    simulate,
    trace_factory,
)


def build_loop():
    """for i: buf[i] = f(buf[i], buf[i+4]); out[i] = g(buf[i])

    The two ``buf`` references through an unanalyzable pointer alias each
    other, so the compiler must serialize them — a memory dependent chain.
    """
    b = DdgBuilder("quickstart")
    b.ialu("i", b.carried("i", 1), name="agen")
    a = b.load("a", "i", mem=MemRef("buf", offset=0, stride=16, width=4,
                                    ambiguous=True), name="ld_a")
    c = b.load("c", "i", mem=MemRef("buf", offset=64, stride=16, width=4),
               name="ld_c")
    b.falu("v", "a", "c", name="mix")
    b.store("v", "i", mem=MemRef("buf", offset=16, stride=16, width=4),
            name="st_buf")
    b.ialu("o", "v", name="post")
    b.store("o", "i", mem=MemRef("out", stride=4, width=4), name="st_out")
    return b.build()


def main():
    loop = build_loop()
    print("Input loop:")
    print(loop.describe())
    print()

    profile = trace_factory(256, seed=1)   # the profiling data set
    execute = trace_factory(4000, seed=2)  # the execution data set

    header = (
        f"{'variant':16s} {'II':>3s} {'unroll':>6s} {'compute':>9s} "
        f"{'stall':>7s} {'local hits':>10s} {'violations':>10s}"
    )
    print(header)
    print("-" * len(header))
    for coherence in CoherenceMode:
        compiled = compile_loop(
            loop,
            BASELINE_CONFIG,
            coherence=coherence,
            heuristic=Heuristic.PREFCLUS,
            trace_factory=profile,
        )
        result = simulate(
            compiled,
            execute(compiled.ddg),
            iterations=1000,
        )
        print(
            f"{coherence.value:16s} {compiled.ii:3d} "
            f"{compiled.unroll_factor:6d} {result.compute_cycles:9d} "
            f"{result.stall_cycles:7d} "
            f"{result.stats.local_hit_ratio:10.1%} "
            f"{result.violations.total:10d}"
        )
    print()
    print(
        "The optimistic baseline ('none') may reorder aliased accesses\n"
        "across clusters; MDC and DDGT guarantee zero violations."
    )


if __name__ == "__main__":
    main()
