"""The paper's Figure 2 hazard, reproduced cycle by cycle.

A store updates variable X from cluster 4 while an aliased load reads X
in X's home cluster.  Under free (optimistic) scheduling the store's bus
transit loses the race and the load returns a stale value; MDC and DDGT
each eliminate the hazard.

Run:  python examples/coherence_violation.py
"""

from repro import (
    BASELINE_CONFIG,
    CoherenceMode,
    DdgBuilder,
    DepKind,
    Heuristic,
    MemRef,
    compile_loop,
    simulate,
    trace_factory,
)

ITERATIONS = 512


def build_loop(pin_store=None, pin_load=None):
    """store X; load X — one hot variable, touched every iteration."""
    b = DdgBuilder("figure2")
    ref = MemRef("X", stride=0, width=4, ambiguous=True)
    st = b.store(mem=ref, name="store_X")
    ld = b.load("v", mem=ref, name="load_X")
    b.mem_dep(st, ld, DepKind.MF, 0)
    b.mem_dep(ld, st, DepKind.MA, 1)
    b.mem_dep(st, st, DepKind.MO, 1)
    ddg = b.build()
    if pin_store is not None:
        ddg.pin_cluster(st.iid, pin_store)
    if pin_load is not None:
        ddg.pin_cluster(ld.iid, pin_load)
    return ddg


def run(name, ddg, coherence):
    compiled = compile_loop(
        ddg,
        BASELINE_CONFIG,
        coherence=coherence,
        heuristic=Heuristic.MINCOMS,
        trace_factory=trace_factory(64, seed=11),
        unroll_factor=1,
        add_mem_deps=False,
    )
    result = simulate(
        compiled,
        trace_factory(ITERATIONS, seed=12)(compiled.ddg),
        iterations=ITERATIONS,
    )
    v = result.violations
    print(
        f"{name:34s} II={compiled.ii}  "
        f"violations={v.total:4d} (stale {v.stale_reads}, "
        f"early {v.future_reads}, ww {v.write_inversions})"
    )
    return v.total


def main():
    print(f"Figure 2 scenario, {ITERATIONS} iterations\n")
    # The hazard: store forced into cluster 3, load into cluster 0 (X's
    # home) — the paper's "store in cluster 4, load in cluster 1".
    hazard = build_loop(pin_store=3, pin_load=0)
    violations = run("free scheduling (cross-cluster)", hazard,
                     CoherenceMode.NONE)
    assert violations > 0, "the hazard should be visible"

    safe = build_loop(pin_store=0, pin_load=0)
    run("free scheduling (same cluster)", safe, CoherenceMode.NONE)

    unconstrained = build_loop()
    run("MDC (chain -> one cluster)", unconstrained, CoherenceMode.MDC)
    run("DDGT (store replication)", unconstrained, CoherenceMode.DDGT)

    print(
        "\nThe free schedule lets the load beat the store's bus transit;\n"
        "MDC co-locates the chain, DDGT replicates the store so the home\n"
        "cluster is always updated locally (the paper's Figure 4)."
    )


if __name__ == "__main__":
    main()
