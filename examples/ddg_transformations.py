"""The paper's Figure 3 -> Figure 5 walkthrough.

Reconstructs the example DDG of Figure 3 (two loads, two stores, one add,
with MF/MA/MO dependences), applies the DDGT transformations, and prints
the graph before and after:

* stores n3 and n4 replicated once per cluster;
* the MA dependence n1->n4 removed as redundant (RF n1->n4 covers it);
* the MA dependence n1->n3 rewritten through a *fake consumer* (NEW_CONS);
* the MA dependences from n2 rewritten as SYNC edges from n5.

Run:  python examples/ddg_transformations.py
"""

from repro import BASELINE_CONFIG, DdgBuilder, DepKind, MemRef, apply_ddgt


def build_figure3():
    b = DdgBuilder("figure3")
    mem = dict(space="A", stride=4, width=4, ambiguous=True)
    n1 = b.load("r27", mem=MemRef(offset=0, **mem), name="n1")
    n2 = b.load("r2", mem=MemRef(offset=16, **mem), name="n2")
    n3 = b.store(mem=MemRef(offset=32, **mem), name="n3")
    n4 = b.store("r27", mem=MemRef(offset=48, **mem), name="n4")
    n5 = b.ialu("r5", "r2", name="n5")
    b.mem_dep(n1, n3, DepKind.MA, 0)
    b.mem_dep(n1, n4, DepKind.MA, 0)
    b.mem_dep(n2, n3, DepKind.MA, 0)
    b.mem_dep(n2, n4, DepKind.MA, 0)
    b.mem_dep(n3, n1, DepKind.MF, 1)
    b.mem_dep(n3, n2, DepKind.MF, 1)
    b.mem_dep(n4, n2, DepKind.MF, 1)
    b.mem_dep(n3, n4, DepKind.MO, 0)
    b.mem_dep(n4, n3, DepKind.MO, 1)
    b.mem_dep(n3, n3, DepKind.MO, 1)
    b.mem_dep(n4, n4, DepKind.MO, 1)
    return b.build()


def main():
    ddg = build_figure3()
    print("=" * 60)
    print("Figure 3 — the original DDG")
    print("=" * 60)
    print(ddg.describe())

    result = apply_ddgt(ddg, BASELINE_CONFIG)

    print()
    print("=" * 60)
    print("Figure 5 — after store replication + load-store sync")
    print("=" * 60)
    print(result.ddg.describe())

    print()
    print("Transformation summary:")
    print(f"  replicated stores        : {result.replicated_stores}")
    print(f"  store instances in total : {result.instance_count}")
    print(f"  MA edges -> SYNC         : {result.synchronized}")
    print(f"  redundant MA removed     : {result.redundant_ma}")
    print(f"  fake consumers (NEW_CONS): {len(result.fake_consumers)}")
    for iid in result.fake_consumers:
        fake = result.ddg.node(iid)
        print(f"    {fake.label}: reads {fake.srcs[0]} "
              f"(the paper's 'add r0 = r0 + r27')")


if __name__ == "__main__":
    main()
