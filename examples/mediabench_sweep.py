"""Run the full Mediabench-like catalog under every solution/heuristic.

Prints, per benchmark: normalized execution time of the four Figure 7
bars and the local hit ratios of the three Figure 6 bars — a compact
rendition of the paper's evaluation section.

The whole sweep goes through the ``repro.api`` session layer: one
parallel ``Runner`` on the on-disk ``DiskStore``, shared by both figure
drivers (they overlap in variants, which are simulated once), so a
second invocation is served from ``.repro_cache/`` almost instantly.

Run:  python examples/mediabench_sweep.py          (scale 0.25, ~1 min)
      REPRO_SCALE=1.0 python examples/mediabench_sweep.py
      REPRO_PARALLEL=8 python examples/mediabench_sweep.py
"""

import os

os.environ.setdefault("REPRO_SCALE", "0.25")

from repro.api import DiskStore, Runner  # noqa: E402
from repro.experiments import run_figure6, run_figure7  # noqa: E402


def main():
    scale = os.environ["REPRO_SCALE"]
    workers = int(os.environ.get("REPRO_PARALLEL", "4"))
    runner = Runner(store=DiskStore(), parallel=workers)
    print(f"Sweeping 13 benchmarks x 7 variants "
          f"(REPRO_SCALE={scale}, {workers} workers, "
          f"cache at {runner.store.root}/)...\n")

    fig6 = run_figure6(runner=runner)
    fig7 = run_figure7(runner=runner)

    header = (
        f"{'benchmark':10s} | {'MDC(P)':>7s} {'MDC(M)':>7s} {'DDGT(P)':>8s} "
        f"{'DDGT(M)':>8s} | {'lh free':>7s} {'lh MDC':>7s} {'lh DDGT':>8s}"
    )
    print(header)
    print("-" * len(header))
    for name in fig7.bars:
        bars = fig7.bars[name]
        row = (
            f"{name:10s} | "
            f"{bars['mdc/prefclus'].total:7.3f} "
            f"{bars['mdc/mincoms'].total:7.3f} "
            f"{bars['ddgt/prefclus'].total:8.3f} "
            f"{bars['ddgt/mincoms'].total:8.3f} | "
        )
        if name in fig6.fractions:
            from repro.sim.stats import AccessType

            f = fig6.fractions[name]
            row += (
                f"{f['free'][AccessType.LOCAL_HIT]:7.1%} "
                f"{f['MDC'][AccessType.LOCAL_HIT]:7.1%} "
                f"{f['DDGT'][AccessType.LOCAL_HIT]:8.1%}"
            )
        print(row)

    print()
    print("Execution times normalized to free scheduling with MinComs;")
    print("'lh' columns are local-hit ratios (Figure 6's bars).")
    for name in fig7.bars:
        if name == "AMEAN":
            continue
        winner = fig7.winner(name)
        print(f"  {name:10s} best: {winner}")


if __name__ == "__main__":
    main()
