"""Attraction Buffers and the epicdec anecdote (paper section 5.4).

epicdec's most important loop has 76 memory instructions forming one
memory dependent chain.  Under MDC all of them run in one cluster, so
that cluster's 16-entry Attraction Buffer thrashes; under DDGT they
spread over the machine and every AB holds its share, so the chain turns
almost fully local.

The four runs are declared as ``repro.api.RunSpec`` objects scoped to
the chain loop (``loop=...``) and executed through the default store, so
re-running the example is free.

Run:  python examples/attraction_buffers.py
"""

from repro.api import RunSpec, run
from repro.workloads import get_benchmark

SCALE = 0.25


def main():
    bench = get_benchmark("epicdec")
    chain_loop = bench.loops[0].name

    print("epicdec chain loop (the 76-instruction memory dependent chain)")
    print("machine: baseline(+ab) — 16-entry 2-way ABs, flushed per loop\n")

    header = (
        f"{'variant':22s} {'II':>4s} {'local hits':>10s} {'AB fills':>9s} "
        f"{'AB thrash':>9s} {'stall':>7s} {'total':>7s}"
    )
    print(header)
    print("-" * len(header))
    for attraction, tag in ((False, "no AB"), (True, "AB")):
        for coherence in ("mdc", "ddgt"):
            record = run(RunSpec(
                benchmark="epicdec",
                variant=f"{coherence}/prefclus",
                attraction=attraction,
                scale=SCALE,
                loop=chain_loop,
            ))
            loop = record.loops[0]
            stats = loop.stats
            print(
                f"{coherence.upper():5s} {tag:16s} {loop.ii:4d} "
                f"{stats.local_hit_ratio:10.1%} {stats.ab_fills:9d} "
                f"{stats.ab_overflows:9d} {loop.stall_cycles:7d} "
                f"{loop.total_cycles:7d}"
            )

    print(
        "\nPaper: with ABs this loop goes from 65% local hits under MDC to"
        "\n97% under DDGT (a 24% loop speedup), because MDC funnels all 76"
        "\nstreams through a single cluster's 16-entry buffer."
    )


if __name__ == "__main__":
    main()
