"""Attraction Buffers and the epicdec anecdote (paper section 5.4).

epicdec's most important loop has 76 memory instructions forming one
memory dependent chain.  Under MDC all of them run in one cluster, so
that cluster's 16-entry Attraction Buffer thrashes; under DDGT they
spread over the machine and every AB holds its share, so the chain turns
almost fully local.

Run:  python examples/attraction_buffers.py
"""

from repro import BASELINE_CONFIG, CoherenceMode, Heuristic, compile_loop, simulate
from repro.workloads import get_benchmark, trace_factory

ITERATIONS = 256


def run(spec, bench, machine, coherence):
    compiled = compile_loop(
        spec.ddg,
        machine,
        coherence=coherence,
        heuristic=Heuristic.PREFCLUS,
        trace_factory=trace_factory(256, seed=bench.profile_seed),
    )
    result = simulate(
        compiled,
        trace_factory(ITERATIONS, seed=bench.execute_seed)(compiled.ddg),
        iterations=ITERATIONS,
    )
    return compiled, result


def main():
    bench = get_benchmark("epicdec")
    chain_loop = bench.loops[0]
    plain = bench.machine(BASELINE_CONFIG)
    with_ab = plain.with_attraction_buffers(entries=16, associativity=2)

    print("epicdec chain loop (the 76-instruction memory dependent chain)")
    print(f"machine: {with_ab.name} — 16-entry 2-way ABs, flushed per loop\n")

    header = (
        f"{'variant':22s} {'II':>4s} {'local hits':>10s} {'AB fills':>9s} "
        f"{'AB thrash':>9s} {'stall':>7s} {'total':>7s}"
    )
    print(header)
    print("-" * len(header))
    for machine, tag in ((plain, "no AB"), (with_ab, "AB")):
        for coherence in (CoherenceMode.MDC, CoherenceMode.DDGT):
            compiled, result = run(chain_loop, bench, machine, coherence)
            stats = result.stats
            print(
                f"{coherence.value.upper():5s} {tag:16s} {compiled.ii:4d} "
                f"{stats.local_hit_ratio:10.1%} {stats.ab_fills:9d} "
                f"{stats.ab_overflows:9d} {result.stall_cycles:7d} "
                f"{result.stats.total_cycles:7d}"
            )

    print(
        "\nPaper: with ABs this loop goes from 65% local hits under MDC to"
        "\n97% under DDGT (a 24% loop speedup), because MDC funnels all 76"
        "\nstreams through a single cluster's 16-entry buffer."
    )


if __name__ == "__main__":
    main()
