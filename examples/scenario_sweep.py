"""Fuzz the coherence machinery with generated scenarios.

Samples seeded synthetic loops from every generator family, sweeps them
over the default 2/4/8-cluster machine space under free/MDC/DDGT
coherence, and prints the per-family differential summary: coherence
violations may appear only under free scheduling — anything else is a
bug the generator found.

Run:  python examples/scenario_sweep.py              (~1-2 min cold)
      REPRO_PARALLEL=8 python examples/scenario_sweep.py
      SCENARIO_COUNT=60 python examples/scenario_sweep.py
"""

import os

from repro.api import DiskStore, Runner
from repro.scenarios import DEFAULT_MACHINE_SPACE, run_sweep


def main():
    count = int(os.environ.get("SCENARIO_COUNT", "12"))
    workers = int(os.environ.get("REPRO_PARALLEL", "4"))
    result = run_sweep(
        seed=0,
        count=count,
        machines=list(DEFAULT_MACHINE_SPACE),
        scale=0.1,
        runner=Runner(store=DiskStore(), parallel=workers),
    )
    print(result.render())
    if not result.ok:
        raise SystemExit(1)


if __name__ == "__main__":
    main()
