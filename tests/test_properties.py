"""Property-based integration tests.

The headline invariant of the whole reproduction: for *any* loop, under
MDC or DDGT the simulated execution observes sequential memory semantics
(zero coherence violations), and every produced schedule satisfies its
dependence and resource constraints.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.alias import MemRef
from repro.arch import BASELINE_CONFIG
from repro.ir import DdgBuilder
from repro.ir.verify import verify_ddg
from repro.sched import CoherenceMode, Heuristic, compile_loop
from repro.sim import simulate
from repro.workloads import trace_factory


@st.composite
def random_loops(draw):
    """Small random loops: mixed load/store streams over a couple of
    spaces, some ambiguous, with value flow between them."""
    n_ops = draw(st.integers(2, 7))
    width = draw(st.sampled_from([2, 4]))
    b = DdgBuilder("random")
    b.ialu("i", b.carried("i", 1), name="agen")
    value = "i"
    for k in range(n_ops):
        space = draw(st.sampled_from(["A", "B"]))
        stride = draw(st.sampled_from([0, width, 4 * width]))
        offset = draw(st.integers(0, 4)) * width
        ambiguous = draw(st.booleans())
        ref = MemRef(space, offset=offset, stride=stride, width=width,
                     ambiguous=ambiguous)
        if draw(st.booleans()):
            b.load(f"v{k}", "i", mem=ref, name=f"ld{k}")
            if draw(st.booleans()):
                b.ialu(f"c{k}", f"v{k}", name=f"use{k}")
                value = f"c{k}"
            else:
                value = f"v{k}"
        else:
            b.store(value, "i", mem=ref, name=f"st{k}")
    return b.build()


@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    loop=random_loops(),
    coherence=st.sampled_from([CoherenceMode.MDC, CoherenceMode.DDGT]),
    heuristic=st.sampled_from([Heuristic.PREFCLUS, Heuristic.MINCOMS]),
)
def test_coherence_solutions_never_violate(loop, coherence, heuristic):
    result = compile_loop(
        loop,
        BASELINE_CONFIG,
        coherence=coherence,
        heuristic=heuristic,
        trace_factory=trace_factory(32, seed=7),
        unroll_factor=1,
    )
    verify_ddg(result.ddg, BASELINE_CONFIG)
    result.schedule.validate()
    trace = trace_factory(96, seed=8)(result.ddg)
    sim = simulate(result, trace, iterations=96)
    assert sim.violations.total == 0, (
        f"{coherence.value}/{heuristic.value} violated coherence on "
        f"{loop.describe()}"
    )


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(loop=random_loops())
def test_ddgt_removes_every_ma_edge(loop):
    from repro.alias import add_memory_dependences
    from repro.ir import DepKind
    from repro.sched import apply_ddgt

    work = loop.clone()
    add_memory_dependences(work)
    result = apply_ddgt(work, BASELINE_CONFIG)
    assert all(e.kind is not DepKind.MA for e in result.ddg.edges())
    verify_ddg(result.ddg, BASELINE_CONFIG)


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(loop=random_loops())
def test_chains_partition_memory_instructions(loop):
    from repro.alias import add_memory_dependences
    from repro.sched import memory_dependent_chains

    work = loop.clone()
    add_memory_dependences(work)
    chains = memory_dependent_chains(work)
    seen = set()
    for chain in chains:
        assert not (chain & seen), "chains must be disjoint"
        seen |= chain
    mem_ids = {v.iid for v in work.memory_instructions()}
    assert seen <= mem_ids
