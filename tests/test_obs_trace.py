"""`repro.obs.trace`: span nesting, export formats, cross-process absorb."""

import json

import pytest

from repro.obs import trace
from repro.obs.trace import Tracer, load_events, summarize_events


@pytest.fixture
def clean_tracer():
    """Install a fresh tracer for the test; restore whatever was there."""
    tracer = Tracer()
    previous = trace.set_tracer(tracer)
    try:
        yield tracer
    finally:
        trace.set_tracer(previous)


class TestSpans:
    def test_nesting_records_parent_and_depth(self, clean_tracer):
        with clean_tracer.span("outer", cat="a"):
            with clean_tracer.span("inner", cat="b", key="v"):
                pass
        events = {e["name"]: e for e in clean_tracer.events()}
        assert events["inner"]["parent"] == "outer"
        assert events["inner"]["depth"] == 1
        assert events["inner"]["args"] == {"key": "v"}
        assert "parent" not in events["outer"]
        assert events["outer"]["depth"] == 0
        # Children complete before parents, and fit inside them.
        inner, outer = events["inner"], events["outer"]
        assert inner["ts_us"] >= outer["ts_us"]
        assert (inner["ts_us"] + inner["dur_us"]
                <= outer["ts_us"] + outer["dur_us"] + 1.0)

    def test_span_records_even_when_the_block_raises(self, clean_tracer):
        with pytest.raises(ValueError):
            with clean_tracer.span("failing"):
                raise ValueError("boom")
        assert [e["name"] for e in clean_tracer.events()] == ["failing"]
        # The stack unwound: a new span is a root again.
        with clean_tracer.span("after"):
            pass
        assert "parent" not in clean_tracer.events()[-1]

    def test_module_span_is_noop_without_a_tracer(self):
        previous = trace.set_tracer(None)
        try:
            with trace.span("ignored", cat="x"):
                pass
            assert trace.span("a") is trace.span("b")
        finally:
            trace.set_tracer(previous)


class TestExportFormats:
    def _traced(self):
        tracer = Tracer()
        with tracer.span("root", cat="cli"):
            with tracer.span("child", cat="stage", stage="mdc"):
                pass
        return tracer

    def test_chrome_trace_shape(self):
        tracer = self._traced()
        doc = tracer.chrome_trace()
        complete = [e for e in doc["traceEvents"] if e.get("ph") == "X"]
        meta = [e for e in doc["traceEvents"] if e.get("ph") == "M"]
        assert {e["name"] for e in complete} == {"root", "child"}
        assert meta and meta[0]["name"] == "process_name"
        assert doc["displayTimeUnit"] == "ms"
        # Perfetto requires numeric ts/dur on complete events.
        for event in complete:
            assert isinstance(event["ts"], float)
            assert isinstance(event["dur"], float)

    @pytest.mark.parametrize("suffix", ["json", "jsonl"])
    def test_write_then_load_events_round_trips(self, tmp_path, suffix):
        tracer = self._traced()
        path = tmp_path / f"trace.{suffix}"
        tracer.write(str(path))
        events = load_events(str(path))
        by_name = {e["name"]: e for e in events}
        assert set(by_name) == {"root", "child"}
        assert by_name["child"]["parent"] == "root"
        assert by_name["child"]["args"]["stage"] == "mdc"
        want = {e["name"]: e for e in tracer.events()}
        for name, event in by_name.items():
            assert event["dur_us"] == pytest.approx(
                want[name]["dur_us"], abs=1e-3)

    def test_summarize_events_rolls_up(self):
        tracer = self._traced()
        text = summarize_events(tracer.events())
        assert "spans: 2" in text
        assert "cli" in text and "stage" in text
        assert "root" in text and "child" in text


class TestAbsorb:
    def test_absorb_rebases_onto_the_parent_wall_clock(self):
        parent = Tracer()
        exported = {
            "pid": 4242,
            "process_name": "repro",
            # The worker started exactly 1s after the parent.
            "wall_origin": parent.wall_origin + 1.0,
            "events": [{
                "name": "spec:x/y", "cat": "spec",
                "ts_us": 10.0, "dur_us": 5.0,
                "pid": 4242, "tid": 1, "depth": 0,
            }],
        }
        parent.absorb(exported)
        event = parent.events()[0]
        assert event["ts_us"] == pytest.approx(1e6 + 10.0)
        assert event["pid"] == 4242

    def test_worker_pids_get_their_own_process_track(self):
        parent = Tracer()
        with parent.span("local"):
            pass
        parent.absorb({"pid": 4242, "wall_origin": parent.wall_origin,
                       "events": [{"name": "remote", "cat": "spec",
                                   "ts_us": 0.0, "dur_us": 1.0,
                                   "pid": 4242, "tid": 1, "depth": 0}]})
        meta = {e["pid"]: e["args"]["name"]
                for e in parent.chrome_trace()["traceEvents"]
                if e.get("ph") == "M"}
        assert meta[parent.pid] == "repro"
        assert meta[4242] == "repro-worker"

    def test_export_absorb_round_trip(self):
        worker = Tracer()
        with worker.span("work", cat="spec"):
            pass
        shipped = json.loads(json.dumps(worker.export()))
        parent = Tracer()
        parent.absorb(shipped)
        assert [e["name"] for e in parent.events()] == ["work"]
