"""Runner: caching semantics, parallel/serial equivalence, shims."""

import pytest

from repro.api.records import RunRecord
from repro.api.runner import Runner, run
from repro.api.spec import MDC_PREF, Plan, RunSpec
from repro.api.store import MemoryStore, set_default_store
from repro.arch.config import BASELINE_CONFIG
from repro.errors import WorkloadError

SCALE = 0.1
PLAN = Plan.grid(
    benchmarks=["gsmdec", "gsmenc"],
    variants=("mdc/prefclus", "ddgt/prefclus"),
    scale=SCALE,
)


class CountingStore(MemoryStore):
    def __init__(self):
        super().__init__()
        self.puts = 0

    def put(self, key, record):
        self.puts += 1
        super().put(key, record)


@pytest.fixture
def store():
    return CountingStore()


class TestRunnerCaching:
    def test_second_run_is_all_hits(self, store):
        runner = Runner(store=store)
        first = runner.run(PLAN)
        assert store.puts == len(PLAN)
        second = runner.run(PLAN)
        assert store.puts == len(PLAN), "second run must not recompute"
        assert [a.to_dict() for a in first] == [b.to_dict() for b in second]

    def test_results_in_plan_order(self, store):
        records = Runner(store=store).run(PLAN)
        assert [(r.benchmark, r.variant) for r in records] == [
            (s.benchmark, s.variant) for s in PLAN
        ]

    def test_partial_hits_fill_only_misses(self, store):
        runner = Runner(store=store)
        runner.run(Plan(PLAN.specs[:2]))
        assert store.puts == 2
        runner.run(PLAN)
        assert store.puts == len(PLAN)

    def test_run_one_and_module_run(self, store):
        spec = PLAN.specs[0]
        record = Runner(store=store).run_one(spec)
        assert isinstance(record, RunRecord)
        assert record.spec_key == spec.content_hash
        previous = set_default_store(store)
        try:
            again = run(spec)
        finally:
            set_default_store(previous)
        assert again.to_dict() == record.to_dict()


class TestParallelEqualsSerial:
    def test_identical_records(self):
        serial = Runner(store=MemoryStore(), parallel=None).run(PLAN)
        parallel = Runner(store=MemoryStore(), parallel=2).run(PLAN)
        assert [a.to_dict() for a in serial] == [
            b.to_dict() for b in parallel
        ]

    def test_parallel_minus_one_uses_cpu_count(self):
        import multiprocessing

        runner = Runner(store=MemoryStore(), parallel=-1)
        cpus = multiprocessing.cpu_count()
        assert runner._effective_parallel(2) == min(2, cpus)
        assert runner._effective_parallel(1) == 1
        # Never more workers than specs, even on big machines.
        assert Runner(parallel=64)._effective_parallel(3) == 3


class TestLoopScopedSpecs:
    def test_single_loop_subset(self):
        full = run(RunSpec(benchmark="gsmdec", variant=MDC_PREF.key,
                           scale=SCALE), store=MemoryStore())
        assert len(full.loops) > 1
        one = run(RunSpec(benchmark="gsmdec", variant=MDC_PREF.key,
                          scale=SCALE, loop=full.loops[0].loop),
                  store=MemoryStore())
        assert len(one.loops) == 1
        assert one.loops[0].to_dict() == full.loops[0].to_dict()

    def test_unknown_loop_raises(self):
        with pytest.raises(WorkloadError):
            run(RunSpec(benchmark="gsmdec", scale=SCALE, loop="nope"),
                store=MemoryStore())


class TestFrontendGrouping:
    def test_frontend_key_shared_across_the_variant_cross(self):
        keys = {
            RunSpec(benchmark="gsmdec", variant=v, scale=SCALE).frontend_key
            for v in ("none/prefclus", "none/mincoms", "mdc/prefclus",
                      "mdc/mincoms", "ddgt/prefclus", "ddgt/mincoms")
        }
        assert len(keys) == 1, "all six variants must share one front end"

    def test_frontend_key_ignores_scale_but_not_machine_or_seeds(self):
        base = RunSpec(benchmark="gsmdec", scale=0.1)
        assert base.frontend_key == \
            RunSpec(benchmark="gsmdec", scale=0.7).frontend_key
        assert base.frontend_key != \
            RunSpec(benchmark="gsmenc", scale=0.1).frontend_key
        assert base.frontend_key != \
            RunSpec(benchmark="gsmdec", scale=0.1,
                    machine="nobal+mem").frontend_key
        assert base.frontend_key != \
            RunSpec(benchmark="gsmdec", scale=0.1,
                    seeds=(1, 2)).frontend_key
        assert base.frontend_key != \
            RunSpec(benchmark="gsmdec", scale=0.1,
                    attraction=True).frontend_key

    def test_group_indices_partition_preserves_order(self):
        specs = list(PLAN.specs)  # gsmdec x2 variants, gsmenc x2 variants
        groups = Runner._group_indices(specs)
        assert [sorted(g) for g in groups] == [[0, 1], [2, 3]]
        flattened = [i for group in groups for i in group]
        assert sorted(flattened) == list(range(len(specs)))

    def test_balance_splits_groups_to_fill_workers(self):
        one_cross = [list(range(6))]
        tasks = Runner._balance(one_cross, 4)
        assert len(tasks) == 4
        assert sorted(i for t in tasks for i in t) == list(range(6))
        assert all(tasks)
        # Enough groups already: nothing is split.
        assert Runner._balance([[0, 1], [2, 3]], 2) == [[0, 1], [2, 3]]
        # Singletons cannot be split further.
        assert Runner._balance([[0]], 8) == [[0]]

    def test_single_group_plan_still_parallelizes_correctly(self):
        plan = Plan.grid(benchmarks=["gsmdec"],
                         variants=("mdc/prefclus", "ddgt/prefclus",
                                   "mdc/mincoms", "ddgt/mincoms"),
                         scale=SCALE)
        assert len({s.frontend_key for s in plan}) == 1
        serial = Runner(store=MemoryStore()).run(plan)
        parallel = Runner(store=MemoryStore(), parallel=4).run(plan)
        assert [a.to_dict() for a in parallel] == [
            b.to_dict() for b in serial
        ]

    def test_parallel_groups_share_disk_artifacts(self, tmp_path):
        from repro.api.artifacts import DiskArtifactStore

        artifacts = DiskArtifactStore(tmp_path / "artifacts")
        runner = Runner(store=MemoryStore(), parallel=2,
                        artifacts=artifacts)
        parallel = runner.run(PLAN)
        serial = Runner(store=MemoryStore()).run(PLAN)
        assert [a.to_dict() for a in parallel] == [
            b.to_dict() for b in serial
        ]
        stages = {key.split("-", 1)[0] for key in artifacts.keys()}
        assert stages == {"unroll", "disambiguate", "profile"}

    def test_workers_honor_a_pinned_artifact_version(self, tmp_path):
        import json

        from repro.api.artifacts import DiskArtifactStore

        root = tmp_path / "artifacts"
        runner = Runner(store=MemoryStore(), parallel=2,
                        artifacts=DiskArtifactStore(root, version="pinned"))
        runner.run(Plan(PLAN.specs[:2]))
        versions = {
            json.loads(path.read_text())["version"]
            for path in root.rglob("*.json")
        }
        assert versions == {"pinned"}, (
            "workers must write the parent store's version, or the two "
            "sides treat each other's entries as stale"
        )

    def test_custom_artifact_store_warns_in_parallel(self):
        from repro.api.artifacts import MemoryArtifactStore

        class CustomStore(MemoryArtifactStore):
            pass

        class PlainCustom:
            def get(self, key):
                return None

            def put(self, key, payload):
                pass

        # A MemoryArtifactStore subclass is fine (expected process-local).
        Runner(store=MemoryStore(), parallel=2,
               artifacts=CustomStore()).run(Plan(PLAN.specs[:2]))
        with pytest.warns(RuntimeWarning, match="cannot cross process"):
            Runner(store=MemoryStore(), parallel=2,
                   artifacts=PlainCustom()).run(Plan(PLAN.specs[:2]))


class TestLegacyRunBenchmark:
    def test_shares_store_with_new_api(self, store):
        from repro.experiments.common import run_benchmark

        previous = set_default_store(store)
        try:
            spec = RunSpec(benchmark="gsmdec", variant=MDC_PREF.key,
                           scale=SCALE)
            record = run(spec)
            assert store.puts == 1
            legacy = run_benchmark("gsmdec", MDC_PREF, scale=SCALE)
            assert store.puts == 1, "legacy path must reuse the new cache"
            assert legacy.to_dict() == record.to_dict()
        finally:
            set_default_store(previous)

    def test_drivers_honor_adhoc_configs(self, store):
        """A custom MachineConfig passed to a figure driver must actually
        be simulated, not silently swapped for its registry namesake."""
        from dataclasses import replace

        from repro.experiments.figure7 import run_figure7

        slow_next_level = replace(
            BASELINE_CONFIG,
            next_level=replace(BASELINE_CONFIG.next_level, latency=40),
        )
        assert slow_next_level.name == "baseline"
        previous = set_default_store(store)
        try:
            stock = run_figure7(["gsmdec"], scale=SCALE)
            custom = run_figure7(["gsmdec"], config=slow_next_level,
                                 scale=SCALE)
        finally:
            set_default_store(previous)
        assert (custom.baseline_cycles["gsmdec"]
                != stock.baseline_cycles["gsmdec"]), (
            "a 4x next-level latency must change absolute cycle counts"
        )

    def test_adhoc_config_keyed_by_effective_machine(self, store):
        """Same config name, different structure -> different cache keys."""
        from dataclasses import replace

        from repro.experiments.common import run_benchmark

        custom = replace(BASELINE_CONFIG)  # same name, not the registry obj
        weird = replace(BASELINE_CONFIG,
                        cache=replace(BASELINE_CONFIG.cache, hit_latency=2))
        assert custom.name == weird.name == "baseline"
        previous = set_default_store(store)
        try:
            a = run_benchmark("gsmdec", MDC_PREF, config=custom, scale=SCALE)
            b = run_benchmark("gsmdec", MDC_PREF, config=weird, scale=SCALE)
        finally:
            set_default_store(previous)
        assert store.puts == 2, "structurally different configs must not collide"
        assert a.spec_key != b.spec_key
