"""End-to-end compilation pipeline tests (cluster heuristics, copies,
post-pass, latency policy)."""

import pytest

from repro.alias import MemRef
from repro.alias.profiles import ClusterProfile
from repro.arch import BASELINE_CONFIG
from repro.errors import SchedulingError
from repro.ir import DdgBuilder, DepKind
from repro.sched import CoherenceMode, Heuristic, compile_loop
from repro.sched.cluster import assign_clusters
from repro.sched.copies import insert_copies
from repro.sched.cluster import ClusterAssignment
from repro.workloads import trace_factory


def all_variants():
    return [
        (coh, heur)
        for coh in CoherenceMode
        for heur in (Heuristic.PREFCLUS, Heuristic.MINCOMS)
    ]


class TestCompileLoop:
    @pytest.mark.parametrize("coherence,heuristic", all_variants())
    def test_all_variants_produce_valid_schedules(
        self, stream_loop, coherence, heuristic
    ):
        result = compile_loop(
            stream_loop,
            BASELINE_CONFIG,
            coherence=coherence,
            heuristic=heuristic,
            trace_factory=trace_factory(64, seed=3),
        )
        result.schedule.validate()
        assert result.unroll_factor == 4  # stride-4 words on 4x4 machine

    @pytest.mark.parametrize("coherence,heuristic", all_variants())
    def test_figure3_all_variants(self, figure3, coherence, heuristic):
        ddg, _ = figure3
        result = compile_loop(
            ddg,
            BASELINE_CONFIG,
            coherence=coherence,
            heuristic=heuristic,
            trace_factory=trace_factory(64, seed=3),
            unroll_factor=1,
            add_mem_deps=False,
        )
        result.schedule.validate()

    def test_prefclus_without_profiles_raises(self, stream_loop):
        with pytest.raises(SchedulingError, match="PrefClus needs profiles"):
            compile_loop(
                stream_loop, BASELINE_CONFIG, heuristic=Heuristic.PREFCLUS
            )

    def test_mdc_pins_chain_to_one_cluster(self, figure3):
        ddg, nodes = figure3
        result = compile_loop(
            ddg,
            BASELINE_CONFIG,
            coherence=CoherenceMode.MDC,
            heuristic=Heuristic.PREFCLUS,
            trace_factory=trace_factory(64, seed=3),
            unroll_factor=1,
            add_mem_deps=False,
        )
        clusters = {
            result.assignment[nodes[k].iid] for k in ("n1", "n2", "n3", "n4")
        }
        assert len(clusters) == 1

    def test_ddgt_loads_keep_preferred_cluster(self, figure3):
        ddg, nodes = figure3
        profiles = {
            nodes["n1"].iid: ClusterProfile((64, 0, 0, 0)),
            nodes["n2"].iid: ClusterProfile((0, 0, 64, 0)),
            nodes["n3"].iid: ClusterProfile((0, 64, 0, 0)),
            nodes["n4"].iid: ClusterProfile((0, 0, 0, 64)),
        }
        result = compile_loop(
            ddg,
            BASELINE_CONFIG,
            coherence=CoherenceMode.DDGT,
            heuristic=Heuristic.PREFCLUS,
            profiles=profiles,
            unroll_factor=1,
            add_mem_deps=False,
        )
        assert result.assignment[nodes["n1"].iid] == 0
        assert result.assignment[nodes["n2"].iid] == 2

    def test_source_graph_is_pre_transformation(self, figure3):
        ddg, _ = figure3
        result = compile_loop(
            ddg,
            BASELINE_CONFIG,
            coherence=CoherenceMode.DDGT,
            heuristic=Heuristic.MINCOMS,
            unroll_factor=1,
            add_mem_deps=False,
        )
        assert len(result.source) == len(ddg)
        assert len(result.ddg) > len(ddg)  # replicas + fakes added


class TestCopies:
    def test_cross_cluster_rf_gets_copy(self):
        b = DdgBuilder()
        b.ialu("a", name="prod")
        b.ialu("c", "a", name="cons")
        ddg = b.build()
        prod = next(v for v in ddg if v.name == "prod")
        cons = next(v for v in ddg if v.name == "cons")
        assignment = ClusterAssignment({prod.iid: 0, cons.iid: 2})
        inserted = insert_copies(ddg, BASELINE_CONFIG, assignment)
        assert len(inserted) == 1
        copy = ddg.node(inserted[0])
        assert assignment[copy.iid] == 2
        # u -> w (d0), w -> v (original distance)
        assert ddg.has_edge(prod.iid, copy.iid, DepKind.RF)
        assert ddg.has_edge(copy.iid, cons.iid, DepKind.RF)
        assert not ddg.has_edge(prod.iid, cons.iid)

    def test_consumers_in_same_cluster_share_copy(self):
        b = DdgBuilder()
        b.ialu("a", name="prod")
        b.ialu("c1", "a", name="c1")
        b.ialu("c2", "a", name="c2")
        ddg = b.build()
        ids = {v.name: v.iid for v in ddg}
        assignment = ClusterAssignment(
            {ids["prod"]: 0, ids["c1"]: 1, ids["c2"]: 1}
        )
        inserted = insert_copies(ddg, BASELINE_CONFIG, assignment)
        assert len(inserted) == 1

    def test_same_cluster_needs_no_copy(self, stream_loop):
        assignment = ClusterAssignment({v.iid: 0 for v in stream_loop})
        assert insert_copies(stream_loop, BASELINE_CONFIG, assignment) == []

    def test_loop_carried_distance_preserved(self):
        b = DdgBuilder()
        b.ialu("acc", b.carried("acc", 2), name="acc")
        ddg = b.build()
        acc = next(iter(ddg))
        # force a self-communication by pretending two clusters... a
        # carried self edge stays intra-cluster, so no copy:
        assignment = ClusterAssignment({acc.iid: 1})
        assert insert_copies(ddg, BASELINE_CONFIG, assignment) == []


class TestClusterAssignment:
    def test_pins_always_respected(self, figure3):
        ddg, nodes = figure3
        ddg = ddg.clone()
        ddg.pin_cluster(nodes["n1"].iid, 3)
        assignment = assign_clusters(
            ddg, BASELINE_CONFIG, Heuristic.MINCOMS
        )
        assert assignment[nodes["n1"].iid] == 3

    def test_mincoms_places_consumers_near_producers(self):
        b = DdgBuilder()
        b.ialu("a", name="prod")
        for k in range(3):
            b.ialu(f"c{k}", "a", name=f"cons{k}")
        ddg = b.build()
        assignment = assign_clusters(ddg, BASELINE_CONFIG, Heuristic.MINCOMS)
        clusters = {assignment[v.iid] for v in ddg}
        assert len(clusters) == 1  # chained ops co-locate

    def test_mincoms_balances_independent_work(self):
        b = DdgBuilder()
        for k in range(8):
            b.ialu(f"r{k}", name=f"op{k}")
        ddg = b.build()
        assignment = assign_clusters(ddg, BASELINE_CONFIG, Heuristic.MINCOMS)
        from collections import Counter

        per_cluster = Counter(assignment[v.iid] for v in ddg)
        assert max(per_cluster.values()) <= 3  # roughly balanced
