"""Memory Dependent Chains tests (paper section 3.2)."""

from repro.alias import MemRef
from repro.alias.profiles import ClusterProfile
from repro.ir import DdgBuilder, DepKind
from repro.sched import apply_mdc, memory_dependent_chains


class TestChainConstruction:
    def test_figure3_forms_one_chain(self, figure3):
        ddg, nodes = figure3
        chains = memory_dependent_chains(ddg)
        assert len(chains) == 1
        assert chains[0] == {
            nodes[k].iid for k in ("n1", "n2", "n3", "n4")
        }

    def test_independent_ops_form_no_chain(self, stream_loop):
        assert memory_dependent_chains(stream_loop) == []

    def test_self_edge_does_not_create_chain(self):
        b = DdgBuilder()
        st = b.store(mem=MemRef("A", ambiguous=True), name="st")
        ddg = b.build()
        ddg.add_edge(st.iid, st.iid, DepKind.MO, 1)
        assert memory_dependent_chains(ddg) == []

    def test_two_separate_chains(self):
        b = DdgBuilder()
        l1 = b.load("a", mem=MemRef("A"), name="l1")
        s1 = b.store("a", mem=MemRef("A"), name="s1")
        l2 = b.load("b", mem=MemRef("B"), name="l2")
        s2 = b.store("b", mem=MemRef("B"), name="s2")
        b.mem_dep(l1, s1, DepKind.MA)
        b.mem_dep(l2, s2, DepKind.MA)
        ddg = b.build()
        chains = memory_dependent_chains(ddg)
        assert sorted(len(c) for c in chains) == [2, 2]

    def test_chains_deterministic_order(self, figure3):
        ddg, _ = figure3
        assert memory_dependent_chains(ddg) == memory_dependent_chains(ddg)


class TestApplyMdc:
    def test_group_of_covers_chain_members(self, figure3):
        ddg, nodes = figure3
        result = apply_mdc(ddg)
        assert set(result.group_of) == {
            nodes[k].iid for k in ("n1", "n2", "n3", "n4")
        }
        assert nodes["n5"].iid not in result.group_of

    def test_average_preferred_cluster(self, figure3):
        """Paper's example: the chain's combined profile picks cluster 3
        (index 2 zero-based) — the 'average preferred cluster'."""
        ddg, nodes = figure3
        profiles = {
            nodes["n1"].iid: ClusterProfile((70, 30, 0, 0)),
            nodes["n2"].iid: ClusterProfile((20, 50, 30, 0)),
            nodes["n3"].iid: ClusterProfile((0, 0, 100, 0)),
            nodes["n4"].iid: ClusterProfile((0, 10, 20, 70)),
        }
        result = apply_mdc(ddg, profiles)
        assert result.preferred_cluster[0] == 2  # cluster "3" in the paper

    def test_graph_not_modified(self, figure3):
        ddg, _ = figure3
        before = len(ddg.edges())
        apply_mdc(ddg)
        assert len(ddg.edges()) == before

    def test_biggest_chain(self, figure3):
        ddg, _ = figure3
        result = apply_mdc(ddg)
        assert len(result.biggest_chain()) == 4
