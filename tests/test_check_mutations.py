"""Mutation testing of the model checker: every seeded protocol bug must
be caught with a minimal counterexample, and the faithful protocol must
be violation-free over the same exhaustive sweep."""

import pytest

from repro.check import MUTATIONS, check_protocol
from repro.check.model import CORE_TRANSITIONS


class TestFaithfulProtocol:
    @pytest.fixture(scope="class")
    def clean_report(self):
        # The acceptance-criteria configuration: every 3-op program on
        # 2 clusters x 2 subblocks, full interleaving.
        return check_protocol(num_clusters=2, num_subblocks=2, op_count=3)

    def test_no_violations(self, clean_report):
        assert clean_report.ok
        assert clean_report.counterexamples == []

    def test_meets_state_budget(self, clean_report):
        # ISSUE acceptance: >= 10k states explored, within the minute.
        assert clean_report.states >= 10_000
        assert not clean_report.truncated
        assert clean_report.elapsed_seconds < 60

    def test_every_core_transition_reached(self, clean_report):
        for name in CORE_TRANSITIONS:
            assert clean_report.transition_coverage.get(name, 0) > 0, name

    def test_free_races_exist_but_are_not_violations(self, clean_report):
        # Undisciplined programs race by design (the optimistic
        # baseline); the checker counts them separately.
        assert clean_report.races > 0
        assert clean_report.disciplined_programs < clean_report.programs


class TestMutations:
    @pytest.mark.parametrize("mutation", sorted(MUTATIONS))
    def test_each_mutation_yields_counterexample(self, mutation):
        report = check_protocol(
            num_clusters=2, num_subblocks=2, op_count=3,
            mutation=mutation, disciplined_only=True,
        )
        assert not report.ok, f"{mutation} was not caught"
        ce = report.counterexamples[0]
        assert ce.mutation == mutation
        assert ce.invariant in {"no_stale_read", "no_future_read"}
        # BFS finds a shortest trace; every seeded bug here fires within
        # a handful of steps on the 2x2 configuration.
        assert 1 <= len(ce.trace) <= 8
        rendered = ce.format()
        assert "invariant violated" in rendered
        assert mutation in rendered
        assert "trace" in rendered

    def test_mutation_catalog_documented(self):
        assert len(MUTATIONS) == 4
        for name, description in MUTATIONS.items():
            assert isinstance(description, str) and description, name

    def test_max_states_truncates(self):
        report = check_protocol(
            num_clusters=2, num_subblocks=2, op_count=3, max_states=500
        )
        assert report.truncated
        assert report.states <= 500 + 200  # one program may overshoot
