"""Golden-record capture for the staged-pipeline equivalence tests.

Runs the full coherence x heuristic cross (all six variants) for a small
set of catalog benchmarks and generated scenarios through
:func:`repro.api.core.execute_spec` and snapshots every
:class:`~repro.api.records.RunRecord` as canonical JSON.  The goldens
were captured from the *monolithic* ``compile_loop`` path immediately
before the staged-pipeline refactor; ``tests/test_golden_equivalence.py``
asserts the staged, artifact-cached path reproduces them byte-for-byte.

Regenerate (only when a deliberate behavior change invalidates them)::

    PYTHONPATH=src python tests/goldens/capture.py
"""

from __future__ import annotations

import json
import warnings
from pathlib import Path

GOLDEN_DIR = Path(__file__).resolve().parent
GOLDEN_SCALE = 0.1
#: Three catalog benchmarks spanning the kernel shapes: a long rotating
#: chain (gsmdec), table lookups + streams (g721dec), several small
#: in-place filter chains (rasta).
CATALOG_BENCHMARKS = ("gsmdec", "g721dec", "rasta")
SCENARIO_SEED = 0
SCENARIO_COUNT = 20


def golden_key(benchmark: str, variant: str) -> str:
    return f"{benchmark}|{variant}"


def scenario_names():
    from repro.scenarios.generator import sample_scenarios

    return [p.name for p in sample_scenarios(SCENARIO_SEED, SCENARIO_COUNT)]


def capture(benchmarks) -> dict:
    from repro.api.core import execute_spec
    from repro.api.spec import ALL_VARIANTS, RunSpec

    goldens = {}
    for bench in benchmarks:
        for variant in ALL_VARIANTS:
            spec = RunSpec(benchmark=bench, variant=variant.key,
                           scale=GOLDEN_SCALE)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", RuntimeWarning)
                record = execute_spec(spec)
            goldens[golden_key(bench, variant.key)] = record.to_dict()
    return goldens


def write(goldens: dict, name: str) -> Path:
    path = GOLDEN_DIR / name
    with open(path, "w") as handle:
        json.dump(goldens, handle, sort_keys=True, indent=1)
        handle.write("\n")
    return path


def main() -> None:
    catalog = capture(CATALOG_BENCHMARKS)
    path = write(catalog, "catalog_goldens.json")
    print(f"{path}: {len(catalog)} records")
    scenarios = capture(scenario_names())
    path = write(scenarios, "scenario_goldens.json")
    print(f"{path}: {len(scenarios)} records")


if __name__ == "__main__":
    main()
