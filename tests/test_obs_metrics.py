"""`repro.obs.metrics`: registry semantics and aggregation laws.

The property section pins the contract the parallel runner relies on:
merging worker snapshots into the parent registry is associative and
lossless, whatever the grouping or interleaving of workers — so parallel
runs report exactly the telemetry serial runs would.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs import metrics
from repro.obs.metrics import HistogramData, MetricsRegistry


class TestCounters:
    def test_inc_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("hits", stage="mdc")
        reg.inc("hits", 2, stage="mdc")
        reg.inc("hits", stage="ddgt")
        assert reg.counter("hits", stage="mdc") == 3
        assert reg.counter("hits", stage="ddgt") == 1
        assert reg.counter("hits", stage="missing") == 0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.inc("x", a="1", b="2")
        reg.inc("x", b="2", a="1")
        assert reg.counter("x", b="2", a="1") == 2

    def test_counter_items_round_trips_labels(self):
        reg = MetricsRegistry()
        reg.inc("x", 5, stage="sched", outcome="hit")
        items = list(reg.counter_items("x"))
        assert items == [({"outcome": "hit", "stage": "sched"}, 5)]


class TestGaugesAndHistograms:
    def test_gauge_last_write_wins(self):
        reg = MetricsRegistry()
        reg.set_gauge("util", 0.25)
        reg.set_gauge("util", 0.5)
        assert reg.gauge("util") == 0.5
        assert reg.gauge("missing") is None

    def test_histogram_moments(self):
        reg = MetricsRegistry()
        for value in (1.0, 2.0, 3.0):
            reg.observe("lat", value)
        hist = reg.histogram("lat")
        assert hist.count == 3
        assert hist.total == 6.0
        assert hist.minimum == 1.0 and hist.maximum == 3.0
        assert hist.mean == 2.0

    def test_time_block_observes_elapsed(self):
        reg = MetricsRegistry()
        with reg.time_block("t", kind="x"):
            pass
        hist = reg.histogram("t", kind="x")
        assert hist.count == 1
        assert hist.minimum >= 0.0


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("c")
        reg.set_gauge("g", 1.0)
        reg.observe("h", 1.0)
        with reg.time_block("t"):
            pass
        assert reg.names() == []

    def test_merge_works_into_a_disabled_registry(self):
        # A parent that disabled local instrumentation must still
        # aggregate worker deltas faithfully.
        source = MetricsRegistry()
        source.inc("c", 7, k="v")
        source.observe("h", 2.5)
        target = MetricsRegistry(enabled=False)
        target.merge(source.snapshot())
        assert target.counter("c", k="v") == 7
        assert target.histogram("h").count == 1


class TestSnapshotMerge:
    def test_snapshot_is_pure_json_and_round_trips(self):
        import json

        reg = MetricsRegistry()
        reg.inc("c", 3, stage="s")
        reg.set_gauge("g", 1.5)
        reg.observe("h", 0.25, kind="k")
        snap = json.loads(json.dumps(reg.snapshot()))
        rebuilt = MetricsRegistry()
        rebuilt.merge(snap)
        assert rebuilt.counter("c", stage="s") == 3
        assert rebuilt.gauge("g") == 1.5
        assert rebuilt.histogram("h", kind="k").total == 0.25
        assert rebuilt.snapshot() == reg.snapshot()

    def test_reset_prefix_only_clears_that_family(self):
        reg = MetricsRegistry()
        reg.inc("stages.executed", stage="s")
        reg.inc("artifacts.puts")
        reg.reset("stages.")
        assert reg.counter("stages.executed", stage="s") == 0
        assert reg.counter("artifacts.puts") == 1
        reg.reset()
        assert reg.names() == []

    def test_capture_swaps_and_restores_the_process_registry(self):
        outer = metrics.registry()
        with metrics.capture() as inner:
            assert metrics.registry() is inner
            assert inner is not outer
            metrics.inc("captured")
            assert inner.counter("captured") == 1
        assert metrics.registry() is outer
        assert outer.counter("captured") == 0

    def test_snapshot_file_round_trip(self, tmp_path):
        with metrics.capture():
            metrics.inc("c", 4, k="v")
            metrics.observe("h", 1.25)
            path = tmp_path / "metrics.json"
            metrics.write_snapshot(str(path))
            want = metrics.registry().snapshot()
        rebuilt = metrics.load_snapshot(str(path))
        assert rebuilt.snapshot() == want
        assert "c{k=v} = 4" in rebuilt.render()


# ----------------------------------------------------------------------
# Aggregation laws (the parallel-runner contract)
# ----------------------------------------------------------------------
def observations():
    return st.lists(
        st.floats(min_value=0.0, max_value=1e6,
                  allow_nan=False, allow_infinity=False),
        max_size=8,
    )


def exact_observations():
    """Integer-valued observations: float addition over them is exact,
    so associativity holds bit-for-bit (with arbitrary floats the sums
    drift by an ulp depending on grouping — inherent to IEEE addition,
    not to the merge logic under test)."""
    return st.lists(st.integers(0, 10**6).map(float), max_size=8)


@st.composite
def registries(draw):
    """A small random registry: a few counters and histograms over a
    shared pool of names/labels so merges actually collide."""
    reg = MetricsRegistry()
    for _ in range(draw(st.integers(0, 4))):
        name = draw(st.sampled_from(["a", "b", "c"]))
        label = draw(st.sampled_from(["x", "y"]))
        reg.inc(name, draw(st.integers(0, 100)), label=label)
    for _ in range(draw(st.integers(0, 3))):
        name = draw(st.sampled_from(["h1", "h2"]))
        for value in draw(exact_observations()):
            reg.observe(name, value)
    return reg


def _merged(snapshots):
    reg = MetricsRegistry()
    for snap in snapshots:
        reg.merge(snap)
    return reg


def _canon(snapshot):
    """Order-free image of a snapshot: the wire format preserves dict
    insertion order, which legitimately varies with merge order."""
    import json

    return {
        family: {
            name: sorted(
                (tuple(tuple(pair) for pair in key),
                 json.dumps(value, sort_keys=True))
                for key, value in series
            )
            for name, series in snapshot.get(family, {}).items()
        }
        for family in ("counters", "gauges", "histograms")
    }


@settings(max_examples=50, deadline=None)
@given(st.lists(registries(), min_size=1, max_size=4),
       st.permutations(range(4)))
def test_merge_is_associative_and_order_free(regs, order):
    """Any grouping and any arrival order of worker snapshots produces
    the same aggregate."""
    snaps = [r.snapshot() for r in regs]

    flat = _canon(_merged(snaps).snapshot())
    # Regroup: fold the first k into an intermediate registry, snapshot
    # it, then merge that snapshot with the rest (tree-shaped merge).
    for split in range(1, len(snaps)):
        left = _merged(snaps[:split])
        grouped = _merged([left.snapshot()] + snaps[split:])
        assert _canon(grouped.snapshot()) == flat
    # Reorder: counters and histograms are commutative.
    shuffled = [snaps[i] for i in order if i < len(snaps)]
    assert _canon(_merged(shuffled).snapshot()) == flat


@settings(max_examples=50, deadline=None)
@given(st.lists(observations(), min_size=1, max_size=5))
def test_histogram_merge_is_lossless(streams):
    """Splitting an observation stream across workers and merging the
    parts loses nothing: moments and bucket counts match the histogram
    of the undivided stream."""
    parts = []
    for stream in streams:
        hist = HistogramData()
        for value in stream:
            hist.observe(value)
        parts.append(hist)
    merged = parts[0]
    for part in parts[1:]:
        merged = merged.merged_with(part)

    whole = HistogramData()
    for stream in streams:
        for value in stream:
            whole.observe(value)

    assert merged.count == whole.count
    assert math.isclose(merged.total, whole.total, rel_tol=1e-12,
                        abs_tol=1e-12)
    assert merged.minimum == whole.minimum
    assert merged.maximum == whole.maximum
    assert merged.buckets == whole.buckets


@settings(max_examples=30, deadline=None)
@given(exact_observations(), exact_observations(), exact_observations())
def test_histogram_merged_with_is_associative(a, b, c):
    def hist(values):
        h = HistogramData()
        for value in values:
            h.observe(value)
        return h

    ha, hb, hc = hist(a), hist(b), hist(c)
    left = ha.merged_with(hb).merged_with(hc)
    right = ha.merged_with(hb.merged_with(hc))
    assert left.to_dict() == right.to_dict()
