"""Loop unrolling tests, including the edge re-normalization math."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alias import AccessPattern, MemRef
from repro.arch import BASELINE_CONFIG
from repro.errors import TransformError
from repro.ir import DdgBuilder, DepKind, unroll
from repro.ir.unroll import locality_unroll_factor
from repro.ir.verify import verify_ddg


def simple_carried_loop(distance: int):
    b = DdgBuilder("carried")
    b.ialu("acc", b.carried("acc", distance), name="acc")
    b.load("x", "acc", mem=MemRef("A", stride=4), name="ld")
    return b.build()


class TestUnrollStructure:
    def test_factor_one_is_clone(self, stream_loop):
        out = unroll(stream_loop, 1)
        assert len(out) == len(stream_loop)
        assert len(out.edges()) == len(stream_loop.edges())

    def test_invalid_factor(self, stream_loop):
        with pytest.raises(TransformError):
            unroll(stream_loop, 0)

    def test_node_and_edge_counts_scale(self, stream_loop):
        factor = 4
        out = unroll(stream_loop, factor)
        assert len(out) == factor * len(stream_loop)
        assert len(out.edges()) == factor * len(stream_loop.edges())
        verify_ddg(out)

    def test_seq_is_body_repeated(self, stream_loop):
        out = unroll(stream_loop, 2)
        order = [v.origin for v in out.in_program_order()]
        originals = [v.iid for v in stream_loop.in_program_order()]
        assert order == originals + originals


class TestUnrollDistances:
    def test_distance1_becomes_cross_copy(self):
        ddg = simple_carried_loop(1)
        out = unroll(ddg, 4)
        accs = [v for v in out.in_program_order() if v.name.startswith("acc")]
        # acc.k depends on acc.(k-1) within the new iteration, acc.0 on
        # acc.3 of the previous one.
        for k in range(1, 4):
            edges = [e for e in out.preds(accs[k].iid) if e.kind is DepKind.RF
                     and e.src == accs[k - 1].iid]
            assert edges and edges[0].distance == 0
        wrap = [e for e in out.preds(accs[0].iid) if e.src == accs[3].iid]
        assert wrap and wrap[0].distance == 1

    def test_distance_equal_factor_stays_loop_carried(self):
        ddg = simple_carried_loop(2)
        out = unroll(ddg, 2)
        accs = [v for v in out.in_program_order() if v.name.startswith("acc")]
        # distance 2, factor 2: each copy depends on itself one new
        # iteration back.
        for acc in accs:
            self_edge = [e for e in out.preds(acc.iid) if e.src == acc.iid]
            assert self_edge and self_edge[0].distance == 1


class TestUnrollMemRefs:
    def test_affine_offsets_shift_and_stride_scales(self, stream_loop):
        out = unroll(stream_loop, 4)
        loads = [v for v in out.in_program_order()
                 if v.is_load and v.mem.space == "A"]
        assert [v.mem.offset for v in loads] == [0, 4, 8, 12]
        assert all(v.mem.stride == 16 for v in loads)

    def test_indirect_salt_decorrelates(self):
        b = DdgBuilder()
        b.load("x", mem=MemRef("T", width=4, pattern=AccessPattern.INDIRECT,
                               spread=64), name="lut")
        out = unroll(b.build(), 4)
        salts = sorted(v.mem.salt for v in out if v.is_load)
        assert salts == [0, 1, 2, 3]


class TestLocalityFactor:
    def test_word_stream_unrolls_by_clusters(self, stream_loop):
        # stride 4, interleave 4, 4 clusters: factor 4 makes accesses
        # single-cluster.
        assert locality_unroll_factor(stream_loop, BASELINE_CONFIG) == 4

    def test_lane_stride_needs_no_unroll(self):
        b = DdgBuilder()
        b.load("x", mem=MemRef("A", stride=16), name="ld")
        assert locality_unroll_factor(b.build(), BASELINE_CONFIG) == 1

    def test_no_memory_ops(self):
        b = DdgBuilder()
        b.ialu("x", b.carried("x", 1))
        assert locality_unroll_factor(b.build(), BASELINE_CONFIG) == 1


@settings(max_examples=30, deadline=None)
@given(factor=st.integers(1, 6), distance=st.integers(1, 4))
def test_unroll_preserves_total_distance(factor, distance):
    """Sum of re-normalized distances over the copy cycle equals the
    original distance: following the carried chain around all copies must
    cross iteration boundaries exactly ``distance`` times."""
    ddg = simple_carried_loop(distance)
    out = unroll(ddg, factor)
    accs = [v for v in out.in_program_order() if v.name.startswith("acc")]
    total = 0
    for acc in accs:
        for e in out.preds(acc.iid):
            if e.kind is DepKind.RF and out.node(e.src).name.startswith("acc"):
                total += e.distance
    assert total == distance
    verify_ddg(out)
