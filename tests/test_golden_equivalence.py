"""Staged pipeline == monolithic pipeline, byte for byte.

The fixtures under ``tests/goldens/`` were captured from the monolithic
``compile_loop`` path immediately before the staged-pipeline refactor
(see ``tests/goldens/capture.py``).  These tests replay the full
coherence × heuristic cross through the staged, artifact-cached path —
cold, warm-in-memory, and warm-on-disk — and require the resulting
``RunRecord`` JSON to be identical to the goldens.
"""

import importlib.util
import json
import warnings
from pathlib import Path

import pytest

from repro.api.artifacts import DiskArtifactStore, MemoryArtifactStore
from repro.api.core import execute_spec
from repro.api.spec import ALL_VARIANTS, RunSpec

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"


def _load_capture():
    spec = importlib.util.spec_from_file_location(
        "golden_capture", GOLDEN_DIR / "capture.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


cap = _load_capture()
CATALOG_GOLDENS = json.loads((GOLDEN_DIR / "catalog_goldens.json").read_text())
SCENARIO_GOLDENS = json.loads(
    (GOLDEN_DIR / "scenario_goldens.json").read_text()
)
VARIANT_KEYS = [v.key for v in ALL_VARIANTS]


def _execute(benchmark: str, variant: str, artifacts) -> dict:
    spec = RunSpec(benchmark=benchmark, variant=variant,
                   scale=cap.GOLDEN_SCALE)
    with warnings.catch_warnings():
        # Tiny scaled scenario runs intentionally hit the kernel-
        # iteration floor; the one-time warning is not under test here.
        warnings.simplefilter("ignore", RuntimeWarning)
        return execute_spec(spec, artifacts=artifacts).to_dict()


def _canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


@pytest.fixture(scope="module")
def shared_artifacts():
    """One store across the whole module: most variants run warm, which
    is exactly the production sweep behaviour under test."""
    return MemoryArtifactStore()


class TestCatalogCross:
    @pytest.mark.parametrize("bench_name", cap.CATALOG_BENCHMARKS)
    @pytest.mark.parametrize("variant", VARIANT_KEYS)
    def test_byte_identical_to_monolithic_golden(
        self, bench_name, variant, shared_artifacts
    ):
        got = _execute(bench_name, variant, shared_artifacts)
        want = CATALOG_GOLDENS[cap.golden_key(bench_name, variant)]
        assert _canonical(got) == _canonical(want)


class TestScenarioCross:
    def test_full_cross_cold_then_warm_disk(self, tmp_path):
        """All 20 scenarios × 6 variants, twice: a cold disk artifact
        store, then a fresh store instance replaying the same files (the
        second-process case).  Every record must match its golden."""
        names = cap.scenario_names()
        assert len(names) * len(VARIANT_KEYS) == len(SCENARIO_GOLDENS)
        for _pass in ("cold", "warm"):
            artifacts = DiskArtifactStore(tmp_path / "artifacts")
            for name in names:
                for variant in VARIANT_KEYS:
                    got = _execute(name, variant, artifacts)
                    want = SCENARIO_GOLDENS[cap.golden_key(name, variant)]
                    assert _canonical(got) == _canonical(want), (
                        f"{_pass}: {name} {variant}"
                    )

    def test_never_hitting_store_matches_goldens_too(self):
        """A store that forgets everything (every stage recomputes, every
        spec cold) must still produce golden-identical records."""

        class _NullArtifacts:
            def get(self, key):
                return None

            def put(self, key, payload):
                pass

        name = cap.scenario_names()[0]
        for variant in VARIANT_KEYS:
            got = _execute(name, variant, _NullArtifacts())
            want = SCENARIO_GOLDENS[cap.golden_key(name, variant)]
            assert _canonical(got) == _canonical(want)
